//! Accelerometer-based authentication (paper §V-E, Fig. 12): the same
//! MiniRocket + ridge pipeline, fed the prototype's LIS2DH12
//! accelerometer instead of PPG. The paper finds it weaker — the wrist
//! barely moves during keystrokes — and less attack-resistant, since
//! wrist micro-motion lacks the physiological anatomy component.

use p2auth_core::error::AuthError;
use p2auth_core::types::Recording;
use p2auth_dsp::normalize::zscore;
use p2auth_dsp::resample::resample_linear;
use p2auth_ml::ridge::{RidgeClassifier, RidgeCvConfig};
use p2auth_rocket::{MiniRocket, MiniRocketConfig, MultiSeries};

/// Configuration of the accelerometer pipeline.
#[derive(Debug, Clone)]
pub struct AccelAuthConfig {
    /// MiniRocket settings.
    pub rocket: MiniRocketConfig,
    /// Ridge CV settings.
    pub ridge: RidgeCvConfig,
    /// Length the accel entry waveform is resampled to.
    pub waveform_len: usize,
    /// Margin (seconds) kept around the keystroke span.
    pub margin_s: f64,
}

impl Default for AccelAuthConfig {
    fn default() -> Self {
        Self {
            rocket: MiniRocketConfig::default(),
            ridge: RidgeCvConfig::default(),
            waveform_len: 384,
            margin_s: 0.5,
        }
    }
}

/// An enrolled accelerometer profile.
#[derive(Debug, Clone)]
pub struct AccelProfile {
    rocket: MiniRocket,
    clf: RidgeClassifier,
}

/// Extracts the 3-axis accel waveform spanning the PIN entry,
/// resampled to a fixed length and z-normalized per axis.
///
/// # Errors
///
/// Returns [`AuthError::InvalidRecording`] when the recording has no
/// accelerometer track or no keystroke timestamps.
pub fn accel_waveform(config: &AccelAuthConfig, rec: &Recording) -> Result<MultiSeries, AuthError> {
    let track = rec
        .accel
        .as_ref()
        .ok_or_else(|| AuthError::InvalidRecording {
            detail: "recording has no accelerometer track".into(),
        })?;
    if rec.reported_key_times.is_empty() {
        return Err(AuthError::InvalidRecording {
            detail: "no keystroke timestamps".into(),
        });
    }
    let n = track.axes[0].len();
    if n < 8 {
        return Err(AuthError::InvalidRecording {
            detail: "accel track too short".into(),
        });
    }
    // Map PPG-domain keystroke indices to the accel time axis.
    let to_accel = |idx: usize| -> f64 { idx as f64 / rec.sample_rate * track.sample_rate };
    let first = rec.reported_key_times.iter().min().copied().unwrap_or(0);
    let last = rec.reported_key_times.iter().max().copied().unwrap_or(0);
    let margin = config.margin_s * track.sample_rate;
    let start = (to_accel(first) - margin).max(0.0) as usize;
    let end = ((to_accel(last) + margin) as usize).min(n).max(start + 2);
    let channels: Vec<Vec<f64>> = track
        .axes
        .iter()
        .map(|axis| {
            let crop = &axis[start..end];
            let resampled = resample_linear(crop, (end - start) as f64, config.waveform_len as f64);
            zscore(&resampled)
        })
        .collect();
    MultiSeries::new(channels).map_err(|e| AuthError::InvalidRecording {
        detail: e.to_string(),
    })
}

/// Enrolls the accelerometer pipeline (positives = user recordings,
/// negatives = third-party recordings, as in the main system).
///
/// # Errors
///
/// Returns [`AuthError`] on missing accel data, too few recordings, or
/// training failure.
pub fn enroll_accel(
    config: &AccelAuthConfig,
    recordings: &[Recording],
    third_party: &[Recording],
) -> Result<AccelProfile, AuthError> {
    let _span = p2auth_obs::span!("baseline.accel.enroll");
    if recordings.len() < 2 {
        return Err(AuthError::NotEnoughRecordings {
            needed: 2,
            got: recordings.len(),
        });
    }
    if third_party.is_empty() {
        return Err(AuthError::NoThirdPartyData);
    }
    let mut train = Vec::with_capacity(recordings.len() + third_party.len());
    for rec in recordings.iter().chain(third_party) {
        train.push(accel_waveform(config, rec)?);
    }
    let rocket =
        MiniRocket::fit(&config.rocket, &train).map_err(|e| AuthError::FeatureExtraction {
            detail: e.to_string(),
        })?;
    let x: Vec<Vec<f64>> = train.iter().map(|s| rocket.transform_one(s)).collect();
    let mut y = vec![1_i8; recordings.len()];
    y.extend(std::iter::repeat_n(-1, third_party.len()));
    let clf = RidgeClassifier::fit(&config.ridge, &x, &y).map_err(|e| AuthError::Training {
        detail: e.to_string(),
    })?;
    Ok(AccelProfile { rocket, clf })
}

/// Authenticates one attempt; returns `(accepted, decision score)`.
///
/// # Errors
///
/// Returns [`AuthError`] when the attempt lacks accel data.
pub fn authenticate_accel(
    config: &AccelAuthConfig,
    profile: &AccelProfile,
    attempt: &Recording,
) -> Result<(bool, f64), AuthError> {
    let _span = p2auth_obs::span!("baseline.accel.auth");
    let w = accel_waveform(config, attempt)?;
    let f = profile.rocket.transform_one(&w);
    let score = profile.clf.decision(&f);
    Ok((score > 0.0, score))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2auth_core::types::{HandMode, Pin};
    use p2auth_sim::{Population, PopulationConfig, SessionConfig};

    fn setup() -> (Population, Pin, SessionConfig) {
        let pop = Population::generate(&PopulationConfig {
            num_users: 5,
            seed: 2718,
            ..Default::default()
        });
        (pop, Pin::new("5094").unwrap(), SessionConfig::default())
    }

    #[test]
    fn enrolls_and_scores() {
        let (pop, pin, session) = setup();
        let cfg = AccelAuthConfig {
            rocket: MiniRocketConfig {
                num_features: 168,
                ..Default::default()
            },
            ..Default::default()
        };
        let enroll: Vec<_> = (0..6)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let third: Vec<_> = (0..8)
            .map(|i| {
                pop.record_entry(
                    1 + (i as usize % 3),
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    40 + i,
                )
            })
            .collect();
        let profile = enroll_accel(&cfg, &enroll, &third).unwrap();
        let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 99);
        let (_, score) = authenticate_accel(&cfg, &profile, &attempt).unwrap();
        assert!(score.is_finite());
    }

    #[test]
    fn missing_accel_is_error() {
        let (pop, pin, _) = setup();
        let session = SessionConfig {
            include_accel: false,
            ..Default::default()
        };
        let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 0);
        assert!(matches!(
            accel_waveform(&AccelAuthConfig::default(), &rec),
            Err(AuthError::InvalidRecording { .. })
        ));
    }

    #[test]
    fn waveform_shape() {
        let (pop, pin, session) = setup();
        let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 0);
        let w = accel_waveform(&AccelAuthConfig::default(), &rec).unwrap();
        assert_eq!(w.num_channels(), 3);
        assert_eq!(w.len(), 384);
    }

    #[test]
    fn too_few_recordings_rejected() {
        let (pop, pin, session) = setup();
        let one = vec![pop.record_entry(0, &pin, HandMode::OneHanded, &session, 0)];
        assert!(matches!(
            enroll_accel(&AccelAuthConfig::default(), &one, &one),
            Err(AuthError::NotEnoughRecordings { .. })
        ));
    }
}
