//! Baselines the P²Auth paper compares against.
//!
//! * [`manual`] — a reproduction of the manual-feature method of Shang
//!   & Wu ("A usable authentication system using wrist-worn
//!   photoplethysmography sensors on smartwatches", CNS'19) as the
//!   paper describes and re-tunes it (§V-D): handcrafted per-channel
//!   features plus DTW template distances, channel averaging, and a
//!   global threshold τ = 1.7. Template-based — it needs no attacker or
//!   third-party data — but "sensitive to the setting of thresholds"
//!   and expensive because of the DTW computations.
//! * [`accel_auth`] — the same MiniRocket + ridge pipeline run on the
//!   prototype's accelerometer instead of PPG (§V-E, Fig. 12), which
//!   underperforms because the wrist barely moves while typing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel_auth;
pub mod manual;
