//! Manual-feature baseline (Shang & Wu, CNS'19 — as reproduced and
//! re-tuned in the P²Auth paper, §V-D).
//!
//! The method is template-based: enrollment stores the legitimate
//! user's waveforms and per-feature statistics; authentication scores a
//! new attempt by (a) the average normalized DTW distance to the
//! enrolled templates and (b) the normalized deviation of handcrafted
//! features, averaged over channels, and accepts when the combined
//! score is below a threshold τ (1.7 after the paper's tuning).

use p2auth_core::config::P2AuthConfig;
use p2auth_core::error::AuthError;
use p2auth_core::preprocess;
use p2auth_core::types::Recording;
use p2auth_dsp::dtw::{dtw_normalized, DtwOptions};
use p2auth_dsp::fft::spectral_centroid;
use p2auth_dsp::normalize::zscore;
use p2auth_dsp::stats;

/// Configuration of the manual baseline.
#[derive(Debug, Clone)]
pub struct ManualConfig {
    /// Acceptance threshold τ on the combined score. The paper tunes
    /// τ to 1.7 on its own score scale; our combined score normalizes
    /// the DTW component by the enrollment's intra-user spread, so the
    /// equivalent operating point (legitimate-user accuracy around the
    /// paper's 0.62) sits at τ ≈ 0.75 — kept as the default. This very
    /// threshold sensitivity is one of the paper's criticisms of the
    /// method: it is "sensitive to the setting of thresholds and varies
    /// with each individual optimum".
    pub tau: f64,
    /// Sakoe–Chiba band for the DTW computations (`None` =
    /// unconstrained, as in the reference method — this is what makes
    /// it slow).
    pub dtw_band: Option<usize>,
    /// Length the full-entry waveform is resampled to.
    pub waveform_len: usize,
    /// Preprocessing settings (shared with the main pipeline so the
    /// comparison isolates the classification stage).
    pub preprocess: P2AuthConfig,
}

impl Default for ManualConfig {
    fn default() -> Self {
        Self {
            tau: 0.75,
            dtw_band: None,
            waveform_len: 512,
            preprocess: P2AuthConfig::default(),
        }
    }
}

/// An enrolled manual-method profile: templates and feature statistics.
#[derive(Debug, Clone)]
pub struct ManualProfile {
    /// Per enrollment recording: per-channel z-normalized waveforms.
    templates: Vec<Vec<Vec<f64>>>,
    /// Per-feature mean over the enrollment set.
    feat_mean: Vec<f64>,
    /// Per-feature standard deviation (floored).
    feat_std: Vec<f64>,
    /// Baseline DTW scale: mean pairwise template distance (floored).
    dtw_scale: f64,
    num_channels: usize,
}

/// Decision of the manual method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualDecision {
    /// Whether the attempt was accepted (`score <= tau`).
    pub accepted: bool,
    /// Combined distance score (smaller = more similar).
    pub score: f64,
}

/// The handcrafted per-channel feature vector (9 features per channel).
pub fn channel_features(x: &[f64], rate: f64) -> Vec<f64> {
    vec![
        stats::std_dev(x),
        stats::skewness(x),
        stats::kurtosis(x),
        stats::rms(x),
        stats::peak_to_peak(x),
        stats::mean_crossings(x) as f64 / x.len().max(1) as f64,
        spectral_centroid(x, rate),
        stats::autocorrelation(x, (0.25 * rate) as usize),
        stats::mean_abs_deviation(x),
    ]
}

fn extract_waveforms(config: &ManualConfig, rec: &Recording) -> Result<Vec<Vec<f64>>, AuthError> {
    let pre = preprocess::preprocess(&config.preprocess, rec)?;
    let seg_win = config
        .preprocess
        .scale_window(config.preprocess.segment_window, rec.sample_rate);
    let fw = p2auth_core::enroll::segmentation::full_waveform(
        &pre.filtered,
        &pre.calibrated_times,
        seg_win / 2,
        config.waveform_len,
    )?;
    Ok(fw.channels().iter().map(|c| zscore(c)).collect())
}

fn feature_vector(config: &ManualConfig, waveforms: &[Vec<f64>], rate: f64) -> Vec<f64> {
    let _ = config;
    let mut out = Vec::new();
    for w in waveforms {
        out.extend(channel_features(w, rate));
    }
    out
}

/// Enrolls the manual method from the user's recordings alone (its
/// selling point: "a strong classifier based on only the data of the
/// legitimate user").
///
/// # Errors
///
/// Returns [`AuthError`] if fewer than two recordings are given or
/// preprocessing fails.
pub fn enroll_manual(
    config: &ManualConfig,
    recordings: &[Recording],
) -> Result<ManualProfile, AuthError> {
    let _span = p2auth_obs::span!("baseline.manual.enroll");
    if recordings.len() < 2 {
        return Err(AuthError::NotEnoughRecordings {
            needed: 2,
            got: recordings.len(),
        });
    }
    let rate = recordings[0].sample_rate;
    let num_channels = recordings[0].num_channels();
    let mut templates = Vec::with_capacity(recordings.len());
    let mut feats = Vec::with_capacity(recordings.len());
    for rec in recordings {
        let w = extract_waveforms(config, rec)?;
        feats.push(feature_vector(config, &w, rate));
        templates.push(w);
    }
    // Feature statistics.
    let dim = feats[0].len();
    let mut feat_mean = vec![0.0; dim];
    for f in &feats {
        for (m, v) in feat_mean.iter_mut().zip(f) {
            *m += v;
        }
    }
    for m in feat_mean.iter_mut() {
        *m /= feats.len() as f64;
    }
    let mut feat_std = vec![0.0; dim];
    for f in &feats {
        for (s, (v, m)) in feat_std.iter_mut().zip(f.iter().zip(&feat_mean)) {
            *s += (v - m) * (v - m);
        }
    }
    for s in feat_std.iter_mut() {
        *s = (*s / feats.len() as f64).sqrt().max(1e-6);
    }
    // DTW scale: mean pairwise distance among templates (this is the
    // O(n² · L²) step that makes the reference method slow).
    let mut total = 0.0;
    let mut pairs = 0.0_f64;
    for i in 0..templates.len() {
        for j in i + 1..templates.len() {
            total += template_distance(config, &templates[i], &templates[j]);
            pairs += 1.0;
        }
    }
    let dtw_scale = (total / pairs.max(1.0)).max(1e-6);
    Ok(ManualProfile {
        templates,
        feat_mean,
        feat_std,
        dtw_scale,
        num_channels,
    })
}

fn template_distance(config: &ManualConfig, a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let opts = DtwOptions {
        band: config.dtw_band,
    };
    let per_channel: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| dtw_normalized(x, y, opts))
        .sum();
    per_channel / a.len() as f64
}

/// Authenticates one attempt against a manual profile.
///
/// # Errors
///
/// Returns [`AuthError`] on malformed recordings or a channel-count
/// mismatch.
pub fn authenticate_manual(
    config: &ManualConfig,
    profile: &ManualProfile,
    attempt: &Recording,
) -> Result<ManualDecision, AuthError> {
    let _span = p2auth_obs::span!("baseline.manual.auth");
    if attempt.num_channels() != profile.num_channels {
        return Err(AuthError::ProfileMismatch {
            detail: format!(
                "attempt has {} channels, profile trained with {}",
                attempt.num_channels(),
                profile.num_channels
            ),
        });
    }
    let w = extract_waveforms(config, attempt)?;
    // DTW component: distance to the nearest template, in units of the
    // enrollment's own intra-user spread.
    let d_min = profile
        .templates
        .iter()
        .map(|t| template_distance(config, t, &w))
        .fold(f64::INFINITY, f64::min);
    let dtw_score = d_min / profile.dtw_scale;
    // Feature component: mean absolute z-deviation.
    let f = feature_vector(config, &w, attempt.sample_rate);
    let fz = f
        .iter()
        .zip(profile.feat_mean.iter().zip(&profile.feat_std))
        .map(|(v, (m, s))| ((v - m) / s).abs())
        .sum::<f64>()
        / f.len() as f64;
    let score = 0.5 * (dtw_score + fz);
    Ok(ManualDecision {
        accepted: score <= config.tau,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2auth_core::types::{HandMode, Pin};
    use p2auth_sim::{Population, PopulationConfig, SessionConfig};

    fn setup() -> (Population, Pin, SessionConfig) {
        let pop = Population::generate(&PopulationConfig {
            num_users: 4,
            seed: 314,
            ..Default::default()
        });
        (pop, Pin::new("1628").unwrap(), SessionConfig::default())
    }

    #[test]
    fn legitimate_scores_below_attacker_scores() {
        let (pop, pin, session) = setup();
        let cfg = ManualConfig::default();
        let enroll: Vec<_> = (0..6)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let profile = enroll_manual(&cfg, &enroll).unwrap();
        let legit_scores: Vec<f64> = (0..4)
            .map(|i| {
                let a = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 100 + i);
                authenticate_manual(&cfg, &profile, &a).unwrap().score
            })
            .collect();
        let atk_scores: Vec<f64> = (0..4)
            .map(|i| {
                let a = pop.record_emulating_attack(1, 0, &pin, HandMode::OneHanded, &session, i);
                authenticate_manual(&cfg, &profile, &a).unwrap().score
            })
            .collect();
        let lm = legit_scores.iter().sum::<f64>() / 4.0;
        let am = atk_scores.iter().sum::<f64>() / 4.0;
        assert!(
            lm < am,
            "legit mean {lm} should be below attacker mean {am}"
        );
    }

    #[test]
    fn needs_two_recordings() {
        let (pop, pin, session) = setup();
        let one = vec![pop.record_entry(0, &pin, HandMode::OneHanded, &session, 0)];
        assert!(matches!(
            enroll_manual(&ManualConfig::default(), &one),
            Err(AuthError::NotEnoughRecordings { .. })
        ));
    }

    #[test]
    fn channel_mismatch_is_error() {
        let (pop, pin, session) = setup();
        let enroll: Vec<_> = (0..3)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let profile = enroll_manual(&ManualConfig::default(), &enroll).unwrap();
        let attempt = pop
            .record_entry(0, &pin, HandMode::OneHanded, &session, 9)
            .select_channels(&[0, 1]);
        assert!(matches!(
            authenticate_manual(&ManualConfig::default(), &profile, &attempt),
            Err(AuthError::ProfileMismatch { .. })
        ));
    }

    #[test]
    fn threshold_controls_acceptance() {
        let (pop, pin, session) = setup();
        let enroll: Vec<_> = (0..5)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 50);
        let profile = enroll_manual(&ManualConfig::default(), &enroll).unwrap();
        let strict = ManualConfig {
            tau: 0.0,
            ..Default::default()
        };
        let lax = ManualConfig {
            tau: 1e9,
            ..Default::default()
        };
        assert!(
            !authenticate_manual(&strict, &profile, &attempt)
                .unwrap()
                .accepted
        );
        assert!(
            authenticate_manual(&lax, &profile, &attempt)
                .unwrap()
                .accepted
        );
    }

    #[test]
    fn features_have_fixed_dimension() {
        let f = channel_features(&vec![0.5; 128], 100.0);
        assert_eq!(f.len(), 9);
    }
}
