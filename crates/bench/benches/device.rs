//! Criterion benches for the acquisition chain: frame codec throughput
//! and full-session packetize → link → reassemble latency.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p2auth_device::clock::VirtualClock;
use p2auth_device::host::transmit;
use p2auth_device::{Frame, Link, LinkConfig, WearableDevice};
use p2auth_sim::{HandMode, Pin, Population, PopulationConfig, SessionConfig};

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("device");

    // Frame codec.
    let frame = Frame::Ppg {
        channel: 2,
        seq: 77,
        samples: vec![0.25_f32; 10],
    };
    g.bench_function("frame_encode_ppg10", |b| {
        b.iter(|| black_box(&frame).encode())
    });
    let bytes = frame.encode();
    g.bench_function("frame_decode_ppg10", |b| {
        b.iter(|| Frame::decode(black_box(&bytes)).expect("decode"))
    });

    // Full session over the virtual link.
    let pop = Population::generate(&PopulationConfig {
        num_users: 2,
        ..Default::default()
    });
    let pin = Pin::new("1628").expect("valid");
    let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &SessionConfig::default(), 0);
    let device = WearableDevice::new(VirtualClock::new(1.0, 50.0));
    g.bench_function("packetize_session", |b| {
        b.iter(|| device.packetize(black_box(&rec)))
    });
    g.bench_function("transmit_session_round_trip", |b| {
        b.iter(|| {
            let mut data = Link::new(LinkConfig::default());
            let mut keys = Link::new(LinkConfig {
                seed: 9,
                ..LinkConfig::default()
            });
            transmit(black_box(&rec), &device, &mut data, &mut keys).expect("transmit")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
