//! Criterion benches for the DSP substrate: the per-block costs behind
//! the preprocessing phase.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use p2auth_dsp::detrend::detrend;
use p2auth_dsp::dtw::{dtw, DtwOptions};
use p2auth_dsp::energy::short_time_energy;
use p2auth_dsp::fft::power_spectrum;
use p2auth_dsp::median::median_filter;
use p2auth_dsp::savgol::savgol_filter;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (t * 0.08).sin() + 0.3 * (t * 0.6).cos() + 0.001 * t
        })
        .collect()
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsp");
    for n in [600_usize, 2400] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("median_w5", n), &x, |b, x| {
            b.iter(|| median_filter(black_box(x), 5))
        });
        g.bench_with_input(BenchmarkId::new("savgol_w9o2", n), &x, |b, x| {
            b.iter(|| savgol_filter(black_box(x), 9, 2))
        });
        g.bench_with_input(BenchmarkId::new("detrend_l50", n), &x, |b, x| {
            b.iter(|| detrend(black_box(x), 50.0))
        });
        g.bench_with_input(BenchmarkId::new("short_time_energy_w20", n), &x, |b, x| {
            b.iter(|| short_time_energy(black_box(x), 20, 20))
        });
        g.bench_with_input(BenchmarkId::new("power_spectrum", n), &x, |b, x| {
            b.iter(|| power_spectrum(black_box(x)))
        });
    }
    // DTW at the manual baseline's operating size (the cost the paper
    // criticizes).
    let a = signal(512);
    let b512 = signal(512);
    g.bench_function("dtw_unbanded_512", |b| {
        b.iter(|| dtw(black_box(&a), black_box(&b512), DtwOptions::default()))
    });
    g.bench_function("dtw_band32_512", |b| {
        b.iter(|| {
            dtw(
                black_box(&a),
                black_box(&b512),
                DtwOptions { band: Some(32) },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
