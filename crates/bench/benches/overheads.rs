//! Criterion bench backing Table I: ROCKET-based vs manual-feature
//! enrollment and authentication times (the `table1` binary reports the
//! one-shot numbers with memory; this bench gives statistically robust
//! timings).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p2auth_baseline::manual::{authenticate_manual, enroll_manual, ManualConfig};
use p2auth_bench::harness::{build_dataset, paper_pins, ProtocolConfig};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn bench_overheads(c: &mut Criterion) {
    let pop = Population::generate(&PopulationConfig {
        num_users: 15,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let pin = &paper_pins()[0];
    let cfg = P2AuthConfig::default();
    let manual_cfg = ManualConfig::default();
    let data = build_dataset(&pop, 0, pin, &session, &proto);
    let attempt = &data.legit_one[0];

    let system = P2Auth::new(cfg);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("rocket_enroll", |b| {
        b.iter(|| {
            system
                .enroll(
                    black_box(pin),
                    black_box(&data.enroll),
                    black_box(&data.third_party),
                )
                .expect("enroll")
        })
    });
    let profile = system
        .enroll(pin, &data.enroll, &data.third_party)
        .expect("enroll");
    g.bench_function("rocket_authenticate", |b| {
        b.iter(|| {
            system
                .authenticate(&profile, pin, black_box(attempt))
                .expect("auth")
        })
    });
    g.bench_function("manual_enroll", |b| {
        b.iter(|| enroll_manual(&manual_cfg, black_box(&data.enroll)).expect("enroll"))
    });
    let mp = enroll_manual(&manual_cfg, &data.enroll).expect("enroll");
    g.bench_function("manual_authenticate", |b| {
        b.iter(|| authenticate_manual(&manual_cfg, &mp, black_box(attempt)).expect("auth"))
    });
    g.finish();
}

criterion_group!(benches, bench_overheads);
criterion_main!(benches);
