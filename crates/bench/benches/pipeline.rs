//! Criterion benches for the end-to-end P²Auth pipeline stages —
//! preprocessing, enrollment and authentication — plus ablations of the
//! preprocessing design choices (calibration and detrending on/off
//! equivalents).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use p2auth_core::preprocess::preprocess;
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn bench_pipeline(c: &mut Criterion) {
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        ..Default::default()
    });
    let pin = Pin::new("1628").expect("valid PIN");
    let session = SessionConfig::default();
    let cfg = P2AuthConfig::default();
    let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 0);

    let mut g = c.benchmark_group("pipeline");
    g.bench_function("synthesize_recording", |b| {
        let mut n = 0_u64;
        b.iter(|| {
            n += 1;
            black_box(pop.record_entry(0, &pin, HandMode::OneHanded, &session, 10_000 + n))
        })
    });
    g.bench_function("preprocess", |b| {
        b.iter(|| preprocess(&cfg, black_box(&rec)).expect("valid"))
    });

    // Enrollment and authentication at the paper's scale (9 enroll, 100
    // third-party) are heavy; run with reduced sample counts so the
    // bench converges, and use the fig10/table1 harnesses for the
    // full-scale numbers.
    let enroll: Vec<_> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..24)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 6),
                &pin,
                HandMode::OneHanded,
                &session,
                600 + i,
            )
        })
        .collect();
    let system = P2Auth::new(cfg.clone());
    g.sample_size(10);
    g.bench_function("enroll_6pos_24neg", |b| {
        b.iter(|| {
            system
                .enroll(black_box(&pin), black_box(&enroll), black_box(&third))
                .expect("enroll")
        })
    });
    let profile = system.enroll(&pin, &enroll, &third).expect("enroll");
    g.bench_function("authenticate_one_handed", |b| {
        b.iter(|| {
            system
                .authenticate(black_box(&profile), &pin, black_box(&rec))
                .expect("auth")
        })
    });
    let two = pop.record_entry_two_handed(0, &pin, 3, &session, 7);
    g.bench_function("authenticate_two_handed", |b| {
        b.iter(|| {
            system
                .authenticate(black_box(&profile), &pin, black_box(&two))
                .expect("auth")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
