//! Criterion benches for the MiniRocket transform — the feature
//! extractor whose "very low computational cost" motivates the paper's
//! model choice.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use p2auth_rocket::{ConvScratch, MiniRocket, MiniRocketConfig, MultiSeries};

fn series(len: usize, channels: usize, seed: u64) -> MultiSeries {
    let data: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            (0..len)
                .map(|i| ((i as f64 + seed as f64) * 0.11 + c as f64).sin())
                .collect()
        })
        .collect();
    MultiSeries::new(data).expect("valid series")
}

fn bench_rocket(c: &mut Criterion) {
    let mut g = c.benchmark_group("minirocket");
    for (len, channels) in [(90_usize, 4_usize), (512, 4), (512, 1)] {
        let train: Vec<MultiSeries> = (0..8).map(|s| series(len, channels, s)).collect();
        let cfg = MiniRocketConfig::default();
        g.bench_with_input(
            BenchmarkId::new("fit", format!("len{len}x{channels}ch")),
            &train,
            |b, train| b.iter(|| MiniRocket::fit(&cfg, black_box(train)).expect("fit")),
        );
        let rocket = MiniRocket::fit(&cfg, &train).expect("fit");
        let sample = series(len, channels, 99);
        g.bench_with_input(
            BenchmarkId::new("transform_one", format!("len{len}x{channels}ch")),
            &sample,
            |b, s| b.iter(|| rocket.transform_one(black_box(s))),
        );
        g.bench_with_input(
            BenchmarkId::new(
                "transform_one_reused_scratch",
                format!("len{len}x{channels}ch"),
            ),
            &sample,
            |b, s| {
                let mut scratch = ConvScratch::new(len);
                b.iter(|| rocket.transform_one_with(black_box(s), &mut scratch))
            },
        );
        let batch: Vec<MultiSeries> = (0..32).map(|s| series(len, channels, 100 + s)).collect();
        g.bench_with_input(
            BenchmarkId::new("transform_batch32", format!("len{len}x{channels}ch")),
            &batch,
            |b, batch| b.iter(|| rocket.transform(black_box(batch))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_rocket);
criterion_main!(benches);
