//! Counting global allocator for memory-overhead measurements
//! (Table I of the paper reports MiB for enrollment and
//! authentication; the original authors used python's memory profiler —
//! we count heap traffic at the allocator).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A `System`-backed allocator that tracks live and peak heap usage.
///
/// Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: p2auth_bench::alloc::CountingAllocator = p2auth_bench::alloc::CountingAllocator::new();
/// ```
pub struct CountingAllocator {
    live: AtomicUsize,
    peak: AtomicUsize,
    total: AtomicUsize,
}

impl CountingAllocator {
    /// Creates the allocator (const so it can be a static).
    pub const fn new() -> Self {
        Self {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            total: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live heap bytes.
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes ever allocated.
    pub fn total_allocated(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size (to scope a
    /// measurement).
    pub fn reset_peak(&self) {
        self.peak.store(self.live_bytes(), Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY-FREE NOTE: this impl only delegates to `System` and updates
// atomic counters; the crate-level `forbid(unsafe_code)` is relaxed
// here because implementing `GlobalAlloc` is inherently unsafe.
#[allow(unsafe_code)]
// The trait itself is unsafe to implement; the delegation to `System`
// upholds its contract unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.total.fetch_add(layout.size(), Ordering::Relaxed);
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}
