//! Ablations of the design choices §IV calls out: each row removes or
//! weakens one pipeline component and reports what the headline
//! one-handed metrics become. Not a paper figure — this is the
//! reproduction's own analysis of why the pieces exist.
//!
//! Components ablated:
//! * fine-grained keystroke-time calibration (paper Eq. (1)),
//! * smoothness-priors detrending before case identification (Eq. (2)),
//! * median-filter noise removal,
//! * fusion alignment (reproduction addition on top of Eq. (4)),
//! * the privacy boost itself (accuracy cost of fusing, Fig. 8),
//! * per-keystroke results integration thresholds (§IV-B 3).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin ablations [users]`.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, users_arg,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn run(
    cfg: &P2AuthConfig,
    datasets: &[p2auth_bench::harness::Dataset],
    pin: &p2auth_core::Pin,
    boost_path: bool,
) -> (String, String) {
    let mut accs = Vec::new();
    let mut trrs = Vec::new();
    for data in datasets {
        let system = P2Auth::new(cfg.clone());
        let Ok(profile) = system.enroll(pin, &data.enroll, &data.third_party) else {
            continue;
        };
        let s = evaluate_case(
            &system,
            &profile,
            pin,
            &data.legit_one,
            &data.ra_one,
            &data.ea_one,
        );
        accs.push(s.accuracy);
        trrs.push(0.5 * (s.trr_random + s.trr_emulating));
    }
    let _ = boost_path;
    if accs.is_empty() {
        ("enrollment impossible".into(), "-".into())
    } else {
        (format!("{:.3}", mean(&accs)), format!("{:.3}", mean(&trrs)))
    }
}

fn main() {
    let users = users_arg(12);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let pin = &paper_pins()[0];
    let datasets: Vec<_> = (0..pop.num_users())
        .map(|u| build_dataset(&pop, u, pin, &session, &proto))
        .collect();

    let base = P2AuthConfig::default();

    println!("# Ablations — one-handed case, {users} users");
    print_header(&["variant", "accuracy", "trr"]);

    let (acc, trr) = run(&base, &datasets, pin, false);
    print_row(&["full pipeline".into(), acc, trr]);

    // No fine-grained calibration: shrink the search to (almost) the
    // reported time. The segment windows then inherit the full
    // communication jitter.
    let no_cal = P2AuthConfig {
        calibration_radius_before: 1,
        calibration_radius_after: 1,
        ..base.clone()
    };
    let (acc, trr) = run(&no_cal, &datasets, pin, false);
    print_row(&["no keystroke-time calibration".into(), acc, trr]);

    // No detrending before the energy analysis: baseline drift leaks
    // into the short-time energies and the case identification.
    let no_detrend = P2AuthConfig {
        detrend_lambda: 0.0,
        ..base.clone()
    };
    let (acc, trr) = run(&no_detrend, &datasets, pin, false);
    print_row(&["no detrending (lambda=0)".into(), acc, trr]);

    // No median filtering.
    let no_median = P2AuthConfig {
        median_window: 1,
        ..base.clone()
    };
    let (acc, trr) = run(&no_median, &datasets, pin, false);
    print_row(&["no median filter".into(), acc, trr]);

    // Privacy boost with and without fusion alignment.
    let boost = P2AuthConfig {
        privacy_boost: true,
        ..base.clone()
    };
    let (acc, trr) = run(&boost, &datasets, pin, true);
    print_row(&["privacy boost (aligned fusion)".into(), acc, trr]);
    let boost_plain = P2AuthConfig {
        privacy_boost: true,
        fusion_max_shift: 0,
        ..base.clone()
    };
    let (acc, trr) = run(&boost_plain, &datasets, pin, true);
    print_row(&["privacy boost (plain Eq. 4 fusion)".into(), acc, trr]);

    // Coarser feature extractor.
    let small_rocket = P2AuthConfig {
        rocket: p2auth_rocket::MiniRocketConfig {
            num_features: 168,
            ..Default::default()
        },
        ..base.clone()
    };
    let (acc, trr) = run(&small_rocket, &datasets, pin, false);
    print_row(&["168 rocket features (vs 840)".into(), acc, trr]);
}
