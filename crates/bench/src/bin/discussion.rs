//! The paper's §VI discussion points, quantified on the simulator:
//!
//! * **Wearing position** — the paper requires the watch on the inner
//!   wrist; back-of-hand (dorsal) placement "was less stable". We
//!   compare a standard inner-wrist layout against a dorsal layout.
//! * **Moving hands** — spurious wrist motions degrade the signal; we
//!   sweep the subjects' extra-motion rate to show graceful
//!   degradation (authentication is expected to happen while
//!   relatively static, e.g. during payments).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin discussion [users]`.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, users_arg,
    ProtocolConfig,
};
use p2auth_core::{ChannelInfo, P2Auth, P2AuthConfig, Placement, Wavelength};
use p2auth_sim::{Population, PopulationConfig, SessionConfig, Subject};

fn eval_population(pop: &Population, users: usize, pin: &p2auth_core::Pin) -> (f64, f64) {
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig::default();
    let mut accs = Vec::new();
    let mut trrs = Vec::new();
    for user in 0..users.min(pop.num_users()) {
        let data = build_dataset(pop, user, pin, &session, &proto);
        let system = P2Auth::new(cfg.clone());
        let Ok(profile) = system.enroll(pin, &data.enroll, &data.third_party) else {
            continue;
        };
        let s = evaluate_case(
            &system,
            &profile,
            pin,
            &data.legit_one,
            &data.ra_one,
            &data.ea_one,
        );
        accs.push(s.accuracy);
        trrs.push(0.5 * (s.trr_random + s.trr_emulating));
    }
    (mean(&accs), mean(&trrs))
}

fn main() {
    let users = users_arg(10);
    let pin = &paper_pins()[0];

    // ---- wearing position -------------------------------------------
    let inner = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let dorsal_layout = vec![
        ChannelInfo {
            wavelength: Wavelength::Infrared,
            placement: Placement::Dorsal,
        },
        ChannelInfo {
            wavelength: Wavelength::Red,
            placement: Placement::Dorsal,
        },
        ChannelInfo {
            wavelength: Wavelength::Infrared,
            placement: Placement::Dorsal,
        },
        ChannelInfo {
            wavelength: Wavelength::Red,
            placement: Placement::Dorsal,
        },
    ];
    let dorsal = Population::generate(&PopulationConfig {
        num_users: users,
        channels: dorsal_layout,
        ..Default::default()
    });
    println!("# Discussion — wearing position (paper §VI)");
    print_header(&["placement", "accuracy", "trr"]);
    let (acc, trr) = eval_population(&inner, users, pin);
    print_row(&[
        "inner wrist (radial+ulnar)".into(),
        format!("{acc:.3}"),
        format!("{trr:.3}"),
    ]);
    let (acc, trr) = eval_population(&dorsal, users, pin);
    print_row(&[
        "back of hand (dorsal)".into(),
        format!("{acc:.3}"),
        format!("{trr:.3}"),
    ]);

    // ---- moving hands -------------------------------------------------
    // Rebuild cohorts whose subjects all share a given extra-motion
    // rate, keeping everything else identical.
    println!();
    println!("# Discussion — spurious wrist motion (paper §VI)");
    print_header(&["extra_motion_rate_hz", "accuracy", "trr"]);
    for rate in [0.0, 0.2, 0.5, 1.0] {
        let mut pop = Population::generate(&PopulationConfig {
            num_users: users,
            ..Default::default()
        });
        pop = pop.map_subjects(|s| Subject {
            extra_motion_rate_hz: rate,
            ..s
        });
        let (acc, trr) = eval_population(&pop, users, pin);
        print_row(&[format!("{rate}"), format!("{acc:.3}"), format!("{trr:.3}")]);
    }
    println!();
    println!("expected shapes: dorsal below inner wrist; graceful degradation with motion");
}
