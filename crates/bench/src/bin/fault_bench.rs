//! Fault-injection sweep over the device link: end-to-end auth success
//! and FAR/FRR as a function of frame-loss (and proportional
//! corruption) rate, with NACK-based retransmission enabled. The
//! acceptance bar for the recovery layer is that auth success at 2%
//! frame loss stays within 1 point of the clean channel.
//!
//! Every session streams through [`p2auth_device::transmit_reliable`]
//! over a seeded [`p2auth_device::FaultyLink`] pair and is decided by
//! the coverage-gated policy of [`p2auth_device::decide_session`], so
//! degraded and aborted sessions are first-class outcomes, not errors.
//!
//! Writes `BENCH_fault.json` in the current directory.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fault_bench [users]`

use p2auth_bench::harness::{mean, paper_pins, print_header, print_row, users_arg};
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, UserProfile};
use p2auth_device::clock::VirtualClock;
use p2auth_device::link::{FaultConfig, LinkConfig};
use p2auth_device::{
    decide_session, transmit_reliable, FaultyLink, ReliableConfig, SessionOutcome, WearableDevice,
};
use p2auth_sim::{Population, PopulationConfig, Recording, SessionConfig};

/// Frame-loss rates swept (corruption rides along at a quarter of the
/// loss rate).
const LOSS_RATES: [f64; 4] = [0.0, 0.02, 0.05, 0.10];
/// Channel seeds per rate — three independent fault realizations.
const SEEDS: [u64; 3] = [1, 2, 3];
/// Legitimate / attack sessions per (rate, seed) cell.
const SESSIONS: usize = 4;

struct Cell {
    loss: f64,
    seed: u64,
    legit_accepted: usize,
    legit_total: usize,
    attacks_accepted: usize,
    attacks_total: usize,
    degraded: usize,
    aborted: usize,
    retransmissions: usize,
    backoff_waits: usize,
    gap_blocks: usize,
    coverage_sum: f64,
    coverage_n: usize,
    /// `TransferStats` line of the cell's last session, for the log.
    last_transfer: String,
}

#[allow(clippy::too_many_arguments)]
fn run_session(
    system: &P2Auth,
    profile: &UserProfile,
    pin: &Pin,
    rec: &Recording,
    device: &WearableDevice,
    loss: f64,
    seed: u64,
    cell: &mut Cell,
) -> bool {
    let faults = FaultConfig {
        drop_rate: loss,
        corrupt_rate: loss / 4.0,
        seed,
        ..FaultConfig::default()
    };
    let mut data = FaultyLink::new(LinkConfig::default(), faults);
    let mut keys = FaultyLink::new(
        LinkConfig {
            seed: seed ^ 0x4b,
            ..LinkConfig::default()
        },
        FaultConfig {
            seed: seed ^ 0x1234,
            ..faults
        },
    );
    let (result, stats) = transmit_reliable(
        rec,
        device,
        &mut data,
        &mut keys,
        &ReliableConfig::default(),
    );
    cell.retransmissions += stats.retransmissions;
    cell.backoff_waits += stats.backoff_waits;
    cell.last_transfer = stats.to_string();
    match result {
        Ok((rebuilt, quality)) => {
            cell.coverage_sum += quality.coverage;
            cell.coverage_n += 1;
            cell.gap_blocks += quality.gap_blocks;
            let outcome = decide_session(system, profile, Some(pin), &rebuilt, quality);
            match &outcome {
                SessionOutcome::Degraded { .. } => cell.degraded += 1,
                SessionOutcome::Abort { .. } => cell.aborted += 1,
                SessionOutcome::Decision(_) => {}
            }
            outcome.accepted()
        }
        Err(_) => {
            cell.aborted += 1;
            false
        }
    }
}

fn main() {
    let users = users_arg(5).max(4);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        seed: 0xfa_0175,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let cfg = P2AuthConfig::fast();
    let system = P2Auth::new(cfg);
    let pin = &paper_pins()[0];
    let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));

    // Enroll user 0 once, on clean data; the sweep degrades only the
    // authentication-time link.
    let enroll: Vec<Recording> = (0..9)
        .map(|i| pop.record_entry(0, pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<Recording> = (0..24)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % (users - 1)),
                pin,
                HandMode::OneHanded,
                &session,
                300 + i,
            )
        })
        .collect();
    let profile = system.enroll(pin, &enroll, &third).expect("enrollment");

    println!("# fault_bench — auth vs link fault rate (NACK recovery on)");
    print_header(&[
        "loss", "seed", "success", "far", "frr", "degraded", "aborted", "retx", "coverage",
    ]);

    let mut cells: Vec<Cell> = Vec::new();
    for &loss in &LOSS_RATES {
        for &seed in &SEEDS {
            let mut cell = Cell {
                loss,
                seed,
                legit_accepted: 0,
                legit_total: 0,
                attacks_accepted: 0,
                attacks_total: 0,
                degraded: 0,
                aborted: 0,
                retransmissions: 0,
                backoff_waits: 0,
                gap_blocks: 0,
                coverage_sum: 0.0,
                coverage_n: 0,
                last_transfer: String::new(),
            };
            for s in 0..SESSIONS {
                let nonce = 900 + s as u64;
                let legit = pop.record_entry(0, pin, HandMode::OneHanded, &session, nonce);
                cell.legit_total += 1;
                if run_session(
                    &system,
                    &profile,
                    pin,
                    &legit,
                    &device,
                    loss,
                    seed * 101 + s as u64,
                    &mut cell,
                ) {
                    cell.legit_accepted += 1;
                }
                let attacker = 1 + (s % (users - 1));
                let attack = pop.record_emulating_attack(
                    attacker,
                    0,
                    pin,
                    HandMode::OneHanded,
                    &session,
                    nonce,
                );
                cell.attacks_total += 1;
                if run_session(
                    &system,
                    &profile,
                    pin,
                    &attack,
                    &device,
                    loss,
                    seed * 211 + s as u64,
                    &mut cell,
                ) {
                    cell.attacks_accepted += 1;
                }
            }
            let success = cell.legit_accepted as f64 / cell.legit_total as f64;
            let far = cell.attacks_accepted as f64 / cell.attacks_total as f64;
            let coverage = if cell.coverage_n > 0 {
                cell.coverage_sum / cell.coverage_n as f64
            } else {
                0.0
            };
            print_row(&[
                format!("{loss:.2}"),
                format!("{seed}"),
                format!("{success:.3}"),
                format!("{far:.3}"),
                format!("{:.3}", 1.0 - success),
                format!("{}", cell.degraded),
                format!("{}", cell.aborted),
                format!("{}", cell.retransmissions),
                format!("{coverage:.3}"),
            ]);
            println!("  last transfer: {}", cell.last_transfer);
            cells.push(cell);
        }
    }

    // Per-rate aggregates across seeds.
    let mut entries = Vec::new();
    let mut clean_success = None;
    let mut success_at_2pct = None;
    for &loss in &LOSS_RATES {
        let at: Vec<&Cell> = cells.iter().filter(|c| c.loss == loss).collect();
        let success = mean(
            &at.iter()
                .map(|c| c.legit_accepted as f64 / c.legit_total as f64)
                .collect::<Vec<_>>(),
        );
        let far = mean(
            &at.iter()
                .map(|c| c.attacks_accepted as f64 / c.attacks_total as f64)
                .collect::<Vec<_>>(),
        );
        let coverage = mean(
            &at.iter()
                .map(|c| {
                    if c.coverage_n > 0 {
                        c.coverage_sum / c.coverage_n as f64
                    } else {
                        0.0
                    }
                })
                .collect::<Vec<_>>(),
        );
        let degraded: usize = at.iter().map(|c| c.degraded).sum();
        let aborted: usize = at.iter().map(|c| c.aborted).sum();
        let retx: usize = at.iter().map(|c| c.retransmissions).sum();
        let backoffs: usize = at.iter().map(|c| c.backoff_waits).sum();
        let gaps: usize = at.iter().map(|c| c.gap_blocks).sum();
        if loss == 0.0 {
            clean_success = Some(success);
        }
        if loss == 0.02 {
            success_at_2pct = Some(success);
        }
        entries.push(format!(
            "    {{ \"loss_rate\": {loss:.2}, \"auth_success\": {success:.4}, \
             \"far\": {far:.4}, \"frr\": {:.4}, \"mean_coverage\": {coverage:.4}, \
             \"degraded_sessions\": {degraded}, \"aborted_sessions\": {aborted}, \
             \"retransmissions\": {retx}, \"backoff_waits\": {backoffs}, \
             \"gap_blocks\": {gaps} }}",
            1.0 - success
        ));
    }

    let clean = clean_success.expect("0.0 is swept");
    let lossy = success_at_2pct.expect("0.02 is swept");
    let delta = (clean - lossy).abs();
    println!();
    println!(
        "clean success {clean:.3}, 2% loss success {lossy:.3}, delta {delta:.3} \
         (acceptance: within 0.01)"
    );

    let json = format!(
        "{{\n  \"bench\": \"fault\",\n  \"users\": {users},\n  \"sessions_per_cell\": {SESSIONS},\n  \
         \"seeds\": {:?},\n  \
         \"clean_auth_success\": {clean:.4},\n  \
         \"auth_success_at_2pct_loss\": {lossy:.4},\n  \
         \"success_delta_at_2pct\": {delta:.4},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        SEEDS,
        entries.join(",\n"),
    );
    std::fs::write("BENCH_fault.json", &json).expect("write BENCH_fault.json");
    println!("wrote BENCH_fault.json");
}
