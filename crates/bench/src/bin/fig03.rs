//! Fig. 3 — PPG measurements for different keystrokes of one volunteer,
//! two sensors (feasibility study, paper §III-B).
//!
//! Emits CSV: one column per (key, sensor) with the keystroke-induced
//! artifact template of subject 0, arranged as in the paper's PIN-pad
//! layout figure. Usage: `cargo run -p p2auth-bench --release --bin fig03 > fig03.csv`.

use p2auth_sim::artifact::{add_keystroke_artifact, EventJitter};
use p2auth_sim::channel::standard_layout;
use p2auth_sim::Subject;

fn main() {
    let subject = Subject::sample(0x1cdc_2023, 0);
    let layout = standard_layout(4);
    // Sensor 1 = IR radial (paper's sensor on one side), sensor 2 = IR
    // ulnar (the other side).
    let sensors = [layout[0], layout[2]];
    let rate = 100.0;
    let n = 120;

    let mut columns: Vec<(String, Vec<f64>)> = Vec::new();
    for digit in [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 0] {
        for (si, &info) in sensors.iter().enumerate() {
            let mut buf = vec![0.0; n];
            add_keystroke_artifact(
                &subject,
                digit,
                info,
                &mut buf,
                rate,
                0.2,
                &EventJitter::none(),
            );
            columns.push((format!("key{digit}_sensor{}", si + 1), buf));
        }
    }

    println!(
        "t_s,{}",
        columns
            .iter()
            .map(|(name, _)| name.clone())
            .collect::<Vec<_>>()
            .join(",")
    );
    for i in 0..n {
        let row: Vec<String> = columns
            .iter()
            .map(|(_, c)| format!("{:.5}", c[i]))
            .collect();
        println!("{:.2},{}", i as f64 / rate, row.join(","));
    }
    eprintln!(
        "fig03: {} columns x {n} samples; distinct per-key morphology of one subject",
        columns.len()
    );
}
