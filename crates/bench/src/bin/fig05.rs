//! Fig. 5 — data-preprocessing stages for one PIN entry: (a) median-
//! filtered signal with the coarse reported keystroke times, (b)
//! calibrated keystroke times, (c) detrended signal, (d) short-time
//! energy with the ½-mean decision threshold.
//!
//! Emits CSV sections to stdout; keystroke markers and the threshold go
//! to stderr. Usage: `cargo run -p p2auth-bench --release --bin fig05 > fig05.csv`.

use p2auth_core::preprocess::preprocess;
use p2auth_core::{HandMode, P2AuthConfig, Pin};
use p2auth_dsp::detrend::detrend;
use p2auth_dsp::energy::{half_mean_energy_threshold, short_time_energy};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn main() {
    let pop = Population::generate(&PopulationConfig::default());
    let pin = Pin::new("1628").expect("valid PIN");
    let session = SessionConfig::default();
    let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 5);
    let cfg = P2AuthConfig::default();
    let pre = preprocess(&cfg, &rec).expect("simulator recordings are valid");

    let ch = 0;
    let raw = &rec.ppg[ch];
    let filtered = &pre.filtered[ch];
    let detrended = detrend(filtered, cfg.detrend_lambda);
    let window = cfg.scale_window(cfg.energy_window, rec.sample_rate);
    let energy = short_time_energy(&detrended, window, window);
    let threshold = half_mean_energy_threshold(&detrended, window);

    println!("i,raw,filtered,detrended");
    for i in 0..raw.len() {
        println!("{i},{:.5},{:.5},{:.5}", raw[i], filtered[i], detrended[i]);
    }
    println!();
    println!("frame,short_time_energy");
    for (f, e) in energy.iter().enumerate() {
        println!("{f},{e:.5}");
    }

    eprintln!(
        "fig05: reported keystroke times (samples): {:?}",
        rec.reported_key_times
    );
    eprintln!(
        "fig05: calibrated keystroke times:          {:?}",
        pre.calibrated_times
    );
    eprintln!(
        "fig05: ground-truth touch times:            {:?}",
        rec.true_key_times
    );
    eprintln!("fig05: energy threshold (1/2 mean): {threshold:.5}");
    eprintln!(
        "fig05: detected case: {:?} present {:?}",
        pre.case.case, pre.case.present
    );
}
