//! Fig. 8 — overall performance of the privacy boost: per-volunteer
//! authentication accuracy and true rejection rate with waveform
//! fusion (paper §V-C: average accuracy ≈ 0.83, TRR close to or above
//! 0.90; stable volunteers like no. 8 do better than restless ones like
//! no. 11).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig08 [users]`
//! (the paper's figure shows 12 volunteers).

use p2auth_bench::harness::{
    evaluate_users, mean, paper_pins, print_header, print_row, users_arg, ProtocolConfig,
};
use p2auth_core::P2AuthConfig;
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn main() {
    let users = users_arg(12);
    let pop = Population::generate(&PopulationConfig {
        num_users: users.max(3),
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig {
        privacy_boost: true,
        ..P2AuthConfig::default()
    };
    let pin = &paper_pins()[0];

    println!("# Fig. 8 — privacy boost (waveform fusion), per volunteer");
    print_header(&[
        "volunteer",
        "accuracy",
        "trr_random",
        "trr_emulating",
        "stability_sigma",
    ]);
    // All volunteers are enrolled and evaluated in parallel; rows come
    // back sorted by user index, so the table is printed as before.
    let results = evaluate_users(&pop, pin, &session, &proto, &cfg);
    let mut accs = Vec::new();
    let mut trrs = Vec::new();
    for (user, s) in &results {
        accs.push(s.accuracy);
        trrs.push(0.5 * (s.trr_random + s.trr_emulating));
        print_row(&[
            format!("{}", user + 1),
            format!("{:.3}", s.accuracy),
            format!("{:.3}", s.trr_random),
            format!("{:.3}", s.trr_emulating),
            format!("{:.3}", pop.subject(*user).stability_sigma),
        ]);
    }
    println!();
    println!(
        "mean accuracy {:.3} (paper ≈ 0.83), mean TRR {:.3} (paper ≳ 0.90)",
        mean(&accs),
        mean(&trrs)
    );
}
