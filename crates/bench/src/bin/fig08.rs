//! Fig. 8 — overall performance of the privacy boost: per-volunteer
//! authentication accuracy and true rejection rate with waveform
//! fusion (paper §V-C: average accuracy ≈ 0.83, TRR close to or above
//! 0.90; stable volunteers like no. 8 do better than restless ones like
//! no. 11).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig08 [users]`
//! (the paper's figure shows 12 volunteers).

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, try_enroll, users_arg,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn main() {
    let users = users_arg(12);
    let pop = Population::generate(&PopulationConfig {
        num_users: users.max(3),
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig {
        privacy_boost: true,
        ..P2AuthConfig::default()
    };
    let pin = &paper_pins()[0];

    println!("# Fig. 8 — privacy boost (waveform fusion), per volunteer");
    print_header(&[
        "volunteer",
        "accuracy",
        "trr_random",
        "trr_emulating",
        "stability_sigma",
    ]);
    let mut accs = Vec::new();
    let mut trrs = Vec::new();
    for user in 0..pop.num_users() {
        let data = build_dataset(&pop, user, pin, &session, &proto);
        let Some(profile) = try_enroll(&cfg, pin, &data) else {
            continue;
        };
        let system = P2Auth::new(cfg.clone());
        let s = evaluate_case(
            &system,
            &profile,
            pin,
            &data.legit_one,
            &data.ra_one,
            &data.ea_one,
        );
        accs.push(s.accuracy);
        trrs.push(0.5 * (s.trr_random + s.trr_emulating));
        print_row(&[
            format!("{}", user + 1),
            format!("{:.3}", s.accuracy),
            format!("{:.3}", s.trr_random),
            format!("{:.3}", s.trr_emulating),
            format!("{:.3}", pop.subject(user).stability_sigma),
        ]);
    }
    println!();
    println!(
        "mean accuracy {:.3} (paper ≈ 0.83), mean TRR {:.3} (paper ≳ 0.90)",
        mean(&accs),
        mean(&trrs)
    );
}
