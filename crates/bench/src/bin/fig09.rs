//! Fig. 9 — PPG samples for PIN "1628" typed by four different users
//! (infrared channel, mean removed), showing the inter-user variation
//! the classifier exploits.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig09 > fig09.csv`.

use p2auth_dsp::normalize::remove_mean;
use p2auth_sim::{HandMode, Pin, Population, PopulationConfig, SessionConfig};

fn main() {
    let pop = Population::generate(&PopulationConfig::default());
    let pin = Pin::new("1628").expect("valid PIN");
    let session = SessionConfig::default();

    let mut columns = Vec::new();
    for user in 0..4 {
        let rec = pop.record_entry(user, &pin, HandMode::OneHanded, &session, 3);
        let mut x = rec.ppg[0].clone(); // infrared, radial
        remove_mean(&mut x);
        columns.push((format!("user{user}"), x, rec.true_key_times.clone()));
    }
    let n = columns
        .iter()
        .map(|(_, x, _)| x.len())
        .min()
        .expect("non-empty");
    println!(
        "i,{}",
        columns
            .iter()
            .map(|(u, _, _)| u.clone())
            .collect::<Vec<_>>()
            .join(",")
    );
    for i in 0..n {
        let row: Vec<String> = columns
            .iter()
            .map(|(_, x, _)| format!("{:.5}", x[i]))
            .collect();
        println!("{i},{}", row.join(","));
    }
    for (u, _, keys) in &columns {
        eprintln!("fig09: {u} keystroke samples at {keys:?}");
    }
}
