//! Fig. 10 — authentication accuracy for the five cases plus true
//! rejection rates under random and emulating attacks (paper §V-C).
//!
//! Paper reference values: single ≈ 0.98, single-boost ≈ 0.83,
//! double-3 ≈ 0.88, double-2 ≈ 0.70, five-case average ≈ 0.84;
//! TRR ≈ 0.98 for both attack types.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig10 [users]`
//! (default 15; pass a smaller count for a quick pass). All five paper
//! PINs are evaluated and averaged.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, try_enroll, users_arg,
    CaseSummary, ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig, PinPolicy};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let users = users_arg(15);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig::default();
    let cfg_boost = P2AuthConfig {
        privacy_boost: true,
        ..cfg.clone()
    };

    let mut single = Vec::new();
    let mut boost = Vec::new();
    let mut d3 = Vec::new();
    let mut d2 = Vec::new();
    let mut nopin = Vec::new();

    for pin in &paper_pins() {
        for user in 0..pop.num_users() {
            let data = build_dataset(&pop, user, pin, &session, &proto);
            let system = P2Auth::new(cfg.clone());
            if let Some(profile) = try_enroll(&cfg, pin, &data) {
                single.push(evaluate_case(
                    &system,
                    &profile,
                    pin,
                    &data.legit_one,
                    &data.ra_one,
                    &data.ea_one,
                ));
                d3.push(evaluate_case(
                    &system,
                    &profile,
                    pin,
                    &data.legit_double3,
                    &data.ra_one,
                    &data.ea_double3,
                ));
                d2.push(evaluate_case(
                    &system,
                    &profile,
                    pin,
                    &data.legit_double2,
                    &data.ra_one,
                    &data.ea_double2,
                ));
                // No-PIN flow: keystroke-pattern-only models.
                let sys_np = P2Auth::new(P2AuthConfig {
                    pin_policy: PinPolicy::NoPinAllowed,
                    ..cfg.clone()
                });
                if let Ok(np) = sys_np.enroll_no_pin(&data.enroll, &data.third_party) {
                    let mut acc = 0.0;
                    for rec in &data.legit_one {
                        if sys_np
                            .authenticate_no_pin(&np, rec)
                            .expect("valid")
                            .accepted
                        {
                            acc += 1.0;
                        }
                    }
                    let mut rej_ra = 0.0;
                    for rec in &data.ra_one {
                        if !sys_np
                            .authenticate_no_pin(&np, rec)
                            .expect("valid")
                            .accepted
                        {
                            rej_ra += 1.0;
                        }
                    }
                    let mut rej_ea = 0.0;
                    for rec in &data.ea_one {
                        if !sys_np
                            .authenticate_no_pin(&np, rec)
                            .expect("valid")
                            .accepted
                        {
                            rej_ea += 1.0;
                        }
                    }
                    nopin.push(CaseSummary {
                        accuracy: acc / data.legit_one.len() as f64,
                        trr_random: rej_ra / data.ra_one.len() as f64,
                        trr_emulating: rej_ea / data.ea_one.len() as f64,
                    });
                }
            }
            if let Some(profile) = try_enroll(&cfg_boost, pin, &data) {
                let system_b = P2Auth::new(cfg_boost.clone());
                boost.push(evaluate_case(
                    &system_b,
                    &profile,
                    pin,
                    &data.legit_one,
                    &data.ra_one,
                    &data.ea_one,
                ));
            }
        }
        eprintln!(
            "fig10: PIN {pin} done at {:.1}s",
            t0.elapsed().as_secs_f64()
        );
    }

    println!("# Fig. 10 — authentication accuracy and TRR for the 5 cases");
    println!(
        "# ({} users x {} PINs, {} legit / {} attack trials per cell)",
        users, 5, proto.n_legit, proto.n_attacks
    );
    print_header(&[
        "case",
        "accuracy",
        "trr_random",
        "trr_emulating",
        "paper_accuracy",
    ]);
    let rows: [(&str, &[CaseSummary], &str); 5] = [
        ("single (one-handed)", &single, "0.98"),
        ("single + privacy boost", &boost, "0.83"),
        ("double-3", &d3, "0.88"),
        ("double-2", &d2, "0.70"),
        ("no-PIN", &nopin, "~0.8"),
    ];
    let mut all_acc = Vec::new();
    for (name, v, paper) in rows {
        let acc = mean(&v.iter().map(|c| c.accuracy).collect::<Vec<_>>());
        let ra = mean(&v.iter().map(|c| c.trr_random).collect::<Vec<_>>());
        let ea = mean(&v.iter().map(|c| c.trr_emulating).collect::<Vec<_>>());
        all_acc.push(acc);
        print_row(&[
            name.to_string(),
            format!("{acc:.3}"),
            format!("{ra:.3}"),
            format!("{ea:.3}"),
            paper.to_string(),
        ]);
    }
    println!();
    println!(
        "five-case average accuracy: {:.3} (paper: ~0.84)",
        all_acc.iter().sum::<f64>() / all_acc.len() as f64
    );
    println!("elapsed: {:.1}s", t0.elapsed().as_secs_f64());
}
