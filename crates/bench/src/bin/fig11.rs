//! Fig. 11 — MiniRocket-based P²Auth vs the manual-feature method
//! (Shang & Wu reproduction with τ = 1.7), one-handed case without
//! privacy boost. The paper reports the manual method's accuracy at
//! ≈ 0.62 on this task, far below ROCKET, with a worse TRR as well.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig11 [users]`.

use p2auth_baseline::manual::{authenticate_manual, enroll_manual, ManualConfig};
use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, try_enroll, users_arg,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn main() {
    let users = users_arg(15);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig::default();
    let manual_cfg = ManualConfig::default();
    let pin = &paper_pins()[0];

    let mut rocket_acc = Vec::new();
    let mut rocket_trr = Vec::new();
    let mut manual_acc = Vec::new();
    let mut manual_trr = Vec::new();

    for user in 0..pop.num_users() {
        let data = build_dataset(&pop, user, pin, &session, &proto);
        if let Some(profile) = try_enroll(&cfg, pin, &data) {
            let system = P2Auth::new(cfg.clone());
            let s = evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            );
            rocket_acc.push(s.accuracy);
            rocket_trr.push(0.5 * (s.trr_random + s.trr_emulating));
        }
        // The manual method enrolls from the user's data alone.
        if let Ok(mp) = enroll_manual(&manual_cfg, &data.enroll) {
            let mut acc = 0.0;
            for rec in &data.legit_one {
                if authenticate_manual(&manual_cfg, &mp, rec)
                    .expect("valid")
                    .accepted
                {
                    acc += 1.0;
                }
            }
            let mut rej = 0.0;
            let attacks: Vec<_> = data.ra_one.iter().chain(&data.ea_one).collect();
            for rec in &attacks {
                if !authenticate_manual(&manual_cfg, &mp, rec)
                    .expect("valid")
                    .accepted
                {
                    rej += 1.0;
                }
            }
            manual_acc.push(acc / data.legit_one.len() as f64);
            manual_trr.push(rej / attacks.len() as f64);
        }
    }

    println!("# Fig. 11 — ROCKET-based vs manual-feature method (one-handed, no boost)");
    print_header(&["method", "accuracy", "trr", "paper_accuracy"]);
    print_row(&[
        "P2Auth (MiniRocket + ridge)".into(),
        format!("{:.3}", mean(&rocket_acc)),
        format!("{:.3}", mean(&rocket_trr)),
        "~0.98".into(),
    ]);
    print_row(&[
        "manual features + DTW (tau at paper's operating point)".into(),
        format!("{:.3}", mean(&manual_acc)),
        format!("{:.3}", mean(&manual_trr)),
        "0.62".into(),
    ]);
}
