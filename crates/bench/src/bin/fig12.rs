//! Fig. 12 — PPG-based vs accelerometer-based authentication, both
//! through the same MiniRocket + ridge pipeline (paper §V-E). PPG wins
//! on accuracy and is markedly more attack-resistant: "the volunteer
//! stays relatively stable during key presses with little wrist
//! movement, so the accelerometer data does not change significantly".
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig12 [users]`.

use p2auth_baseline::accel_auth::{authenticate_accel, enroll_accel, AccelAuthConfig};
use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, try_enroll, users_arg,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn main() {
    let users = users_arg(15);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig::default();
    let accel_cfg = AccelAuthConfig::default();
    let pin = &paper_pins()[0];

    let mut ppg_acc = Vec::new();
    let mut ppg_trr = Vec::new();
    let mut acc_acc = Vec::new();
    let mut acc_trr = Vec::new();

    for user in 0..pop.num_users() {
        let data = build_dataset(&pop, user, pin, &session, &proto);
        if let Some(profile) = try_enroll(&cfg, pin, &data) {
            let system = P2Auth::new(cfg.clone());
            let s = evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            );
            ppg_acc.push(s.accuracy);
            ppg_trr.push(0.5 * (s.trr_random + s.trr_emulating));
        }
        match enroll_accel(&accel_cfg, &data.enroll, &data.third_party) {
            Ok(ap) => {
                let mut acc = 0.0;
                for rec in &data.legit_one {
                    if authenticate_accel(&accel_cfg, &ap, rec).expect("valid").0 {
                        acc += 1.0;
                    }
                }
                let mut rej = 0.0;
                let attacks: Vec<_> = data.ra_one.iter().chain(&data.ea_one).collect();
                for rec in &attacks {
                    if !authenticate_accel(&accel_cfg, &ap, rec).expect("valid").0 {
                        rej += 1.0;
                    }
                }
                acc_acc.push(acc / data.legit_one.len() as f64);
                acc_trr.push(rej / attacks.len() as f64);
            }
            Err(e) => eprintln!("warning: accel enrollment failed for user {user}: {e}"),
        }
    }

    println!("# Fig. 12 — PPG vs accelerometer (same ROCKET pipeline)");
    print_header(&["sensor", "accuracy", "trr"]);
    print_row(&[
        "PPG (4 channels)".into(),
        format!("{:.3}", mean(&ppg_acc)),
        format!("{:.3}", mean(&ppg_trr)),
    ]);
    print_row(&[
        "accelerometer (3 axes)".into(),
        format!("{:.3}", mean(&acc_acc)),
        format!("{:.3}", mean(&acc_trr)),
    ]);
    println!();
    println!("expected shape: PPG above accelerometer on both columns (paper Fig. 12)");
}
