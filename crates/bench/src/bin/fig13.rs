//! Fig. 13 — impact of the PPG channel count (a) and of individual
//! channels (b), using one-handed data with the privacy boost as in the
//! paper (§V-F). Expected shape: accuracy rises with channel count
//! while the rejection rate stays roughly flat; infrared channels give
//! better accuracy, red channels better rejection.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig13 [users]`.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, users_arg, Dataset,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::channel::standard_layout;
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn select(data: &Dataset, idxs: &[usize]) -> Dataset {
    let sel = |v: &Vec<p2auth_core::Recording>| v.iter().map(|r| r.select_channels(idxs)).collect();
    Dataset {
        enroll: sel(&data.enroll),
        third_party: sel(&data.third_party),
        legit_one: sel(&data.legit_one),
        legit_double3: sel(&data.legit_double3),
        legit_double2: sel(&data.legit_double2),
        ra_one: sel(&data.ra_one),
        ea_one: sel(&data.ea_one),
        ea_double3: sel(&data.ea_double3),
        ea_double2: sel(&data.ea_double2),
    }
}

fn run_variant(
    cfg: &P2AuthConfig,
    pin: &p2auth_core::Pin,
    datasets: &[Dataset],
    idxs: &[usize],
) -> (f64, f64) {
    let mut accs = Vec::new();
    let mut trrs = Vec::new();
    for data in datasets {
        let d = select(data, idxs);
        let system = P2Auth::new(cfg.clone());
        let Ok(profile) = system.enroll(pin, &d.enroll, &d.third_party) else {
            continue;
        };
        let s = evaluate_case(&system, &profile, pin, &d.legit_one, &d.ra_one, &d.ea_one);
        accs.push(s.accuracy);
        trrs.push(0.5 * (s.trr_random + s.trr_emulating));
    }
    (mean(&accs), mean(&trrs))
}

fn main() {
    let users = users_arg(15);
    // Six-channel layout: 2x (IR+red) modules + a dorsal module.
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        channels: standard_layout(6),
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig {
        privacy_boost: true,
        ..P2AuthConfig::default()
    };
    let pin = &paper_pins()[0];

    let datasets: Vec<Dataset> = (0..pop.num_users())
        .map(|u| build_dataset(&pop, u, pin, &session, &proto))
        .collect();

    println!("# Fig. 13a — accuracy / TRR vs number of channels (privacy boost)");
    print_header(&["channels", "accuracy", "trr"]);
    for n in 1..=6 {
        let idxs: Vec<usize> = (0..n).collect();
        let (acc, trr) = run_variant(&cfg, pin, &datasets, &idxs);
        print_row(&[format!("{n}"), format!("{acc:.3}"), format!("{trr:.3}")]);
    }

    println!();
    println!("# Fig. 13b — individual channels");
    print_header(&["channel", "accuracy", "trr"]);
    for (i, info) in pop.channels().iter().enumerate() {
        let (acc, trr) = run_variant(&cfg, pin, &datasets, &[i]);
        print_row(&[format!("{info}"), format!("{acc:.3}"), format!("{trr:.3}")]);
    }
    println!();
    println!("paper's shape: accuracy rises with channel count, TRR ~flat (13a);");
    println!("infrared best accuracy, red trades accuracy for rejection (13b).");
    println!("our simulator reproduces the per-channel ordering (13b) but the");
    println!("channel-count curve saturates after 1-2 channels: simulated channels");
    println!("share the behavioural variance, so extra channels are largely");
    println!("redundant — see EXPERIMENTS.md for the analysis.");
}
