//! Fig. 14 — impact of the third-party training-set size (paper §V-F):
//! as the pool grows from 20 to 300, the rejection rate rises while the
//! authentication accuracy falls (the ~9 enrollment samples get drowned
//! out and the classifier overfits toward "reject"). The paper settles
//! on 100 as the trade-off.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig14 [users]`.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, users_arg,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn main() {
    let users = users_arg(15);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    // Build the maximum pool once; sweep by slicing.
    let proto = ProtocolConfig {
        n_third_party: 300,
        ..ProtocolConfig::default()
    };
    let cfg = P2AuthConfig::default();
    let pin = &paper_pins()[0];

    let datasets: Vec<_> = (0..pop.num_users())
        .map(|u| build_dataset(&pop, u, pin, &session, &proto))
        .collect();

    println!("# Fig. 14 — accuracy / TRR vs third-party dataset size");
    print_header(&[
        "third_party_size",
        "accuracy",
        "trr_random",
        "trr_emulating",
    ]);
    for size in [20, 60, 100, 140, 180, 220, 260, 300] {
        let mut accs = Vec::new();
        let mut ras = Vec::new();
        let mut eas = Vec::new();
        for data in &datasets {
            let third = &data.third_party[..size];
            let system = P2Auth::new(cfg.clone());
            let Ok(profile) = system.enroll(pin, &data.enroll, third) else {
                continue;
            };
            let s = evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            );
            accs.push(s.accuracy);
            ras.push(s.trr_random);
            eas.push(s.trr_emulating);
        }
        print_row(&[
            format!("{size}"),
            format!("{:.3}", mean(&accs)),
            format!("{:.3}", mean(&ras)),
            format!("{:.3}", mean(&eas)),
        ]);
    }
    // The paper attributes its falling accuracy to "severe overfitting
    // under the influence of much larger third-party data" given "the
    // very small number of training samples" from the user. Our default
    // pipeline does not reproduce that drop (the LOOCV-regularized
    // ridge keeps generalizing), so the second table stresses the
    // mechanism the paper names: only 4 enrollment entries against the
    // growing pool.
    println!();
    println!("# Fig. 14 (mechanism) — same sweep with only 4 enrollment entries");
    print_header(&[
        "third_party_size",
        "accuracy",
        "trr_random",
        "trr_emulating",
    ]);
    for size in [20, 60, 100, 140, 180, 220, 260, 300] {
        let mut accs = Vec::new();
        let mut ras = Vec::new();
        let mut eas = Vec::new();
        for data in &datasets {
            let third = &data.third_party[..size];
            let system = P2Auth::new(P2AuthConfig::default());
            let Ok(profile) = system.enroll(pin, &data.enroll[..4], third) else {
                continue;
            };
            let s = evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            );
            accs.push(s.accuracy);
            ras.push(s.trr_random);
            eas.push(s.trr_emulating);
        }
        print_row(&[
            format!("{size}"),
            format!("{:.3}", mean(&accs)),
            format!("{:.3}", mean(&ras)),
            format!("{:.3}", mean(&eas)),
        ]);
    }
    println!();
    println!("expected shape: TRR rises and accuracy falls as the pool grows (paper Fig. 14)");
}
