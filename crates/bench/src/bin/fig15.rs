//! Fig. 15 — impact of the machine-learning model (paper §V-F):
//! MiniRocket + ridge against ResNet, KNN and RNN-FNN on the one-handed
//! full waveforms. The paper finds rocket best overall (accuracy ≈ 0.96
//! on the complete test data, shortest compute time); the other models
//! accept real users slightly more but reject attackers less.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig15 [users]`.

use p2auth_bench::harness::{
    build_dataset, full_waveforms, mean, paper_pins, print_header, print_row, users_arg,
    ProtocolConfig,
};
use p2auth_core::P2AuthConfig;
use p2auth_ml::knn::{KnnClassifier, Metric};
use p2auth_ml::nn::{lag_features, Network, Tensor, TrainConfig};
use p2auth_ml::ridge::RidgeClassifier;
use p2auth_rocket::{MiniRocket, MultiSeries};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use std::time::Instant;

#[derive(Default)]
struct ModelStats {
    acc: Vec<f64>,
    trr: Vec<f64>,
    train_s: Vec<f64>,
    test_s: Vec<f64>,
}

fn tensor(s: &MultiSeries) -> Tensor {
    Tensor::from_channels(s.channels())
}

fn flat(s: &MultiSeries) -> Vec<f64> {
    s.channels()
        .iter()
        .flat_map(|c| c.iter().copied())
        .collect()
}

fn tally(
    stats: &mut ModelStats,
    preds_legit: &[bool],
    preds_attack: &[bool],
    train_s: f64,
    test_s: f64,
) {
    let acc = preds_legit.iter().filter(|&&a| a).count() as f64 / preds_legit.len() as f64;
    let trr = preds_attack.iter().filter(|&&a| !a).count() as f64 / preds_attack.len() as f64;
    stats.acc.push(acc);
    stats.trr.push(trr);
    stats.train_s.push(train_s);
    stats.test_s.push(test_s);
}

fn main() {
    let users = users_arg(15);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    // Smaller waveform keeps the neural comparators affordable.
    let cfg = P2AuthConfig {
        full_waveform_len: 256,
        ..P2AuthConfig::default()
    };
    let pin = &paper_pins()[0];

    let mut rocket_stats = ModelStats::default();
    let mut resnet_stats = ModelStats::default();
    let mut knn_stats = ModelStats::default();
    let mut rnnfnn_stats = ModelStats::default();

    for user in 0..pop.num_users() {
        let data = build_dataset(&pop, user, pin, &session, &proto);
        let pos = full_waveforms(&cfg, &data.enroll);
        let neg = full_waveforms(&cfg, &data.third_party);
        let legit = full_waveforms(&cfg, &data.legit_one);
        let attacks: Vec<MultiSeries> = full_waveforms(&cfg, &data.ra_one)
            .into_iter()
            .chain(full_waveforms(&cfg, &data.ea_one))
            .collect();
        if pos.len() < 2 || neg.is_empty() || legit.is_empty() || attacks.is_empty() {
            eprintln!("warning: skipping user {user} (missing waveforms)");
            continue;
        }
        let mut train: Vec<MultiSeries> = pos.clone();
        train.extend(neg.iter().cloned());
        let mut labels = vec![1_i8; pos.len()];
        labels.extend(std::iter::repeat_n(-1, neg.len()));

        // The gradient-trained comparators need class balance (9
        // positives vs 100 negatives collapses them to the majority
        // class); oversample the positives for their training sets.
        let mut bal_train = train.clone();
        let mut bal_labels = labels.clone();
        let reps = (neg.len() / pos.len()).saturating_sub(1);
        for _ in 0..reps {
            bal_train.extend(pos.iter().cloned());
            bal_labels.extend(std::iter::repeat_n(1, pos.len()));
        }

        // --- MiniRocket + ridge --------------------------------------
        let t = Instant::now();
        let rocket = MiniRocket::fit(&cfg.rocket, &train).expect("fit");
        let x: Vec<Vec<f64>> = train.iter().map(|s| rocket.transform_one(s)).collect();
        let clf = RidgeClassifier::fit(&cfg.ridge, &x, &labels).expect("ridge");
        let train_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let pl: Vec<bool> = legit
            .iter()
            .map(|s| clf.predict(&rocket.transform_one(s)) > 0)
            .collect();
        let pa: Vec<bool> = attacks
            .iter()
            .map(|s| clf.predict(&rocket.transform_one(s)) > 0)
            .collect();
        tally(
            &mut rocket_stats,
            &pl,
            &pa,
            train_s,
            t.elapsed().as_secs_f64(),
        );

        // --- ResNet (1-D conv residual net) ---------------------------
        let t = Instant::now();
        let xs: Vec<Tensor> = bal_train.iter().map(tensor).collect();
        let mut net = Network::resnet1d(train[0].num_channels(), 7 + user as u64);
        let tc = TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        };
        net.train(&tc, &xs, &bal_labels).expect("train");
        let train_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let pl: Vec<bool> = legit.iter().map(|s| net.predict(&tensor(s)) > 0).collect();
        let pa: Vec<bool> = attacks
            .iter()
            .map(|s| net.predict(&tensor(s)) > 0)
            .collect();
        tally(
            &mut resnet_stats,
            &pl,
            &pa,
            train_s,
            t.elapsed().as_secs_f64(),
        );

        // --- KNN ------------------------------------------------------
        let t = Instant::now();
        let xf: Vec<Vec<f64>> = train.iter().map(flat).collect();
        let knn = KnnClassifier::fit(3, Metric::Euclidean, &xf, &labels).expect("knn");
        let train_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let pl: Vec<bool> = legit.iter().map(|s| knn.predict(&flat(s)) > 0).collect();
        let pa: Vec<bool> = attacks.iter().map(|s| knn.predict(&flat(s)) > 0).collect();
        tally(&mut knn_stats, &pl, &pa, train_s, t.elapsed().as_secs_f64());

        // --- RNN-FNN (dense net over lag + downsampled-signal features)
        let t = Instant::now();
        let lagf = |s: &MultiSeries| -> Tensor {
            // Recurrent-style summary (lags) plus a coarse temporal
            // trace — lag statistics alone are not discriminative
            // enough and collapse the net to accept-everything.
            let mut f = lag_features(s.channels(), 8);
            for c in s.channels() {
                f.extend(c.iter().step_by(8).copied());
            }
            Tensor::flat(f)
        };
        let xs: Vec<Tensor> = bal_train.iter().map(&lagf).collect();
        let mut net = Network::rnn_fnn(xs[0].data.len(), 11 + user as u64);
        let tc = TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        };
        net.train(&tc, &xs, &bal_labels).expect("train");
        let train_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let pl: Vec<bool> = legit.iter().map(|s| net.predict(&lagf(s)) > 0).collect();
        let pa: Vec<bool> = attacks.iter().map(|s| net.predict(&lagf(s)) > 0).collect();
        tally(
            &mut rnnfnn_stats,
            &pl,
            &pa,
            train_s,
            t.elapsed().as_secs_f64(),
        );

        eprintln!("fig15: user {user} done");
    }

    println!("# Fig. 15 — machine-learning model comparison (one-handed full waveforms)");
    print_header(&["model", "accuracy", "trr", "train_s", "test_s"]);
    for (name, s) in [
        ("MiniRocket + ridge", &rocket_stats),
        ("ResNet (1D conv)", &resnet_stats),
        ("KNN (k=3)", &knn_stats),
        ("RNN-FNN (lag features)", &rnnfnn_stats),
    ] {
        print_row(&[
            name.to_string(),
            format!("{:.3}", mean(&s.acc)),
            format!("{:.3}", mean(&s.trr)),
            format!("{:.3}", mean(&s.train_s)),
            format!("{:.4}", mean(&s.test_s)),
        ]);
    }
    println!();
    println!("expected shape: rocket best accuracy/TRR balance and fastest (paper: acc ≈ 0.96);");
    println!("other models may accept users more but reject attackers less");
}
