//! Fig. 16 — impact of the sampling rate on the privacy-boost system
//! with four channels (paper §V-F): ≈ 0.68 accuracy at the lowest rate
//! (30 Hz), little change above ~50 Hz.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig16 [users]`.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, users_arg, Dataset,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

pub(crate) fn resample_dataset(data: &Dataset, rate: f64) -> Dataset {
    let rs = |v: &Vec<p2auth_core::Recording>| v.iter().map(|r| r.resample(rate)).collect();
    Dataset {
        enroll: rs(&data.enroll),
        third_party: rs(&data.third_party),
        legit_one: rs(&data.legit_one),
        legit_double3: rs(&data.legit_double3),
        legit_double2: rs(&data.legit_double2),
        ra_one: rs(&data.ra_one),
        ea_one: rs(&data.ea_one),
        ea_double3: rs(&data.ea_double3),
        ea_double2: rs(&data.ea_double2),
    }
}

fn main() {
    let users = users_arg(15);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig {
        privacy_boost: true,
        ..P2AuthConfig::default()
    };
    let pin = &paper_pins()[0];

    let datasets: Vec<Dataset> = (0..pop.num_users())
        .map(|u| build_dataset(&pop, u, pin, &session, &proto))
        .collect();

    println!("# Fig. 16 — accuracy / TRR vs sampling rate (4 channels, privacy boost)");
    print_header(&["rate_hz", "accuracy", "trr"]);
    for rate in [30.0, 50.0, 75.0, 100.0] {
        let mut accs = Vec::new();
        let mut trrs = Vec::new();
        for data in &datasets {
            let d = resample_dataset(data, rate);
            let system = P2Auth::new(cfg.clone());
            let Ok(profile) = system.enroll(pin, &d.enroll, &d.third_party) else {
                continue;
            };
            let s = evaluate_case(&system, &profile, pin, &d.legit_one, &d.ra_one, &d.ea_one);
            accs.push(s.accuracy);
            trrs.push(0.5 * (s.trr_random + s.trr_emulating));
        }
        print_row(&[
            format!("{rate}"),
            format!("{:.3}", mean(&accs)),
            format!("{:.3}", mean(&trrs)),
        ]);
    }
    println!();
    println!(
        "expected shape: lowest accuracy at 30 Hz (paper ≈ 0.68), plateau above (paper Fig. 16)"
    );
}
