//! Fig. 17 — joint impact of sampling rate and channel count on the
//! privacy-boost accuracy (paper §V-F): usable across a wide range of
//! combinations; more channels make the model more stable.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fig17 [users]`.

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, print_header, print_row, users_arg, Dataset,
    ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn transform_dataset(data: &Dataset, channels: usize, rate: f64) -> Dataset {
    let idxs: Vec<usize> = (0..channels).collect();
    let tr = |v: &Vec<p2auth_core::Recording>| {
        v.iter()
            .map(|r| r.select_channels(&idxs).resample(rate))
            .collect()
    };
    Dataset {
        enroll: tr(&data.enroll),
        third_party: tr(&data.third_party),
        legit_one: tr(&data.legit_one),
        legit_double3: tr(&data.legit_double3),
        legit_double2: tr(&data.legit_double2),
        ra_one: tr(&data.ra_one),
        ea_one: tr(&data.ea_one),
        ea_double3: tr(&data.ea_double3),
        ea_double2: tr(&data.ea_double2),
    }
}

fn main() {
    let users = users_arg(12);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let cfg = P2AuthConfig {
        privacy_boost: true,
        ..P2AuthConfig::default()
    };
    let pin = &paper_pins()[0];

    let datasets: Vec<Dataset> = (0..pop.num_users())
        .map(|u| build_dataset(&pop, u, pin, &session, &proto))
        .collect();

    let rates = [30.0, 50.0, 75.0, 100.0];
    let channel_counts = [1usize, 2, 4];

    println!("# Fig. 17 — accuracy vs sampling rate x channel count (privacy boost)");
    print_header(&["rate_hz", "1_channel", "2_channels", "4_channels"]);
    for &rate in &rates {
        let mut cells = vec![format!("{rate}")];
        for &nc in &channel_counts {
            let mut accs = Vec::new();
            for data in &datasets {
                let d = transform_dataset(data, nc, rate);
                let system = P2Auth::new(cfg.clone());
                let Ok(profile) = system.enroll(pin, &d.enroll, &d.third_party) else {
                    continue;
                };
                let s = evaluate_case(&system, &profile, pin, &d.legit_one, &d.ra_one, &d.ea_one);
                accs.push(s.accuracy);
            }
            cells.push(format!("{:.3}", mean(&accs)));
        }
        print_row(&cells);
    }
    println!();
    println!("expected shape: accuracy grows with both axes; more channels = more stable (paper Fig. 17)");
}
