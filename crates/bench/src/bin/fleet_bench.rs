//! Fleet-scale serving benchmark: throughput and session-latency
//! quantiles of the `p2auth-server` worker pool as concurrency scales.
//!
//! One chaos fleet workload (sensor-fault presets + faulty links +
//! periodic hang sessions, all pre-acquired and seeded) is replayed
//! through serve regions at several worker counts. Latency comes from
//! the scheduler's own `server.session.latency_ns` histogram
//! (`p2auth-obs`), throughput from the wall clock around the region.
//! Every level runs under a watchdog: a region that fails to finish is
//! a hang, reported with a nonzero exit — never a silent stall.
//!
//! Writes `BENCH_fleet.json` in the current directory.
//!
//! SLO gate (CI): with `P2AUTH_FLEET_GATE` set (and not `0`), exits
//! nonzero when any level's p99 exceeds `P2AUTH_FLEET_P99_MS`
//! (default 500 ms), when any request goes unanswered, or when nothing
//! accepts. `P2AUTH_FLEET_TIMEOUT_S` (default 120) bounds each level.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fleet_bench [devices]`

use std::sync::mpsc;
use std::time::{Duration, Instant};

use p2auth_bench::harness::{print_header, print_row, users_arg};
use p2auth_server::{build_fleet, run_fleet, FleetConfig, ServerConfig};

/// Worker-pool sizes swept (the bench contract: at least three).
const WORKERS: [usize; 3] = [1, 4, 16];

/// One concurrency level's measurements.
struct Level {
    workers: usize,
    sessions: usize,
    shed: usize,
    accepts: usize,
    wall_s: f64,
    throughput_sps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    mean_ns: f64,
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn gate_enabled() -> bool {
    std::env::var("P2AUTH_FLEET_GATE").is_ok_and(|v| v != "0")
}

fn main() {
    let devices = users_arg(16).max(2);
    let fleet = FleetConfig {
        num_devices: devices,
        sessions_per_device: 8,
        enrolled_users: 4.min(devices),
        seed: 814,
        chaos: true,
        hang_every: 7,
    };
    let timeout = Duration::from_secs_f64(env_f64("P2AUTH_FLEET_TIMEOUT_S", 120.0));
    let p99_budget_ns = env_f64("P2AUTH_FLEET_P99_MS", 500.0) * 1e6;

    println!(
        "# fleet_bench — {} devices x {} sessions, chaos on, hang every {}",
        fleet.num_devices, fleet.sessions_per_device, fleet.hang_every
    );
    let scenario = build_fleet(&fleet);
    let total = scenario.requests.len();
    print_header(&[
        "workers", "sessions", "shed", "accepts", "wall_s", "ses/s", "p50_us", "p95_us", "p99_us",
    ]);

    let mut levels: Vec<Level> = Vec::new();
    for &workers in &WORKERS {
        // Each level reads its own histogram: the registry is global,
        // so it is zeroed at the level boundary.
        p2auth_obs::reset();
        let server = ServerConfig {
            num_workers: workers,
            queue_capacity: (2 * workers).max(4),
            ..ServerConfig::default()
        };
        // Watchdog: the serve region borrows the scenario, so it runs
        // on a scoped thread and the main thread waits with a timeout.
        // A region that cannot finish is the exact failure this bench
        // exists to catch — report it, don't inherit the hang.
        let (tx, rx) = mpsc::channel();
        let t0 = Instant::now();
        let (report, shed) = std::thread::scope(|s| {
            s.spawn(|| {
                let out = run_fleet(&scenario, &server);
                let _ = tx.send(out);
            });
            match rx.recv_timeout(timeout) {
                Ok(out) => out,
                Err(_) => {
                    eprintln!(
                        "FLEET_HANG: {workers}-worker region exceeded {:.0}s",
                        timeout.as_secs_f64()
                    );
                    std::process::exit(2);
                }
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();

        let hist = p2auth_obs::metrics::histogram_handle("server.session.latency_ns");
        let accepts = report
            .sessions
            .iter()
            .filter(|r| r.response.verdict.accepted())
            .count();
        let level = Level {
            workers,
            sessions: report.sessions.len(),
            shed: shed.len(),
            accepts,
            wall_s,
            throughput_sps: report.sessions.len() as f64 / wall_s.max(1e-9),
            p50_ns: hist.quantile(0.50),
            p95_ns: hist.quantile(0.95),
            p99_ns: hist.quantile(0.99),
            mean_ns: hist.sum() as f64 / hist.count().max(1) as f64,
        };
        print_row(&[
            format!("{workers}"),
            format!("{}", level.sessions),
            format!("{}", level.shed),
            format!("{}", level.accepts),
            format!("{wall_s:.3}"),
            format!("{:.1}", level.throughput_sps),
            format!("{:.0}", level.p50_ns as f64 / 1e3),
            format!("{:.0}", level.p95_ns as f64 / 1e3),
            format!("{:.0}", level.p99_ns as f64 / 1e3),
        ]);
        levels.push(level);
    }

    let per_level = levels
        .iter()
        .map(|l| {
            format!(
                "    {{ \"workers\": {}, \"sessions\": {}, \"shed\": {}, \
                 \"accepts\": {}, \"wall_s\": {:.4}, \"throughput_sps\": {:.2}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.0} }}",
                l.workers,
                l.sessions,
                l.shed,
                l.accepts,
                l.wall_s,
                l.throughput_sps,
                l.p50_ns,
                l.p95_ns,
                l.p99_ns,
                l.mean_ns,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"devices\": {devices},\n  \
         \"sessions_per_device\": {},\n  \"requests\": {total},\n  \
         \"chaos\": {},\n  \"hang_every\": {},\n  \"seed\": {},\n  \
         \"p99_budget_ns\": {:.0},\n  \"levels\": [\n{per_level}\n  ]\n}}\n",
        fleet.sessions_per_device, fleet.chaos, fleet.hang_every, fleet.seed, p99_budget_ns,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    // SLO gate: exactly-once responses, someone must accept, and every
    // level's p99 stays inside the budget.
    let mut violations: Vec<String> = Vec::new();
    for l in &levels {
        if l.sessions + l.shed != total {
            violations.push(format!(
                "workers={}: {} responses + {} shed != {total} requests",
                l.workers, l.sessions, l.shed
            ));
        }
        if l.p99_ns as f64 > p99_budget_ns {
            violations.push(format!(
                "workers={}: p99 {:.1} ms exceeds budget {:.1} ms",
                l.workers,
                l.p99_ns as f64 / 1e6,
                p99_budget_ns / 1e6
            ));
        }
    }
    if levels.iter().all(|l| l.accepts == 0) {
        violations.push("no level accepted a single legitimate session".to_string());
    }
    if violations.is_empty() {
        println!("SLO: ok (p99 budget {:.0} ms)", p99_budget_ns / 1e6);
    } else {
        for v in &violations {
            eprintln!("SLO_VIOLATION: {v}");
        }
        if gate_enabled() {
            std::process::exit(1);
        }
        println!("(gate disabled; set P2AUTH_FLEET_GATE=1 to fail on violations)");
    }
}
