//! Fleet-scale serving benchmark: throughput and session-latency
//! quantiles of the `p2auth-server` worker pool as concurrency scales.
//!
//! One chaos fleet workload (sensor-fault presets + faulty links +
//! periodic hang sessions, all pre-acquired and seeded) is replayed
//! through serve regions at several worker counts. Latency comes from
//! the scheduler's merged per-worker metrics (`ServeReport::metrics`) —
//! completed, shed, and aborted sessions each land in their own
//! outcome-labelled histogram so a shed storm can't hide inside the
//! completion quantiles. Throughput is the wall clock around the
//! region. Every level runs under a watchdog: a region that fails to
//! finish is a hang, reported with a nonzero exit — never a silent
//! stall.
//!
//! After the worker sweep, an **observability lane** measures what the
//! durable plane costs: interleaved batches at a fixed worker count,
//! alternating plain serving against serving with sharded event-log
//! persistence plus SLO tracking (interleaving absorbs thermal /
//! frequency drift, same as `obs_bench`). The medians are compared and
//! the overhead must stay inside `P2AUTH_FLEET_OBS_BUDGET_PCT`
//! (default 3%). The final persisted store is left in `fleet-shards/`
//! for `p2auth replay --from-shard`, and the lane's SLO report is
//! written to `SLO_fleet.json` (`p2auth.obs.v1`).
//!
//! Writes `BENCH_fleet.json` in the current directory.
//!
//! SLO gate (CI): with `P2AUTH_FLEET_GATE` set (and not `0`), exits
//! nonzero when any level's p99 exceeds `P2AUTH_FLEET_P99_MS`
//! (default 500 ms), when any request goes unanswered, or when nothing
//! accepts. `P2AUTH_FLEET_OBS_GATE` additionally fails the run when
//! the observability lane blows its overhead budget.
//! `P2AUTH_FLEET_TIMEOUT_S` (default 120) bounds each level.
//!
//! With `--chaos`, the worker sweep is replaced by the fault-injection
//! suite (see [`chaos_main`]): an injected-panic lane (supervision must
//! contain every panic to exactly one `Crashed` verdict), a
//! kill-restart cycle over the persisted store (recovery time and
//! accounting digests), and a synthetic overload ramp through the
//! brownout ladder (engage + release with hysteresis). The seed comes
//! from `P2AUTH_CHAOS_SEED` (default 814).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin fleet_bench [devices] [--chaos]`

use std::path::Path;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use p2auth_bench::harness::{print_header, print_row, users_arg};
use p2auth_obs::{ShardedEventStore, SloConfig, SloTracker};
use p2auth_server::{
    build_fleet, kill_restart_cycle, run_fleet_obs, BrownoutConfig, BrownoutLadder, BrownoutLevel,
    ChaosPlan, FleetConfig, FleetScenario, ServeObs, ServerConfig,
};

/// Worker-pool sizes swept (the bench contract: at least three).
const WORKERS: [usize; 3] = [1, 4, 16];

/// Worker count of the observability-overhead lane.
const OBS_WORKERS: usize = 4;

/// Interleaved rounds in the observability lane (each round = one
/// plain region + one persisted region, order alternating).
const OBS_ROUNDS: usize = 5;

/// Quantiles of one outcome-labelled latency histogram.
#[derive(Default, Clone, Copy)]
struct HistStats {
    count: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    mean_ns: f64,
}

impl HistStats {
    fn from_local(h: Option<&p2auth_obs::LocalHistogram>) -> Self {
        h.map_or_else(Self::default, |h| Self {
            count: h.count(),
            p50_ns: h.quantile(0.50),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            mean_ns: h.sum() as f64 / h.count().max(1) as f64,
        })
    }

    fn json(&self) -> String {
        format!(
            "{{ \"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
             \"mean_ns\": {:.0} }}",
            self.count, self.p50_ns, self.p95_ns, self.p99_ns, self.mean_ns
        )
    }
}

/// One concurrency level's measurements.
struct Level {
    workers: usize,
    sessions: usize,
    shed: usize,
    accepts: usize,
    aborts: usize,
    wall_s: f64,
    throughput_sps: f64,
    completed: HistStats,
    shed_hist: HistStats,
    aborted_hist: HistStats,
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn gate_enabled(key: &str) -> bool {
    std::env::var(key).is_ok_and(|v| v != "0")
}

/// Runs one serve region under the hang watchdog, returning the report,
/// the at-submit sheds, and the region wall time.
fn timed_region<'a>(
    scenario: &'a FleetScenario,
    server: &ServerConfig,
    obs: ServeObs<'_>,
    timeout: Duration,
) -> (p2auth_server::ServeReport, usize, f64) {
    let (tx, rx) = mpsc::channel();
    let t0 = Instant::now();
    let (report, shed) = std::thread::scope(|s| {
        s.spawn(|| {
            let out = run_fleet_obs(scenario, server, obs);
            let _ = tx.send(out);
        });
        match rx.recv_timeout(timeout) {
            Ok(out) => out,
            Err(_) => {
                eprintln!(
                    "FLEET_HANG: {}-worker region exceeded {:.0}s",
                    server.num_workers,
                    timeout.as_secs_f64()
                );
                std::process::exit(2);
            }
        }
    });
    (report, shed.len(), t0.elapsed().as_secs_f64())
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// The `--chaos` suite: injected worker panics, a kill-restart cycle,
/// and a synthetic overload ramp through the brownout ladder. Writes
/// its own `BENCH_fleet.json` (`"bench": "fleet_chaos"`); with
/// `P2AUTH_FLEET_GATE` set, exits nonzero on any violated invariant
/// (crash amplification ≠ 1, accounting mismatch across the restart,
/// ladder failing to engage or release).
#[allow(clippy::too_many_lines)]
fn chaos_main() {
    let devices = users_arg(12).max(2);
    let seed = std::env::var("P2AUTH_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(814_u64);
    let fleet = FleetConfig {
        num_devices: devices,
        sessions_per_device: 6,
        enrolled_users: 4.min(devices),
        seed,
        chaos: true,
        hang_every: 0,
    };
    println!(
        "# fleet_bench --chaos — {} devices x {} sessions, seed {seed}",
        fleet.num_devices, fleet.sessions_per_device
    );
    let scenario = build_fleet(&fleet);
    let total = scenario.requests.len();
    let server = ServerConfig {
        num_workers: 4,
        queue_capacity: 8,
        ..ServerConfig::default()
    };
    let mut violations: Vec<String> = Vec::new();

    // ---- lane 1: injected worker panics -------------------------------
    // Every 9th request panics mid-session; supervision must convert
    // each into exactly one Crashed verdict (zero crash amplification)
    // and the respawned workers must finish everything else.
    let panic_ids: Vec<u64> = scenario
        .requests
        .iter()
        .map(|r| r.request_id)
        .step_by(9)
        .collect();
    let plan = ChaosPlan::panics(panic_ids.iter().copied());
    let t0 = Instant::now();
    let (report, shed_at_submit) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            chaos: Some(&plan),
            ..ServeObs::default()
        },
    );
    let panic_wall_s = t0.elapsed().as_secs_f64();
    let crashed = report
        .sessions
        .iter()
        .filter(|r| r.response.verdict.crashed())
        .count();
    let injected = plan.injected_panics();
    let amplification = crashed as f64 / injected.max(1) as f64;
    let respawns = report.metrics.counter("server.worker.respawns");
    let responses = report.sessions.len() + shed_at_submit.len();
    println!(
        "panic lane: {injected} injected -> {crashed} crashed verdicts \
         (amplification {amplification:.2}), {respawns} respawns, \
         {responses}/{total} responses in {panic_wall_s:.3}s"
    );
    if injected == 0 || crashed as u64 != injected {
        violations.push(format!(
            "crash amplification: {injected} injected panics but {crashed} crashed verdicts"
        ));
    }
    if responses != total {
        violations.push(format!("panic lane lost responses: {responses}/{total}"));
    }

    // ---- lane 2: kill-restart cycle -----------------------------------
    let dir = Path::new("fleet-chaos-shards");
    let _ = std::fs::remove_dir_all(dir);
    let kr = kill_restart_cycle(&scenario, &server, dir, total / 2);
    let accounting_ok = kr.final_completed == total as u64;
    println!(
        "kill-restart lane: {} served pre-crash, {} recovered from disk \
         (digest {:016x}), {} in-flight re-admitted, {} re-served, \
         final {}/{total} (digest {:016x}), recovery {:.4}s",
        kr.served_before,
        kr.completed_recovered,
        kr.recovered_digest,
        kr.in_flight,
        kr.served_after,
        kr.final_completed,
        kr.final_digest,
        kr.recovery_wall_s
    );
    if !accounting_ok {
        violations.push(format!(
            "kill-restart accounting: {}/{total} sessions in the final store",
            kr.final_completed
        ));
    }
    if kr.interrupted_journaled != kr.in_flight {
        violations.push(format!(
            "interruption journal: {} in-flight but {} markers",
            kr.in_flight, kr.interrupted_journaled
        ));
    }

    // ---- lane 3: brownout ladder under a synthetic overload ramp ------
    // Errors ramp to 100% for 30 s, then recover: the ladder must
    // engage (climb at least one rung), not flap, and release back to
    // Normal once the burn clears the windows.
    let ladder = BrownoutLadder::new(BrownoutConfig {
        enabled: true,
        eval_every: 1,
        up_hold: 2,
        down_hold: 3,
        ..BrownoutConfig::default()
    });
    let slo = SloTracker::new(SloConfig {
        error_budget: 0.05,
        fast_burn_threshold: 4.0,
        slow_burn_threshold: 1.0,
        ..SloConfig::default()
    });
    let mut peak = BrownoutLevel::Normal;
    for second in 0..240_u64 {
        let overload = (20..50).contains(&second);
        for _ in 0..20 {
            slo.record_at(second, 2_000_000, overload);
        }
        if second % 2 == 0 {
            let level = ladder.evaluate(&slo.report_at(second));
            peak = peak.max(level);
        }
    }
    let final_level = ladder.level();
    let transitions = ladder.transitions();
    let occupancy = ladder.occupancy();
    println!(
        "brownout lane: peak {peak}, final {final_level}, {} transitions, \
         occupancy [normal {}, b1 {}, b2 {}, shed {}]",
        transitions.len(),
        occupancy[0],
        occupancy[1],
        occupancy[2],
        occupancy[3]
    );
    if peak == BrownoutLevel::Normal {
        violations.push("brownout ladder never engaged under the overload ramp".to_string());
    }
    if final_level != BrownoutLevel::Normal {
        violations.push(format!(
            "brownout ladder failed to release: final level {final_level}"
        ));
    }

    let transitions_json = transitions
        .iter()
        .map(|t| {
            format!(
                "{{ \"from\": \"{}\", \"to\": \"{}\", \"eval\": {}, \
                 \"fast_burn\": {:.2}, \"slow_burn\": {:.2} }}",
                t.from, t.to, t.eval, t.fast_burn, t.slow_burn
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"fleet_chaos\",\n  \"devices\": {devices},\n  \
         \"sessions_per_device\": {},\n  \"requests\": {total},\n  \"seed\": {seed},\n  \
         \"panic_lane\": {{ \"injected\": {injected}, \"crashed\": {crashed}, \
         \"amplification\": {amplification:.3}, \"respawns\": {respawns}, \
         \"responses\": {responses}, \"wall_s\": {panic_wall_s:.4} }},\n  \
         \"kill_restart\": {{ \"served_before\": {}, \"completed_recovered\": {}, \
         \"recovered_digest\": \"{:016x}\", \"in_flight\": {}, \
         \"interrupted_journaled\": {}, \"torn_repaired\": {}, \"served_after\": {}, \
         \"final_completed\": {}, \"final_digest\": \"{:016x}\", \
         \"recovery_wall_s\": {:.5}, \"accounting_ok\": {accounting_ok} }},\n  \
         \"brownout\": {{ \"peak\": \"{peak}\", \"final\": \"{final_level}\", \
         \"occupancy\": [{}, {}, {}, {}], \"transitions\": [{transitions_json}] }}\n}}\n",
        fleet.sessions_per_device,
        kr.served_before,
        kr.completed_recovered,
        kr.recovered_digest,
        kr.in_flight,
        kr.interrupted_journaled,
        kr.torn_repaired,
        kr.served_after,
        kr.final_completed,
        kr.final_digest,
        kr.recovery_wall_s,
        occupancy[0],
        occupancy[1],
        occupancy[2],
        occupancy[3],
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    if violations.is_empty() {
        println!("CHAOS: ok (panics contained, restart accounted, ladder cycled)");
    } else {
        for v in &violations {
            eprintln!("CHAOS_VIOLATION: {v}");
        }
        if gate_enabled("P2AUTH_FLEET_GATE") {
            std::process::exit(1);
        }
        println!("(gate disabled; set P2AUTH_FLEET_GATE=1 to fail on violations)");
    }
}

fn main() {
    if std::env::args().any(|a| a == "--chaos") {
        chaos_main();
        return;
    }
    let devices = users_arg(16).max(2);
    let fleet = FleetConfig {
        num_devices: devices,
        sessions_per_device: 8,
        enrolled_users: 4.min(devices),
        seed: 814,
        chaos: true,
        hang_every: 7,
    };
    let timeout = Duration::from_secs_f64(env_f64("P2AUTH_FLEET_TIMEOUT_S", 120.0));
    let p99_budget_ns = env_f64("P2AUTH_FLEET_P99_MS", 500.0) * 1e6;
    let obs_budget_pct = env_f64("P2AUTH_FLEET_OBS_BUDGET_PCT", 3.0);

    println!(
        "# fleet_bench — {} devices x {} sessions, chaos on, hang every {}",
        fleet.num_devices, fleet.sessions_per_device, fleet.hang_every
    );
    let scenario = build_fleet(&fleet);
    let total = scenario.requests.len();
    print_header(&[
        "workers", "sessions", "shed", "accepts", "aborts", "wall_s", "ses/s", "p50_us", "p95_us",
        "p99_us",
    ]);

    let mut levels: Vec<Level> = Vec::new();
    for &workers in &WORKERS {
        let server = ServerConfig {
            num_workers: workers,
            queue_capacity: (2 * workers).max(4),
            ..ServerConfig::default()
        };
        let (report, shed_at_submit, wall_s) =
            timed_region(&scenario, &server, ServeObs::default(), timeout);

        let m = &report.metrics;
        let completed = HistStats::from_local(m.histogram("server.session.latency_ns"));
        let shed_hist = HistStats::from_local(m.histogram("server.session.latency.shed_ns"));
        let aborted_hist = HistStats::from_local(m.histogram("server.session.latency.aborted_ns"));
        let accepts = report
            .sessions
            .iter()
            .filter(|r| r.response.verdict.accepted())
            .count();
        let level = Level {
            workers,
            sessions: report.sessions.len(),
            shed: shed_at_submit + shed_hist.count as usize,
            accepts,
            aborts: aborted_hist.count as usize,
            wall_s,
            throughput_sps: report.sessions.len() as f64 / wall_s.max(1e-9),
            completed,
            shed_hist,
            aborted_hist,
        };
        print_row(&[
            format!("{workers}"),
            format!("{}", level.sessions),
            format!("{}", level.shed),
            format!("{}", level.accepts),
            format!("{}", level.aborts),
            format!("{wall_s:.3}"),
            format!("{:.1}", level.throughput_sps),
            format!("{:.0}", level.completed.p50_ns as f64 / 1e3),
            format!("{:.0}", level.completed.p95_ns as f64 / 1e3),
            format!("{:.0}", level.completed.p99_ns as f64 / 1e3),
        ]);
        levels.push(level);
    }

    // ---- observability lane: what does the durable plane cost? ----
    // Interleaved plain/persisted batches (odd rounds flip the order)
    // so slow drift hits both sides equally; medians are compared.
    println!("# obs lane — {OBS_WORKERS} workers, {OBS_ROUNDS} interleaved rounds");
    let obs_server = ServerConfig {
        num_workers: OBS_WORKERS,
        queue_capacity: (2 * OBS_WORKERS).max(4),
        ..ServerConfig::default()
    };
    let slo = SloTracker::new(SloConfig {
        p99_objective_ns: p99_budget_ns as u64,
        ..SloConfig::default()
    });
    let shard_dir = Path::new("fleet-shards");
    let mut plain_sps: Vec<f64> = Vec::with_capacity(OBS_ROUNDS);
    let mut obs_sps: Vec<f64> = Vec::with_capacity(OBS_ROUNDS);
    let mut persisted_records = 0_u64;
    for round in 0..OBS_ROUNDS {
        let run_plain = |plain_sps: &mut Vec<f64>| {
            let (report, _, wall_s) =
                timed_region(&scenario, &obs_server, ServeObs::default(), timeout);
            plain_sps.push(report.sessions.len() as f64 / wall_s.max(1e-9));
        };
        let run_obs = |obs_sps: &mut Vec<f64>, persisted: &mut u64| {
            // Recreate the store each round: every lane measures the
            // same work, and the last round leaves a fresh store behind
            // for `replay --from-shard`.
            let store = ShardedEventStore::create(shard_dir, obs_server.shard_count, 8)
                .expect("create fleet-shards store");
            let obs = ServeObs {
                persist: Some(&store),
                slo: Some(&slo),
                ..ServeObs::default()
            };
            let (report, _, wall_s) = timed_region(&scenario, &obs_server, obs, timeout);
            store.flush().expect("flush fleet-shards store");
            *persisted = store.appended();
            obs_sps.push(report.sessions.len() as f64 / wall_s.max(1e-9));
        };
        if round % 2 == 0 {
            run_plain(&mut plain_sps);
            run_obs(&mut obs_sps, &mut persisted_records);
        } else {
            run_obs(&mut obs_sps, &mut persisted_records);
            run_plain(&mut plain_sps);
        }
    }
    let plain_med = median(&mut plain_sps);
    let obs_med = median(&mut obs_sps);
    let obs_overhead_pct = (plain_med - obs_med) / plain_med.max(1e-9) * 100.0;
    let obs_within = obs_overhead_pct <= obs_budget_pct;
    println!(
        "obs lane: plain {plain_med:.1} ses/s, persisted {obs_med:.1} ses/s, \
         overhead {obs_overhead_pct:.2}% (budget {obs_budget_pct:.1}%) — \
         {persisted_records} records in {}",
        shard_dir.display()
    );
    let slo_json = slo.report().render_json();
    std::fs::write("SLO_fleet.json", &slo_json).expect("write SLO_fleet.json");
    println!("wrote SLO_fleet.json");

    let per_level = levels
        .iter()
        .map(|l| {
            format!(
                "    {{ \"workers\": {}, \"sessions\": {}, \"shed\": {}, \
                 \"accepts\": {}, \"aborts\": {}, \"wall_s\": {:.4}, \
                 \"throughput_sps\": {:.2}, \
                 \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.0},\n      \
                 \"completed\": {},\n      \"shed_sessions\": {},\n      \
                 \"aborted\": {} }}",
                l.workers,
                l.sessions,
                l.shed,
                l.accepts,
                l.aborts,
                l.wall_s,
                l.throughput_sps,
                l.completed.p50_ns,
                l.completed.p95_ns,
                l.completed.p99_ns,
                l.completed.mean_ns,
                l.completed.json(),
                l.shed_hist.json(),
                l.aborted_hist.json(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"devices\": {devices},\n  \
         \"sessions_per_device\": {},\n  \"requests\": {total},\n  \
         \"chaos\": {},\n  \"hang_every\": {},\n  \"seed\": {},\n  \
         \"p99_budget_ns\": {:.0},\n  \"levels\": [\n{per_level}\n  ],\n  \
         \"obs_lane\": {{ \"workers\": {OBS_WORKERS}, \"rounds\": {OBS_ROUNDS}, \
         \"plain_sps\": {plain_med:.2}, \"persisted_sps\": {obs_med:.2}, \
         \"obs_overhead_pct\": {obs_overhead_pct:.2}, \
         \"obs_budget_pct\": {obs_budget_pct:.1}, \"within_budget\": {obs_within}, \
         \"persisted_records\": {persisted_records} }}\n}}\n",
        fleet.sessions_per_device, fleet.chaos, fleet.hang_every, fleet.seed, p99_budget_ns,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    // SLO gate: exactly-once responses, someone must accept, and every
    // level's p99 stays inside the budget.
    let mut violations: Vec<String> = Vec::new();
    for l in &levels {
        if l.sessions + l.shed - l.shed_hist.count as usize != total {
            violations.push(format!(
                "workers={}: {} responses + {} shed-at-submit != {total} requests",
                l.workers,
                l.sessions,
                l.shed - l.shed_hist.count as usize
            ));
        }
        if l.completed.p99_ns as f64 > p99_budget_ns {
            violations.push(format!(
                "workers={}: p99 {:.1} ms exceeds budget {:.1} ms",
                l.workers,
                l.completed.p99_ns as f64 / 1e6,
                p99_budget_ns / 1e6
            ));
        }
    }
    if levels.iter().all(|l| l.accepts == 0) {
        violations.push("no level accepted a single legitimate session".to_string());
    }
    let mut obs_violation = false;
    if !obs_within {
        obs_violation = true;
        eprintln!(
            "OBS_VIOLATION: observability lane overhead {obs_overhead_pct:.2}% \
             exceeds budget {obs_budget_pct:.1}%"
        );
    }
    if violations.is_empty() {
        println!("SLO: ok (p99 budget {:.0} ms)", p99_budget_ns / 1e6);
    } else {
        for v in &violations {
            eprintln!("SLO_VIOLATION: {v}");
        }
        if gate_enabled("P2AUTH_FLEET_GATE") {
            std::process::exit(1);
        }
        println!("(gate disabled; set P2AUTH_FLEET_GATE=1 to fail on violations)");
    }
    if obs_violation {
        if gate_enabled("P2AUTH_FLEET_OBS_GATE") {
            std::process::exit(1);
        }
        println!("(obs gate disabled; set P2AUTH_FLEET_OBS_GATE=1 to fail on overhead)");
    }
}
