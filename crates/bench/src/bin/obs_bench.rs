//! Observability overhead benchmark: the cost of the telemetry layer
//! itself, measured in one binary by toggling the runtime recording
//! switch (`p2auth_obs::set_recording`).
//!
//! Reports:
//! * per-stage latency (p50/p95/p99) of a traced enroll + auth run,
//! * the instrumented-vs-paused overhead of the hot authentication
//!   path (median of several batches, so one scheduler hiccup does not
//!   fail the run),
//! * the per-primitive cost (span enter/exit, counter increment,
//!   flight-recorder event).
//!
//! The acceptance budget is ~3% end-to-end overhead
//! (`P2AUTH_OBS_BUDGET_PCT` overrides); the process exits non-zero when
//! the budget is blown, so CI catches a telemetry regression. In a
//! `--no-default-features` build everything compiles to no-ops and the
//! measured deltas must sit at noise level.
//!
//! Writes `BENCH_obs.json` in the current directory.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin obs_bench`

use p2auth_bench::harness::print_stage_latency_table;
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, Recording};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use std::time::Instant;

/// Authentications per timed batch.
const BATCH: usize = 12;
/// Timed batches per lane; the median batch time is compared.
const ROUNDS: usize = 7;
/// Iterations for the per-primitive micro-measurements.
const PRIM_ITERS: u64 = 200_000;

fn budget_pct() -> f64 {
    std::env::var("P2AUTH_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0)
}

/// One timed batch of authentications, in ns.
fn batch_ns(
    sys: &P2Auth,
    profile: &p2auth_core::UserProfile,
    pin: &Pin,
    attempts: &[Recording],
) -> u64 {
    let t0 = Instant::now();
    for rec in attempts {
        let d = sys.authenticate(profile, pin, rec).expect("auth runs");
        std::hint::black_box(d.score);
    }
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn prim_ns<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..PRIM_ITERS {
        f();
    }
    t0.elapsed().as_nanos() as f64 / PRIM_ITERS as f64
}

fn main() {
    let enabled = p2auth_obs::is_enabled();
    println!("# obs_bench — telemetry overhead (obs feature enabled: {enabled})");

    let pop = Population::generate(&PopulationConfig {
        num_users: 4,
        seed: 0xfa_0175,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let pin = Pin::new("1628").unwrap();
    let sys = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<Recording> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<Recording> = (0..12)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 3),
                &pin,
                HandMode::OneHanded,
                &session,
                500 + i,
            )
        })
        .collect();
    let profile = sys.enroll(&pin, &enroll, &third).expect("enrollment");
    let attempts: Vec<Recording> = (0..BATCH)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 7000 + i as u64))
        .collect();

    // Warm-up, then the two lanes — recording on (spans timed, events
    // appended) vs paused — *interleaved* batch by batch, so clock
    // ramping or cache drift hits both lanes equally instead of
    // masquerading as telemetry overhead.
    for rec in &attempts {
        let _ = sys.authenticate(&profile, &pin, rec);
    }
    let mut on_times = Vec::with_capacity(ROUNDS);
    let mut off_times = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        p2auth_obs::set_recording(true);
        on_times.push(batch_ns(&sys, &profile, &pin, &attempts));
        p2auth_obs::set_recording(false);
        off_times.push(batch_ns(&sys, &profile, &pin, &attempts));
    }
    p2auth_obs::set_recording(true);
    let on_ns = median(on_times);
    let off_ns = median(off_times);

    let overhead_pct = if off_ns == 0 {
        0.0
    } else {
        (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0
    };
    let per_auth_on = on_ns / BATCH as u64;
    let per_auth_off = off_ns / BATCH as u64;

    // Per-primitive costs with recording on.
    let span_ns = prim_ns(|| {
        let _s = p2auth_obs::span!("bench.obs.probe");
    });
    let counter = p2auth_obs::counter!("bench.obs.probe_count");
    let counter_ns = prim_ns(|| counter.incr());
    let event_ns = prim_ns(|| p2auth_obs::event!("bench.obs", "probe", n = 1_u64));

    // Per-stage breakdown of a fresh traced run.
    p2auth_obs::reset();
    let d = sys
        .authenticate(&profile, &pin, &attempts[0])
        .expect("auth runs");
    std::hint::black_box(d.score);
    println!();
    println!("per-stage latency (one traced authentication):");
    print_stage_latency_table();
    println!();
    println!(
        "auth path: instrumented {per_auth_on} ns, paused {per_auth_off} ns, \
         overhead {overhead_pct:+.2}%"
    );
    println!(
        "primitives: span {span_ns:.1} ns, counter {counter_ns:.1} ns, event {event_ns:.1} ns"
    );

    let budget = budget_pct();
    let within = overhead_pct <= budget;
    println!(
        "budget: {budget:.1}% -> {}",
        if within { "PASS" } else { "FAIL" }
    );

    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"obs_enabled\": {enabled},\n  \
         \"auth_ns_instrumented\": {per_auth_on},\n  \
         \"auth_ns_paused\": {per_auth_off},\n  \
         \"overhead_pct\": {overhead_pct:.4},\n  \
         \"budget_pct\": {budget:.2},\n  \
         \"within_budget\": {within},\n  \
         \"primitive_ns\": {{ \"span\": {span_ns:.2}, \"counter\": {counter_ns:.2}, \
         \"event\": {event_ns:.2} }}\n}}\n"
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("wrote BENCH_obs.json");
    if !within {
        std::process::exit(1);
    }
}
