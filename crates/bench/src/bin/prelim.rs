//! The paper's preliminary / feasibility study (§III-B): 5 volunteers,
//! 8 weeks, >2000 samples, from which four insights are drawn. This
//! harness quantifies each insight on the simulator:
//!
//! 1. the same keystroke from *different users* differs strongly,
//! 2. *different keys* from the same user differ,
//! 3. keystrokes produce larger peaks/troughs than heartbeats,
//! 4. patterns stay consistent over the 8 weeks (no frequent
//!    re-enrollment needed).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin prelim`.

use p2auth_bench::harness::{print_header, print_row};
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin};
use p2auth_dsp::dtw::{dtw_normalized, DtwOptions};
use p2auth_dsp::normalize::zscore;
use p2auth_sim::artifact::{add_keystroke_artifact, EventJitter};
use p2auth_sim::channel::standard_layout;
use p2auth_sim::{Population, PopulationConfig, SessionConfig, Subject};

fn template(subject: &Subject, digit: u8) -> Vec<f64> {
    let mut buf = vec![0.0; 100];
    add_keystroke_artifact(
        subject,
        digit,
        standard_layout(1)[0],
        &mut buf,
        100.0,
        0.1,
        &EventJitter::none(),
    );
    zscore(&buf)
}

fn main() {
    let pop = Population::generate(&PopulationConfig {
        num_users: 5,
        ..Default::default()
    });
    let opts = DtwOptions { band: Some(10) };

    // ---- Insights 1 & 2: inter-user vs inter-key vs intra-user ------
    let mut inter_user = Vec::new();
    let mut inter_key = Vec::new();
    for u in 0..5 {
        for v in u + 1..5 {
            for d in [1_u8, 5, 9] {
                inter_user.push(dtw_normalized(
                    &template(pop.subject(u), d),
                    &template(pop.subject(v), d),
                    opts,
                ));
            }
        }
        for (a, b) in [(1_u8, 5_u8), (5, 9), (1, 9)] {
            inter_key.push(dtw_normalized(
                &template(pop.subject(u), a),
                &template(pop.subject(u), b),
                opts,
            ));
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("# Preliminary study (paper §III-B), simulated 5-subject cohort");
    println!();
    println!("insight 1/2 — normalized DTW distance between single-keystroke templates:");
    println!(
        "  same key, different users: {:.3} (must be large)",
        mean(&inter_user)
    );
    println!(
        "  different keys, same user: {:.3} (must be non-trivial)",
        mean(&inter_key)
    );

    // ---- Insight 3: keystroke amplitude vs heartbeat -----------------
    let ratios: Vec<f64> = (0..5)
        .map(|u| {
            let s = pop.subject(u);
            // Artifact peak (unit coupling) vs systolic amplitude.
            s.artifact_gain * s.key_responses.iter().map(|k| k.gain).fold(0.0, f64::max)
        })
        .collect();
    println!();
    println!(
        "insight 3 — keystroke peak / heartbeat amplitude: {:.2}x mean (min {:.2}x)",
        mean(&ratios),
        ratios.iter().cloned().fold(f64::INFINITY, f64::min)
    );

    // ---- Insight 4: 8-week consistency --------------------------------
    // Enroll at week 0, test at weeks 0..8 without re-enrollment.
    let session = SessionConfig::default();
    let pin = Pin::new("1628").expect("valid");
    let cfg = P2AuthConfig::default();
    let system = P2Auth::new(cfg);
    println!();
    println!("insight 4 — accuracy over 8 weeks without re-enrollment:");
    print_header(&["week", "accuracy"]);
    let mut profiles = Vec::new();
    for user in 0..5 {
        let enroll: Vec<_> = (0..9)
            .map(|i| pop.record_entry(user, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let third: Vec<_> = (0..40)
            .map(|i| {
                let other = (user + 1 + (i as usize % 4)) % 5;
                pop.record_entry(other, &pin, HandMode::OneHanded, &session, 900 + i)
            })
            .collect();
        profiles.push(system.enroll(&pin, &enroll, &third).expect("enroll"));
    }
    for week in [0.0_f64, 2.0, 4.0, 6.0, 8.0] {
        let mut ok = 0.0;
        let mut total = 0.0;
        for (user, profile) in profiles.iter().enumerate() {
            for n in 0..8_u64 {
                let attempt = pop.record_entry_aged(
                    user,
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    3000 + (week as u64) * 100 + n,
                    week,
                );
                if system
                    .authenticate(profile, &pin, &attempt)
                    .expect("valid")
                    .accepted
                {
                    ok += 1.0;
                }
                total += 1.0;
            }
        }
        print_row(&[format!("{week}"), format!("{:.3}", ok / total)]);
    }
    println!();
    println!("expected: distances user>key>0; keystrokes >1x heartbeat; flat weekly accuracy");
}
