//! Sensor-fault sweep over the quality gate and the supervised session
//! flow: FAR / FRR / abort / re-prompt-success as a function of fault
//! type × intensity × seed, with SQI gating + bounded re-prompts
//! (the "gated" lane) against the same faulted traffic decided
//! gate-less in one shot (the "ungated" lane).
//!
//! The acceptance bar: at two or more intensities the gated lane
//! strictly improves at least one of (FAR, FRR) over the ungated lane —
//! gating plus re-prompting recovers accuracy that gate-less
//! authentication loses to sensor faults.
//!
//! Writes `BENCH_quality.json` in the current directory.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin quality_bench [users]`

use p2auth_bench::harness::{mean, paper_pins, print_header, print_row, users_arg};
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, UserProfile};
use p2auth_device::host::LinkQuality;
use p2auth_device::{run_supervised, SupervisorConfig, SupervisorState};
use p2auth_sim::{
    inject_sensor_faults, Population, PopulationConfig, Recording, SensorFaultConfig,
    SensorFaultKind, SessionConfig,
};

/// Fault intensities swept (preset scale, 1.0 = most violent).
const INTENSITIES: [f64; 3] = [0.3, 0.6, 1.0];
/// Injector seeds per (kind, intensity) — three fault realizations.
const SEEDS: [u64; 3] = [1, 2, 3];
/// Legitimate / attack sessions per cell.
const SESSIONS: usize = 4;
/// Families swept (wander is handled by detrending, not the gate).
const KINDS: [SensorFaultKind; 4] = [
    SensorFaultKind::Motion,
    SensorFaultKind::Saturation,
    SensorFaultKind::Detach,
    SensorFaultKind::Dropout,
];

/// Per-lane tallies of one (kind, intensity, seed) cell.
#[derive(Default, Clone, Copy)]
struct Lane {
    legit_accepted: usize,
    legit_total: usize,
    attacks_accepted: usize,
    attacks_total: usize,
    aborted: usize,
    reprompted: usize,
    reprompt_accepts: usize,
    attempts: usize,
}

impl Lane {
    fn far(&self) -> f64 {
        self.attacks_accepted as f64 / self.attacks_total.max(1) as f64
    }
    fn frr(&self) -> f64 {
        1.0 - self.legit_accepted as f64 / self.legit_total.max(1) as f64
    }
    fn abort_rate(&self) -> f64 {
        self.aborted as f64 / (self.legit_total + self.attacks_total).max(1) as f64
    }
    fn reprompt_success(&self) -> f64 {
        self.reprompt_accepts as f64 / self.reprompted.max(1) as f64
    }
}

/// The bench isolates sensor faults: the link itself is clean.
fn clean_link() -> LinkQuality {
    LinkQuality {
        coverage: 1.0,
        expected_blocks: 1,
        received_blocks: 1,
        gap_blocks: 0,
    }
}

/// Runs one supervised session; fresh attempts (re-prompts) draw a new
/// entry and a new fault realization, as a re-prompted user would.
#[allow(clippy::too_many_arguments)]
fn run_one(
    system: &P2Auth,
    profile: &UserProfile,
    pin: &Pin,
    sup_cfg: &SupervisorConfig,
    faults: &SensorFaultConfig,
    record: &dyn Fn(u32) -> Recording,
    legit: bool,
    lane: &mut Lane,
) {
    let out = run_supervised(system, profile, Some(pin), sup_cfg, |attempt| {
        let rec = record(attempt);
        let (faulted, _) = inject_sensor_faults(&rec, faults, u64::from(attempt));
        Some((faulted, clean_link()))
    });
    if legit {
        lane.legit_total += 1;
        if out.accepted() {
            lane.legit_accepted += 1;
        }
    } else {
        lane.attacks_total += 1;
        if out.accepted() {
            lane.attacks_accepted += 1;
        }
    }
    if out.state == SupervisorState::Abort {
        lane.aborted += 1;
    }
    if out.attempts > 1 {
        lane.reprompted += 1;
        if out.accepted() {
            lane.reprompt_accepts += 1;
        }
    }
    lane.attempts += out.attempts as usize;
}

fn main() {
    let users = users_arg(5).max(4);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        seed: 0x5e_0175,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let pin = &paper_pins()[0];

    let mut gated_cfg = P2AuthConfig::fast();
    gated_cfg.sqi_gating = true;
    let mut ungated_cfg = gated_cfg.clone();
    ungated_cfg.sqi_gating = false;
    let gated_sys = P2Auth::new(gated_cfg);
    let ungated_sys = P2Auth::new(ungated_cfg);
    // One-shot supervisor for the ungated lane: no quality gate, no
    // re-prompts — plain decide_session under the same state machine.
    let gated_sup = SupervisorConfig::default();
    let ungated_sup = SupervisorConfig {
        max_reprompts: 0,
        ..SupervisorConfig::default()
    };

    // Enrollment is clean and shared: gating plays no role at enroll
    // time, so both lanes judge against the identical profile.
    let enroll: Vec<Recording> = (0..9)
        .map(|i| pop.record_entry(0, pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<Recording> = (0..24)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % (users - 1)),
                pin,
                HandMode::OneHanded,
                &session,
                300 + i,
            )
        })
        .collect();
    let profile = gated_sys.enroll(pin, &enroll, &third).expect("enrollment");

    println!("# quality_bench — supervised SQI gating vs gate-less auth under sensor faults");
    print_header(&[
        "fault", "intens", "g_far", "g_frr", "u_far", "u_frr", "g_abort", "reprompt", "rp_ok",
    ]);

    struct Cell {
        kind: SensorFaultKind,
        intensity: f64,
        gated: Lane,
        ungated: Lane,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for &kind in &KINDS {
        for &intensity in &INTENSITIES {
            let mut gated = Lane::default();
            let mut ungated = Lane::default();
            for &seed in &SEEDS {
                let faults = SensorFaultConfig::preset(kind, intensity, seed);
                for s in 0..SESSIONS {
                    let base = 9000 + seed * 1000 + s as u64 * 10;
                    let legit_rec = |attempt: u32| {
                        pop.record_entry(
                            0,
                            pin,
                            HandMode::OneHanded,
                            &session,
                            base + u64::from(attempt),
                        )
                    };
                    let attacker = 1 + (s % (users - 1));
                    let attack_rec = |attempt: u32| {
                        pop.record_emulating_attack(
                            attacker,
                            0,
                            pin,
                            HandMode::OneHanded,
                            &session,
                            base + u64::from(attempt),
                        )
                    };
                    for (lane, system, sup) in [
                        (&mut gated, &gated_sys, &gated_sup),
                        (&mut ungated, &ungated_sys, &ungated_sup),
                    ] {
                        run_one(system, &profile, pin, sup, &faults, &legit_rec, true, lane);
                        run_one(
                            system,
                            &profile,
                            pin,
                            sup,
                            &faults,
                            &attack_rec,
                            false,
                            lane,
                        );
                    }
                }
            }
            print_row(&[
                kind.as_str().to_string(),
                format!("{intensity:.1}"),
                format!("{:.3}", gated.far()),
                format!("{:.3}", gated.frr()),
                format!("{:.3}", ungated.far()),
                format!("{:.3}", ungated.frr()),
                format!("{:.3}", gated.abort_rate()),
                format!("{}", gated.reprompted),
                format!("{:.3}", gated.reprompt_success()),
            ]);
            cells.push(Cell {
                kind,
                intensity,
                gated,
                ungated,
            });
        }
    }

    // Acceptance: per intensity (aggregated over fault kinds), the
    // gated lane strictly improves FAR or FRR at ≥ 2 intensities.
    let mut improved_intensities = 0_usize;
    let mut per_intensity = Vec::new();
    for &intensity in &INTENSITIES {
        let at: Vec<&Cell> = cells
            .iter()
            .filter(|c| (c.intensity - intensity).abs() < 1e-12)
            .collect();
        let g_far = mean(&at.iter().map(|c| c.gated.far()).collect::<Vec<_>>());
        let g_frr = mean(&at.iter().map(|c| c.gated.frr()).collect::<Vec<_>>());
        let u_far = mean(&at.iter().map(|c| c.ungated.far()).collect::<Vec<_>>());
        let u_frr = mean(&at.iter().map(|c| c.ungated.frr()).collect::<Vec<_>>());
        let improved = g_far < u_far || g_frr < u_frr;
        if improved {
            improved_intensities += 1;
        }
        println!(
            "intensity {intensity:.1}: gated far/frr {g_far:.3}/{g_frr:.3} vs \
             ungated {u_far:.3}/{u_frr:.3} -> improved: {improved}"
        );
        per_intensity.push((intensity, g_far, g_frr, u_far, u_frr, improved));
    }
    println!(
        "improved at {improved_intensities}/{} intensities (acceptance: >= 2)",
        INTENSITIES.len()
    );

    let sweep = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"fault\": \"{}\", \"intensity\": {:.1}, \
                 \"gated\": {{ \"far\": {:.4}, \"frr\": {:.4}, \"abort_rate\": {:.4}, \
                 \"reprompted_sessions\": {}, \"reprompt_success_rate\": {:.4}, \
                 \"mean_attempts\": {:.3} }}, \
                 \"ungated\": {{ \"far\": {:.4}, \"frr\": {:.4}, \"abort_rate\": {:.4} }} }}",
                c.kind.as_str(),
                c.intensity,
                c.gated.far(),
                c.gated.frr(),
                c.gated.abort_rate(),
                c.gated.reprompted,
                c.gated.reprompt_success(),
                c.gated.attempts as f64 / (c.gated.legit_total + c.gated.attacks_total) as f64,
                c.ungated.far(),
                c.ungated.frr(),
                c.ungated.abort_rate(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let aggregates = per_intensity
        .iter()
        .map(|(i, gf, gr, uf, ur, imp)| {
            format!(
                "    {{ \"intensity\": {i:.1}, \"gated_far\": {gf:.4}, \"gated_frr\": {gr:.4}, \
                 \"ungated_far\": {uf:.4}, \"ungated_frr\": {ur:.4}, \"improved\": {imp} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"quality\",\n  \"users\": {users},\n  \
         \"sessions_per_cell\": {SESSIONS},\n  \"seeds\": {:?},\n  \
         \"intensities\": {:?},\n  \
         \"improved_intensities\": {improved_intensities},\n  \
         \"per_intensity\": [\n{aggregates}\n  ],\n  \
         \"sweep\": [\n{sweep}\n  ]\n}}\n",
        SEEDS, INTENSITIES,
    );
    std::fs::write("BENCH_quality.json", &json).expect("write BENCH_quality.json");
    println!("wrote BENCH_quality.json");
}
