//! MiniRocket throughput benchmark at the paper's operating point:
//! 0.9 s keystroke windows at 100 Hz (90 samples), 2 PPG channels,
//! 840 output features, one model per key of the 10-key PIN pad
//! (paper §IV-B). Measures
//!
//! * `fit` cost per PIN-pad key (the enrollment-time unit of work),
//! * batch transform throughput three ways: serial with a fresh
//!   scratch per call (the pre-refactor API cost), serial with a
//!   reused [`ConvScratch`], and the data-parallel batch
//!   [`MiniRocket::transform`],
//!
//! and writes the results to `BENCH_rocket.json` in the current
//! directory (run from the repo root to place it there).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin rocket_bench`

use std::time::Instant;

use p2auth_rocket::{ConvScratch, MiniRocket, MiniRocketConfig, MultiSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 0.9 s keystroke-centred window at the paper's 100 Hz PPG rate.
const WINDOW: usize = 90;
/// The watch exposes two usable PPG channels (green + infrared).
const CHANNELS: usize = 2;
/// Feature budget used throughout the reproduction.
const NUM_FEATURES: usize = 840;
/// One wave model per key of the PIN pad.
const KEYS: usize = 10;
/// 9 enrollment entries + ~40 third-party segments per key.
const TRAIN_PER_KEY: usize = 49;
/// Batch size for the transform throughput measurement.
const BATCH: usize = 512;
/// Timing repetitions; the best (minimum) time is reported.
const REPS: usize = 5;

/// Synthetic PPG-like segment: slow pulse wave plus a dicrotic-notch
/// harmonic and measurement noise. The exact shape does not matter for
/// throughput — only the `(len, channels)` dimensions do.
fn synth_series(rng: &mut StdRng) -> MultiSeries {
    let tau = std::f64::consts::TAU;
    let channels: Vec<Vec<f64>> = (0..CHANNELS)
        .map(|c| {
            let phase: f64 = rng.gen_range(0.0..tau);
            (0..WINDOW)
                .map(|i| {
                    let t = i as f64 / 100.0;
                    (tau * 1.2 * t + phase).sin()
                        + 0.25 * (tau * 7.0 * t + 1.3 * phase + c as f64).sin()
                        + 0.05 * rng.gen_range(-1.0..1.0)
                })
                .collect()
        })
        .collect();
    MultiSeries::new(channels).expect("synthetic series is well-formed")
}

/// Best-of-`REPS` wall time of `f`, in seconds. The closure returns a
/// checksum that is accumulated into `sink` so the optimizer cannot
/// discard the measured work.
fn best_time(sink: &mut f64, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        *sink += f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let train: Vec<MultiSeries> = (0..TRAIN_PER_KEY).map(|_| synth_series(&mut rng)).collect();
    let batch: Vec<MultiSeries> = (0..BATCH).map(|_| synth_series(&mut rng)).collect();
    let base = MiniRocketConfig {
        num_features: NUM_FEATURES,
        ..MiniRocketConfig::default()
    };
    let threads = p2auth_par::num_threads();
    println!(
        "rocket_bench: window={WINDOW} channels={CHANNELS} features={NUM_FEATURES} \
         keys={KEYS} batch={BATCH} threads={threads}"
    );

    // Enrollment cost: one fit per PIN-pad key (distinct seeds so no
    // work can be shared between iterations).
    let fit_start = Instant::now();
    let mut fitted = None;
    for key in 0..KEYS {
        let cfg = MiniRocketConfig {
            seed: base.seed + key as u64,
            ..base
        };
        fitted = Some(MiniRocket::fit(&cfg, &train).expect("fit on synthetic training set"));
    }
    let fit_s_per_key = fit_start.elapsed().as_secs_f64() / KEYS as f64;
    let rocket = fitted.expect("at least one key was fitted");
    let dim = rocket.num_output_features();

    let mut sink = 0.0;
    let serial_fresh_s = best_time(&mut sink, || {
        batch.iter().map(|s| rocket.transform_one(s)[0]).sum()
    });
    let serial_scratch_s = best_time(&mut sink, || {
        let mut scratch = ConvScratch::new(WINDOW);
        batch
            .iter()
            .map(|s| rocket.transform_one_with(s, &mut scratch)[0])
            .sum()
    });
    let batch_s = best_time(&mut sink, || {
        let m = rocket.transform(&batch);
        m.as_slice()[0] + m.as_slice()[m.as_slice().len() - 1]
    });

    let speedup_scratch = serial_fresh_s / serial_scratch_s;
    let speedup_batch = serial_fresh_s / batch_s;
    let batch_series_per_s = BATCH as f64 / batch_s;

    println!(
        "fit:                     {:>10.3} ms/key",
        fit_s_per_key * 1e3
    );
    println!(
        "transform serial fresh:  {:>10.1} series/s",
        BATCH as f64 / serial_fresh_s
    );
    println!(
        "transform serial reused: {:>10.1} series/s  ({speedup_scratch:.2}x)",
        BATCH as f64 / serial_scratch_s
    );
    println!(
        "transform batch:         {:>10.1} series/s  ({speedup_batch:.2}x)",
        batch_series_per_s
    );

    let json = format!(
        "{{\n  \"bench\": \"rocket\",\n  \"shape\": {{ \"window\": {WINDOW}, \"channels\": {CHANNELS}, \
         \"num_features\": {dim}, \"keys\": {KEYS}, \"batch\": {BATCH} }},\n  \
         \"threads\": {threads},\n  \
         \"fit_ms_per_key\": {:.4},\n  \
         \"serial_fresh_scratch_series_per_s\": {:.2},\n  \
         \"serial_reused_scratch_series_per_s\": {:.2},\n  \
         \"batch_series_per_s\": {:.2},\n  \
         \"speedup_reused_scratch_vs_fresh\": {:.4},\n  \
         \"speedup_batch_vs_serial_fresh\": {:.4}\n}}\n",
        fit_s_per_key * 1e3,
        BATCH as f64 / serial_fresh_s,
        BATCH as f64 / serial_scratch_s,
        batch_series_per_s,
        speedup_scratch,
        speedup_batch,
    );
    std::fs::write("BENCH_rocket.json", &json).expect("write BENCH_rocket.json");
    println!("wrote BENCH_rocket.json (checksum {sink:.6e})");
}
