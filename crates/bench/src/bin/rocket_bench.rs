//! MiniRocket throughput benchmark at the paper's operating point:
//! 0.9 s keystroke windows at 100 Hz (90 samples), 2 PPG channels,
//! 840 output features, one model per key of the 10-key PIN pad
//! (paper §IV-B). Measures
//!
//! * `fit` cost per PIN-pad key (the enrollment-time unit of work),
//! * batch transform throughput three ways: serial with a fresh
//!   scratch per call (the pre-refactor API cost), serial with a
//!   reused [`ConvScratch`], and the data-parallel batch
//!   [`MiniRocket::transform`],
//! * single-auth end-to-end latency — the unlock-screen number: one
//!   enrolled user from the simulator, one attempt at a time through
//!   [`P2Auth::authenticate`] (direct) and
//!   [`P2Auth::authenticate_arena`] (fused hot path), with p50/p95
//!   taken from `p2auth-obs` histograms,
//!
//! and writes the results to `BENCH_rocket.json` in the current
//! directory (run from the repo root to place it there).
//!
//! Usage: `cargo run -p p2auth-bench --release --bin rocket_bench`
//!
//! With `P2AUTH_BENCH_GATE=1` the process exits nonzero when the fused
//! arena path's mean single-auth latency is not at least
//! `P2AUTH_MIN_SINGLE_AUTH_SPEEDUP` (default 1.0) times faster than the
//! direct path — the CI regression gate for the hot-path refactor.

use std::time::Instant;

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, SessionScratch};
use p2auth_rocket::{ConvScratch, MiniRocket, MiniRocketConfig, MultiSeries};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 0.9 s keystroke-centred window at the paper's 100 Hz PPG rate.
const WINDOW: usize = 90;
/// The watch exposes two usable PPG channels (green + infrared).
const CHANNELS: usize = 2;
/// Feature budget used throughout the reproduction.
const NUM_FEATURES: usize = 840;
/// One wave model per key of the PIN pad.
const KEYS: usize = 10;
/// 9 enrollment entries + ~40 third-party segments per key.
const TRAIN_PER_KEY: usize = 49;
/// Batch size for the transform throughput measurement.
const BATCH: usize = 512;
/// Timing repetitions; the best (minimum) time is reported.
const REPS: usize = 5;

/// Synthetic PPG-like segment: slow pulse wave plus a dicrotic-notch
/// harmonic and measurement noise. The exact shape does not matter for
/// throughput — only the `(len, channels)` dimensions do.
fn synth_series(rng: &mut StdRng) -> MultiSeries {
    let tau = std::f64::consts::TAU;
    let channels: Vec<Vec<f64>> = (0..CHANNELS)
        .map(|c| {
            let phase: f64 = rng.gen_range(0.0..tau);
            (0..WINDOW)
                .map(|i| {
                    let t = i as f64 / 100.0;
                    (tau * 1.2 * t + phase).sin()
                        + 0.25 * (tau * 7.0 * t + 1.3 * phase + c as f64).sin()
                        + 0.05 * rng.gen_range(-1.0..1.0)
                })
                .collect()
        })
        .collect();
    MultiSeries::new(channels).expect("synthetic series is well-formed")
}

/// Best-of-`REPS` wall time of `f`, in seconds. The closure returns a
/// checksum that is accumulated into `sink` so the optimizer cannot
/// discard the measured work.
fn best_time(sink: &mut f64, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        *sink += f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Authentication attempts timed per call in the single-auth lane.
const AUTH_CALLS: usize = 60;
/// Distinct attempt recordings cycled through (so the branch predictor
/// cannot memorize one session).
const AUTH_ATTEMPTS: usize = 6;

/// Latency summary of one single-auth lane: histogram-bucketed p50/p95
/// plus the exact mean (the gate ratio uses the mean — log2 bucket
/// edges are too coarse to compare paths whose ratio is under 2x).
struct AuthLane {
    p50_us: f64,
    p95_us: f64,
    mean_us: f64,
}

/// Times `AUTH_CALLS` single authentications, one call at a time,
/// recording each latency into the `p2auth-obs` histogram `hist_name`
/// and returning the lane summary.
fn time_auth_lane(
    hist_name: &'static str,
    attempts: &[p2auth_core::Recording],
    sink: &mut f64,
    mut auth: impl FnMut(&p2auth_core::Recording) -> f64,
) -> AuthLane {
    // Warm each attempt once: first-call work (obs site registration,
    // scratch growth) must not pollute the steady-state numbers.
    for a in attempts {
        *sink += auth(a);
    }
    let hist = p2auth_obs::histogram!(hist_name);
    let mut total_ns = 0_u64;
    for i in 0..AUTH_CALLS {
        let a = &attempts[i % attempts.len()];
        let start = Instant::now();
        *sink += auth(a);
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        hist.record(ns);
        total_ns += ns;
    }
    AuthLane {
        p50_us: hist.quantile(0.50) as f64 / 1e3,
        p95_us: hist.quantile(0.95) as f64 / 1e3,
        mean_us: total_ns as f64 / AUTH_CALLS as f64 / 1e3,
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let train: Vec<MultiSeries> = (0..TRAIN_PER_KEY).map(|_| synth_series(&mut rng)).collect();
    let batch: Vec<MultiSeries> = (0..BATCH).map(|_| synth_series(&mut rng)).collect();
    let base = MiniRocketConfig {
        num_features: NUM_FEATURES,
        ..MiniRocketConfig::default()
    };
    let threads = p2auth_par::num_threads();
    println!(
        "rocket_bench: window={WINDOW} channels={CHANNELS} features={NUM_FEATURES} \
         keys={KEYS} batch={BATCH} threads={threads}"
    );

    // Enrollment cost: one fit per PIN-pad key (distinct seeds so no
    // work can be shared between iterations).
    let fit_start = Instant::now();
    let mut fitted = None;
    for key in 0..KEYS {
        let cfg = MiniRocketConfig {
            seed: base.seed + key as u64,
            ..base
        };
        fitted = Some(MiniRocket::fit(&cfg, &train).expect("fit on synthetic training set"));
    }
    let fit_s_per_key = fit_start.elapsed().as_secs_f64() / KEYS as f64;
    let rocket = fitted.expect("at least one key was fitted");
    let dim = rocket.num_output_features();

    let mut sink = 0.0;
    let serial_fresh_s = best_time(&mut sink, || {
        batch.iter().map(|s| rocket.transform_one(s)[0]).sum()
    });
    let serial_scratch_s = best_time(&mut sink, || {
        let mut scratch = ConvScratch::new(WINDOW);
        batch
            .iter()
            .map(|s| rocket.transform_one_with(s, &mut scratch)[0])
            .sum()
    });
    let batch_s = best_time(&mut sink, || {
        let m = rocket.transform(&batch);
        m.as_slice()[0] + m.as_slice()[m.as_slice().len() - 1]
    });

    let speedup_scratch = serial_fresh_s / serial_scratch_s;
    let speedup_batch = serial_fresh_s / batch_s;
    let batch_series_per_s = BATCH as f64 / batch_s;

    // Single-auth end-to-end latency: enroll one simulated user, then
    // authenticate one attempt at a time — the unlock-screen unit of
    // work — through the direct path and the fused arena path.
    let pop = Population::generate(&PopulationConfig {
        num_users: 4,
        seed: 271,
        ..Default::default()
    });
    let pin = Pin::new("1628").expect("valid PIN");
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<_> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 10 + i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 3),
                &pin,
                HandMode::OneHanded,
                &session,
                50 + i,
            )
        })
        .collect();
    let profile = system
        .enroll(&pin, &enroll, &third)
        .expect("enroll simulated user");
    let arena = system.arena(&profile);
    let mut cx = SessionScratch::new();
    let attempts: Vec<_> = (0..AUTH_ATTEMPTS as u64)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 600 + i))
        .collect();

    let direct = time_auth_lane("bench.single_auth.direct", &attempts, &mut sink, |a| {
        system
            .authenticate(&profile, &pin, a)
            .expect("direct auth")
            .score
    });
    let fused = time_auth_lane("bench.single_auth.arena", &attempts, &mut sink, |a| {
        system
            .authenticate_arena(&arena, &mut cx, &pin, a)
            .expect("arena auth")
            .score
    });
    let single_auth_speedup = direct.mean_us / fused.mean_us;

    println!(
        "fit:                     {:>10.3} ms/key",
        fit_s_per_key * 1e3
    );
    println!(
        "transform serial fresh:  {:>10.1} series/s",
        BATCH as f64 / serial_fresh_s
    );
    println!(
        "transform serial reused: {:>10.1} series/s  ({speedup_scratch:.2}x)",
        BATCH as f64 / serial_scratch_s
    );
    println!(
        "transform batch:         {:>10.1} series/s  ({speedup_batch:.2}x)",
        batch_series_per_s
    );
    println!(
        "single auth direct:      {:>10.1} us mean  (p50 {:.1} us, p95 {:.1} us)",
        direct.mean_us, direct.p50_us, direct.p95_us
    );
    println!(
        "single auth arena:       {:>10.1} us mean  (p50 {:.1} us, p95 {:.1} us)  \
         ({single_auth_speedup:.2}x)",
        fused.mean_us, fused.p50_us, fused.p95_us
    );

    let json = format!(
        "{{\n  \"bench\": \"rocket\",\n  \"shape\": {{ \"window\": {WINDOW}, \"channels\": {CHANNELS}, \
         \"num_features\": {dim}, \"keys\": {KEYS}, \"batch\": {BATCH} }},\n  \
         \"threads\": {threads},\n  \
         \"fit_ms_per_key\": {:.4},\n  \
         \"serial_fresh_scratch_series_per_s\": {:.2},\n  \
         \"serial_reused_scratch_series_per_s\": {:.2},\n  \
         \"batch_series_per_s\": {:.2},\n  \
         \"speedup_reused_scratch_vs_fresh\": {:.4},\n  \
         \"speedup_batch_vs_serial_fresh\": {:.4},\n  \
         \"single_auth\": {{\n    \
         \"calls\": {AUTH_CALLS},\n    \
         \"direct_mean_us\": {:.3},\n    \
         \"direct_p50_us\": {:.3},\n    \
         \"direct_p95_us\": {:.3},\n    \
         \"arena_mean_us\": {:.3},\n    \
         \"arena_p50_us\": {:.3},\n    \
         \"arena_p95_us\": {:.3},\n    \
         \"speedup_arena_vs_direct\": {:.4}\n  }}\n}}\n",
        fit_s_per_key * 1e3,
        BATCH as f64 / serial_fresh_s,
        BATCH as f64 / serial_scratch_s,
        batch_series_per_s,
        speedup_scratch,
        speedup_batch,
        direct.mean_us,
        direct.p50_us,
        direct.p95_us,
        fused.mean_us,
        fused.p50_us,
        fused.p95_us,
        single_auth_speedup,
    );
    std::fs::write("BENCH_rocket.json", &json).expect("write BENCH_rocket.json");
    println!("wrote BENCH_rocket.json (checksum {sink:.6e})");

    // CI regression gate: opt in with P2AUTH_BENCH_GATE=1; the floor on
    // the arena-vs-direct mean latency ratio comes from
    // P2AUTH_MIN_SINGLE_AUTH_SPEEDUP (default 1.0 — the fused path must
    // never be slower than the path it replaced).
    if std::env::var("P2AUTH_BENCH_GATE").as_deref() == Ok("1") {
        let floor: f64 = std::env::var("P2AUTH_MIN_SINGLE_AUTH_SPEEDUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        if single_auth_speedup < floor {
            eprintln!(
                "GATE FAIL: single-auth arena speedup {single_auth_speedup:.3}x \
                 below floor {floor:.3}x"
            );
            std::process::exit(1);
        }
        println!("gate ok: single-auth arena speedup {single_auth_speedup:.3}x >= {floor:.3}x");
    }
}
