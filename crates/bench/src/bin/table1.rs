//! Table I — computational and memory overheads of the ROCKET-based
//! pipeline vs the manual-feature method, for the enrollment and
//! authentication phases.
//!
//! Paper values (python implementation on an i7-10750H):
//! ROCKET 1.06 s / 378.4 MiB enrollment, 0.302 s / 379.3 MiB auth;
//! manual 104.89 s / 367.5 MiB enrollment, 10.57 s / 367.5 MiB auth.
//! Absolute numbers are not comparable across languages — the paper's
//! point is the ~100× / ~35× time ratio, which this harness verifies.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin table1`.

use p2auth_baseline::manual::{authenticate_manual, enroll_manual, ManualConfig};
use p2auth_bench::alloc::CountingAllocator;
use p2auth_bench::harness::{build_dataset, paper_pins, print_header, print_row, ProtocolConfig};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const MIB: f64 = 1024.0 * 1024.0;

fn main() {
    let pop = Population::generate(&PopulationConfig {
        num_users: 15,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let pin = &paper_pins()[0];
    let cfg = P2AuthConfig::default();
    let data = build_dataset(&pop, 0, pin, &session, &proto);
    let attempt = &data.legit_one[0];

    // --- ROCKET-based pipeline ---------------------------------------
    ALLOC.reset_peak();
    let base = ALLOC.live_bytes();
    let t = Instant::now();
    let system = P2Auth::new(cfg.clone());
    let profile = system
        .enroll(pin, &data.enroll, &data.third_party)
        .expect("enrollment");
    let rocket_enroll_s = t.elapsed().as_secs_f64();
    let rocket_enroll_mib = (ALLOC.peak_bytes() - base) as f64 / MIB;

    ALLOC.reset_peak();
    let base = ALLOC.live_bytes();
    let t = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        let d = system
            .authenticate(&profile, pin, attempt)
            .expect("attempt");
        std::hint::black_box(d.accepted);
    }
    let rocket_auth_s = t.elapsed().as_secs_f64() / reps as f64;
    let rocket_auth_mib = ALLOC.peak_bytes().saturating_sub(base) as f64 / MIB;

    // --- manual-feature method -----------------------------------------
    let manual_cfg = ManualConfig::default();
    ALLOC.reset_peak();
    let base = ALLOC.live_bytes();
    let t = Instant::now();
    let mp = enroll_manual(&manual_cfg, &data.enroll).expect("manual enrollment");
    let manual_enroll_s = t.elapsed().as_secs_f64();
    let manual_enroll_mib = ALLOC.peak_bytes().saturating_sub(base) as f64 / MIB;

    ALLOC.reset_peak();
    let base = ALLOC.live_bytes();
    let t = Instant::now();
    for _ in 0..reps {
        let d = authenticate_manual(&manual_cfg, &mp, attempt).expect("attempt");
        std::hint::black_box(d.accepted);
    }
    let manual_auth_s = t.elapsed().as_secs_f64() / reps as f64;
    let manual_auth_mib = ALLOC.peak_bytes().saturating_sub(base) as f64 / MIB;

    println!("# Table I — computational and memory overheads");
    print_header(&[
        "model",
        "enroll_time_s",
        "enroll_peak_MiB",
        "auth_time_s",
        "auth_peak_MiB",
    ]);
    print_row(&[
        "ROCKET-based".into(),
        format!("{rocket_enroll_s:.3}"),
        format!("{rocket_enroll_mib:.1}"),
        format!("{rocket_auth_s:.4}"),
        format!("{rocket_auth_mib:.1}"),
    ]);
    print_row(&[
        "manual-feature".into(),
        format!("{manual_enroll_s:.3}"),
        format!("{manual_enroll_mib:.1}"),
        format!("{manual_auth_s:.4}"),
        format!("{manual_auth_mib:.1}"),
    ]);
    println!();
    println!(
        "time ratios manual/ROCKET — enrollment: {:.1}x (paper ~99x), authentication: {:.1}x (paper ~35x)",
        manual_enroll_s / rocket_enroll_s,
        manual_auth_s / rocket_auth_s
    );
    println!(
        "total heap traffic this run: {:.1} MiB",
        ALLOC.total_allocated() as f64 / MIB
    );
}
