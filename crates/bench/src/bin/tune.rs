//! Development aid: quick pass over the fig10 protocol on a reduced
//! cohort to check metric shapes while tuning the simulator. Not part
//! of the paper reproduction (see `fig10` for the full run).

use p2auth_bench::harness::{
    build_dataset, evaluate_case, mean, paper_pins, try_enroll, CaseSummary, ProtocolConfig,
};
use p2auth_core::{P2Auth, P2AuthConfig};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let users: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let proto = ProtocolConfig::default();
    let pin = &paper_pins()[0];
    let cfg = P2AuthConfig::default();
    let cfg_boost = P2AuthConfig {
        privacy_boost: true,
        ..cfg.clone()
    };

    let mut single = Vec::new();
    let mut boost = Vec::new();
    let mut d3 = Vec::new();
    let mut d2 = Vec::new();
    let mut nopin = Vec::new();

    for user in 0..pop.num_users() {
        let data = build_dataset(&pop, user, pin, &session, &proto);
        let system = P2Auth::new(cfg.clone());
        if let Some(profile) = try_enroll(&cfg, pin, &data) {
            single.push(evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            ));
            d3.push(evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_double3,
                &data.ra_one,
                &data.ea_double3,
            ));
            d2.push(evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_double2,
                &data.ra_one,
                &data.ea_double2,
            ));
            // No-PIN: same per-key models, PIN factor skipped.
            let sys_np = P2Auth::new(P2AuthConfig {
                pin_policy: p2auth_core::PinPolicy::NoPinAllowed,
                ..cfg.clone()
            });
            let np_profile = sys_np
                .enroll_no_pin(&data.enroll, &data.third_party)
                .unwrap();
            let mut acc = 0.0;
            for rec in &data.legit_one {
                if sys_np
                    .authenticate_no_pin(&np_profile, rec)
                    .unwrap()
                    .accepted
                {
                    acc += 1.0;
                }
            }
            let mut rej = 0.0;
            for rec in &data.ea_one {
                if !sys_np
                    .authenticate_no_pin(&np_profile, rec)
                    .unwrap()
                    .accepted
                {
                    rej += 1.0;
                }
            }
            nopin.push(CaseSummary {
                accuracy: acc / data.legit_one.len() as f64,
                trr_random: 1.0,
                trr_emulating: rej / data.ea_one.len() as f64,
            });
        }
        if let Some(profile) = try_enroll(&cfg_boost, pin, &data) {
            let system_b = P2Auth::new(cfg_boost.clone());
            boost.push(evaluate_case(
                &system_b,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            ));
        }
        if let Some(s) = single.last() {
            eprintln!(
                "user {user} single: acc {:.2} trr_ra {:.2} trr_ea {:.2}  ({:.1}s)",
                s.accuracy,
                s.trr_random,
                s.trr_emulating,
                t0.elapsed().as_secs_f64()
            );
        }
    }

    let show = |name: &str, v: &[CaseSummary]| {
        println!(
            "{name:12} acc {:.3}  trr_ra {:.3}  trr_ea {:.3}   (n={})",
            mean(&v.iter().map(|c| c.accuracy).collect::<Vec<_>>()),
            mean(&v.iter().map(|c| c.trr_random).collect::<Vec<_>>()),
            mean(&v.iter().map(|c| c.trr_emulating).collect::<Vec<_>>()),
            v.len()
        );
    };
    println!(
        "--- tune results ({} users, PIN {pin}) ---",
        pop.num_users()
    );
    show("single", &single);
    show("single-boost", &boost);
    show("double-3", &d3);
    show("double-2", &d2);
    show("no-pin", &nopin);
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
