//! CI vectorization check for the MiniRocket hot path.
//!
//! Two assertions, both tunable by environment variable and both
//! exiting nonzero on failure (the CI `vectorize` job builds with
//! `-C target-cpu=native` and runs this binary):
//!
//! * **Throughput floor** — the chunked `3·S3 − S9` kernels plus the
//!   branchless PPV scan must sustain at least
//!   `P2AUTH_MIN_CONV_MELEMS` million PPV-scanned elements per second
//!   (one element = one conv sample compared against one bias) on the
//!   paper shape. A silent autovectorization regression (a bounds
//!   check sneaking into the inner loop, a chunk width change) shows
//!   up here as a large throughput drop.
//! * **Fused speedup** — [`FusedScorer::score`] must not be slower
//!   than materialize-then-dot by more than the floor
//!   `P2AUTH_MIN_FUSED_SPEEDUP` (default 0.95): both routes reuse
//!   scratch buffers, so they sit near parity — the fused path only
//!   saves the feature-vector write-back. The floor catches the sweep
//!   regressing badly (e.g. per-call allocation returning), while the
//!   sub-1.0 slack absorbs run-to-run noise.
//!
//! Usage: `cargo run -p p2auth-bench --release --bin vectorize_check`

use std::time::Instant;

use p2auth_ml::linalg::dot;
use p2auth_rocket::{ConvScratch, FusedScorer, MiniRocket, MiniRocketConfig, MultiSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 0.9 s keystroke window at 100 Hz (paper operating point).
const WINDOW: usize = 90;
/// Green + infrared PPG channels.
const CHANNELS: usize = 2;
/// Feature budget used throughout the reproduction.
const NUM_FEATURES: usize = 840;
/// Series transformed per timing repetition.
const CALLS: usize = 256;
/// Timing repetitions; the best (minimum) time is reported.
const REPS: usize = 5;

fn synth_series(rng: &mut StdRng) -> MultiSeries {
    let tau = std::f64::consts::TAU;
    let channels: Vec<Vec<f64>> = (0..CHANNELS)
        .map(|c| {
            let phase: f64 = rng.gen_range(0.0..tau);
            (0..WINDOW)
                .map(|i| {
                    let t = i as f64 / 100.0;
                    (tau * 1.2 * t + phase).sin()
                        + 0.25 * (tau * 7.0 * t + 1.3 * phase + c as f64).sin()
                        + 0.05 * rng.gen_range(-1.0..1.0)
                })
                .collect()
        })
        .collect();
    MultiSeries::new(channels).expect("synthetic series is well-formed")
}

/// Best-of-`REPS` wall time of `f` in seconds; `sink` defeats the
/// optimizer.
fn best_time(sink: &mut f64, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        *sink += f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn env_floor(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let train: Vec<MultiSeries> = (0..40).map(|_| synth_series(&mut rng)).collect();
    let batch: Vec<MultiSeries> = (0..CALLS).map(|_| synth_series(&mut rng)).collect();
    let cfg = MiniRocketConfig {
        num_features: NUM_FEATURES,
        ..MiniRocketConfig::default()
    };
    let rocket = MiniRocket::fit(&cfg, &train).expect("fit on synthetic training set");
    let dim = rocket.num_output_features();
    let weights: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let intercept = rng.gen_range(-0.5..0.5);
    let scorer = FusedScorer::new(&rocket, &weights, intercept);

    let mut sink = 0.0;
    let mut scratch = ConvScratch::new(WINDOW);
    let mut features = Vec::with_capacity(dim);

    let materialized_s = best_time(&mut sink, || {
        batch
            .iter()
            .map(|s| {
                features.clear();
                rocket.transform_into(s, &mut scratch, &mut features);
                dot(&weights, &features) + intercept
            })
            .sum()
    });
    let fused_s = best_time(&mut sink, || {
        batch.iter().map(|s| scorer.score(s, &mut scratch)).sum()
    });

    // One "element" is one conv sample compared against one bias: both
    // paths scan `dim` convolution windows of `WINDOW` samples per
    // series, so the metric is implementation-neutral.
    let elems = (dim * WINDOW * CALLS) as f64;
    let melems = elems / fused_s.min(materialized_s) / 1e6;
    let speedup = materialized_s / fused_s;

    println!(
        "vectorize_check: window={WINDOW} channels={CHANNELS} features={dim} calls={CALLS} \
         (checksum {sink:.6e})"
    );
    println!(
        "materialize+dot: {:>10.1} series/s",
        CALLS as f64 / materialized_s
    );
    println!(
        "fused score:     {:>10.1} series/s  ({speedup:.2}x)",
        CALLS as f64 / fused_s
    );
    println!("ppv throughput:  {melems:>10.1} Melem/s");

    let min_melems = env_floor("P2AUTH_MIN_CONV_MELEMS", 25.0);
    let min_speedup = env_floor("P2AUTH_MIN_FUSED_SPEEDUP", 0.95);
    let mut failed = false;
    if melems < min_melems {
        eprintln!("FAIL: ppv throughput {melems:.1} Melem/s below floor {min_melems:.1}");
        failed = true;
    }
    if speedup < min_speedup {
        eprintln!("FAIL: fused speedup {speedup:.3}x below floor {min_speedup:.3}x");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("ok: throughput >= {min_melems:.1} Melem/s, fused speedup >= {min_speedup:.2}x");
}
