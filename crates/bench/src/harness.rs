//! Shared experiment protocol: cohort datasets, attack traffic and
//! row printing, mirroring the paper's methodology (§V-A):
//! 15 volunteers, five PINs (1628, 3570, 5094, 6938, 7412), repeated
//! entries, third-party data for training, and two attack models.

use p2auth_core::eval::EvalOutcome;
use p2auth_core::{P2Auth, P2AuthConfig, Pin, Recording};
use p2auth_par::{par_map, par_map_indexed};
use p2auth_sim::{HandMode, Population, SessionConfig};

/// The five PINs used in the paper's data collection.
pub fn paper_pins() -> Vec<Pin> {
    ["1628", "3570", "5094", "6938", "7412"]
        .iter()
        .map(|s| Pin::new(s).expect("paper PINs are valid"))
        .collect()
}

/// How many recordings each protocol stage uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Enrollment entries per user ("the user is always asked to enter
    /// up to 9 PINs").
    pub n_enroll: usize,
    /// Third-party recordings in the training pool (the paper settles
    /// on 100; Fig. 14 sweeps 20–300).
    pub n_third_party: usize,
    /// Legitimate test attempts per case.
    pub n_legit: usize,
    /// Attack attempts per attack type.
    pub n_attacks: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            n_enroll: 9,
            n_third_party: 100,
            n_legit: 12,
            n_attacks: 12,
        }
    }
}

/// All the traffic needed to evaluate one `(user, pin)` pair.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// One-handed enrollment entries.
    pub enroll: Vec<Recording>,
    /// Third-party pool (one-handed, same PIN, non-attacker users).
    pub third_party: Vec<Recording>,
    /// One-handed legitimate attempts.
    pub legit_one: Vec<Recording>,
    /// Two-handed attempts, three watch-hand keystrokes.
    pub legit_double3: Vec<Recording>,
    /// Two-handed attempts, two watch-hand keystrokes.
    pub legit_double2: Vec<Recording>,
    /// Random attacks: attackers typing the victim's PIN in their own
    /// natural style (the PIN factor is assumed breached, so the
    /// biometric factor is what is measured).
    pub ra_one: Vec<Recording>,
    /// Emulating attacks, one-handed.
    pub ea_one: Vec<Recording>,
    /// Emulating attacks, double-3.
    pub ea_double3: Vec<Recording>,
    /// Emulating attacks, double-2.
    pub ea_double2: Vec<Recording>,
}

/// The paper sets four attackers; the remaining non-victim users are
/// third parties. Returns `(attackers, third_parties)`.
pub fn identity_split(victim: usize, num_users: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(
        num_users >= 3,
        "need at least a victim, an attacker and a third party"
    );
    let n_attackers = 4.min(num_users - 2);
    let attackers: Vec<usize> = (1..=n_attackers)
        .map(|k| (victim + k) % num_users)
        .collect();
    let third: Vec<usize> = (0..num_users)
        .filter(|&u| u != victim && !attackers.contains(&u))
        .collect();
    (attackers, third)
}

// Nonce ranges keeping the generator streams of the protocol stages
// disjoint.
const NONCE_ENROLL: u64 = 0;
const NONCE_LEGIT: u64 = 10_000;
const NONCE_DOUBLE: u64 = 20_000;
const NONCE_THIRD: u64 = 40_000;
const NONCE_RA: u64 = 50_000;
const NONCE_EA: u64 = 60_000;

/// Builds the complete evaluation dataset for one `(user, pin)`.
pub fn build_dataset(
    pop: &Population,
    user: usize,
    pin: &Pin,
    session: &SessionConfig,
    proto: &ProtocolConfig,
) -> Dataset {
    let (attackers, third_users) = identity_split(user, pop.num_users());
    let enroll: Vec<Recording> = (0..proto.n_enroll)
        .map(|i| {
            pop.record_entry(
                user,
                pin,
                HandMode::OneHanded,
                session,
                NONCE_ENROLL + i as u64,
            )
        })
        .collect();
    let third_party: Vec<Recording> = (0..proto.n_third_party)
        .map(|i| {
            let u = third_users[i % third_users.len()];
            pop.record_entry(u, pin, HandMode::OneHanded, session, NONCE_THIRD + i as u64)
        })
        .collect();
    let legit_one: Vec<Recording> = (0..proto.n_legit)
        .map(|i| {
            pop.record_entry(
                user,
                pin,
                HandMode::OneHanded,
                session,
                NONCE_LEGIT + i as u64,
            )
        })
        .collect();
    let legit_double3: Vec<Recording> = (0..proto.n_legit)
        .map(|i| pop.record_entry_two_handed(user, pin, 3, session, NONCE_DOUBLE + i as u64))
        .collect();
    let legit_double2: Vec<Recording> = (0..proto.n_legit)
        .map(|i| pop.record_entry_two_handed(user, pin, 2, session, NONCE_DOUBLE + 500 + i as u64))
        .collect();
    let ra_one: Vec<Recording> = (0..proto.n_attacks)
        .map(|i| {
            let a = attackers[i % attackers.len()];
            pop.record_entry(a, pin, HandMode::OneHanded, session, NONCE_RA + i as u64)
        })
        .collect();
    let ea_one: Vec<Recording> = (0..proto.n_attacks)
        .map(|i| {
            let a = attackers[i % attackers.len()];
            pop.record_emulating_attack(
                a,
                user,
                pin,
                HandMode::OneHanded,
                session,
                NONCE_EA + i as u64,
            )
        })
        .collect();
    let ea_double3: Vec<Recording> = (0..proto.n_attacks)
        .map(|i| {
            let a = attackers[i % attackers.len()];
            pop.record_emulating_attack_two_handed(
                a,
                user,
                pin,
                3,
                session,
                NONCE_EA + 500 + i as u64,
            )
        })
        .collect();
    let ea_double2: Vec<Recording> = (0..proto.n_attacks)
        .map(|i| {
            let a = attackers[i % attackers.len()];
            pop.record_emulating_attack_two_handed(
                a,
                user,
                pin,
                2,
                session,
                NONCE_EA + 1000 + i as u64,
            )
        })
        .collect();
    Dataset {
        enroll,
        third_party,
        legit_one,
        legit_double3,
        legit_double2,
        ra_one,
        ea_one,
        ea_double3,
        ea_double2,
    }
}

/// Accuracy / TRR summary of one case.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CaseSummary {
    /// Authentication accuracy over legitimate attempts.
    pub accuracy: f64,
    /// True rejection rate against random attacks.
    pub trr_random: f64,
    /// True rejection rate against emulating attacks.
    pub trr_emulating: f64,
}

/// Evaluates one enrolled profile over one case's traffic.
///
/// # Panics
///
/// Panics if any attempt recording is malformed (simulator output never
/// is).
pub fn evaluate_case(
    system: &P2Auth,
    profile: &p2auth_core::UserProfile,
    pin: &Pin,
    legit: &[Recording],
    ra: &[Recording],
    ea: &[Recording],
) -> CaseSummary {
    // The three attempt pools are independent, and `authenticate` is a
    // pure function of `(profile, pin, rec)`, so the decisions can be
    // computed in parallel. Metric counters are updated serially
    // afterwards in the original order, keeping summaries identical to
    // the sequential loop.
    let decide = |rec: &Recording| -> bool {
        system
            .authenticate(profile, pin, rec)
            .expect("valid attempt")
            .accepted
    };
    let mut out = EvalOutcome::default();
    for accepted in par_map(legit, decide) {
        out.legit.record(accepted, true);
    }
    let mut ra_out = EvalOutcome::default();
    for accepted in par_map(ra, decide) {
        ra_out.attacks.record(accepted, false);
    }
    let mut ea_out = EvalOutcome::default();
    for accepted in par_map(ea, decide) {
        ea_out.attacks.record(accepted, false);
    }
    CaseSummary {
        accuracy: out.legit.authentication_accuracy().unwrap_or(0.0),
        trr_random: ra_out.attacks.true_rejection_rate().unwrap_or(1.0),
        trr_emulating: ea_out.attacks.true_rejection_rate().unwrap_or(1.0),
    }
}

/// Runs the standard one-handed case (build dataset → enroll →
/// evaluate legit / random-attack / emulating-attack pools) for every
/// user of the population, in parallel when the `parallel` feature of
/// [`p2auth_par`] is enabled.
///
/// Returns `(user, summary)` pairs in ascending user order regardless
/// of scheduling, so callers can print rows deterministically. Users
/// whose enrollment fails are skipped with a warning (see
/// [`try_enroll`]).
pub fn evaluate_users(
    pop: &Population,
    pin: &Pin,
    session: &SessionConfig,
    proto: &ProtocolConfig,
    config: &P2AuthConfig,
) -> Vec<(usize, CaseSummary)> {
    par_map_indexed(pop.num_users(), |user| {
        let data = build_dataset(pop, user, pin, session, proto);
        let profile = try_enroll(config, pin, &data)?;
        let system = P2Auth::new(config.clone());
        Some((
            user,
            evaluate_case(
                &system,
                &profile,
                pin,
                &data.legit_one,
                &data.ra_one,
                &data.ea_one,
            ),
        ))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Enrolls with the given config and returns the profile, or `None`
/// with a warning when enrollment fails (kept non-fatal so one bad
/// user/PIN does not kill a sweep).
pub fn try_enroll(
    config: &P2AuthConfig,
    pin: &Pin,
    data: &Dataset,
) -> Option<p2auth_core::UserProfile> {
    match P2Auth::new(config.clone()).enroll(pin, &data.enroll, &data.third_party) {
        Ok(p) => Some(p),
        Err(e) => {
            eprintln!("warning: enrollment failed: {e}");
            None
        }
    }
}

/// Extracts the z-normalized full-entry waveform of each recording
/// (the one-handed model input), using the same public preprocessing
/// blocks as the core pipeline. Recordings whose keystrokes cannot all
/// be detected are skipped.
pub fn full_waveforms(
    config: &P2AuthConfig,
    recordings: &[Recording],
) -> Vec<p2auth_rocket::MultiSeries> {
    use p2auth_core::enroll::features::znorm_series;
    use p2auth_core::enroll::segmentation::full_waveform;
    let mut out = Vec::with_capacity(recordings.len());
    for rec in recordings {
        let Ok(pre) = p2auth_core::preprocess::preprocess(config, rec) else {
            continue;
        };
        let seg_win = config.scale_window(config.segment_window, rec.sample_rate);
        let Ok(fw) = full_waveform(
            &pre.filtered,
            &pre.calibrated_times,
            seg_win / 2,
            config.full_waveform_len,
        ) else {
            continue;
        };
        out.push(znorm_series(&fw));
    }
    out
}

/// Parses the optional `--users N` / positional user-count argument of
/// the experiment binaries, defaulting to the paper's 15 volunteers.
pub fn users_arg(default: usize) -> usize {
    std::env::args()
        .skip(1)
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(default)
}

/// Mean of a slice (0.0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Prints a markdown table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints the per-stage latency breakdown table from the observability
/// span histograms accumulated so far (count, p50/p95/p99 and max per
/// `<crate>.<stage>` span). Prints a note instead when the binary was
/// built without the `obs` feature.
pub fn print_stage_latency_table() {
    if !p2auth_obs::is_enabled() {
        println!("(per-stage latency unavailable: built without the `obs` feature)");
        return;
    }
    let snap = p2auth_obs::metrics::snapshot();
    print_header(&["stage", "count", "p50", "p95", "p99", "max"]);
    for (name, h) in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        print_row(&[
            (*name).to_string(),
            format!("{}", h.count),
            p2auth_obs::report::fmt_ns(h.p50),
            p2auth_obs::report::fmt_ns(h.p95),
            p2auth_obs::report::fmt_ns(h.p99),
            p2auth_obs::report::fmt_ns(h.max),
        ]);
    }
}

/// Prints a markdown table header (with separator line).
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_split_disjoint() {
        let (attackers, third) = identity_split(3, 15);
        assert_eq!(attackers.len(), 4);
        assert_eq!(third.len(), 10);
        assert!(!attackers.contains(&3) && !third.contains(&3));
        for a in &attackers {
            assert!(!third.contains(a));
        }
    }

    #[test]
    fn identity_split_small_cohort() {
        let (attackers, third) = identity_split(0, 3);
        assert_eq!(attackers.len(), 1);
        assert_eq!(third.len(), 1);
    }

    #[test]
    fn paper_pins_parse() {
        assert_eq!(paper_pins().len(), 5);
    }

    #[test]
    fn full_waveforms_have_fixed_shape() {
        use p2auth_sim::{HandMode, Population, PopulationConfig, SessionConfig};
        let pop = Population::generate(&PopulationConfig {
            num_users: 2,
            seed: 9,
            ..Default::default()
        });
        let pin = &paper_pins()[0];
        let session = SessionConfig::default();
        let recs: Vec<Recording> = (0..3)
            .map(|i| pop.record_entry(0, pin, HandMode::OneHanded, &session, i))
            .collect();
        let cfg = p2auth_core::P2AuthConfig::fast();
        let ws = full_waveforms(&cfg, &recs);
        assert_eq!(ws.len(), 3);
        for w in &ws {
            assert_eq!(w.len(), cfg.full_waveform_len);
            assert_eq!(w.num_channels(), 4);
        }
    }
}
