//! Experiment harness regenerating the tables and figures of the
//! P²Auth evaluation (§V).
//!
//! Each figure/table has a binary under `src/bin` (run with
//! `cargo run -p p2auth-bench --release --bin figXX`); shared dataset
//! builders and row printers live in [`harness`], and [`alloc`]
//! provides the counting global allocator used by the Table I
//! memory-overhead measurements.

// `deny` rather than `forbid`: the counting allocator must implement
// the unsafe `GlobalAlloc` trait and opts out locally.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod harness;
