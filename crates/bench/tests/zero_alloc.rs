//! Steady-state allocation audit of the single-auth hot path.
//!
//! The fused-scorer refactor promises that, once the scratch buffers
//! have grown to the working shape, repeated scoring performs **zero**
//! heap allocation in the rocket/ml layers — both through
//! [`FusedScorer::score`] and through the materialized
//! `transform_into` + dot route. This test installs the counting
//! global allocator and pins that promise: any `Vec` sneaking back
//! into the per-call path (the pre-refactor `transform_one` cost)
//! fails the assertion.
//!
//! `harness = false`: libtest runs its bookkeeping (channels, progress
//! output) concurrently with the test body, and those allocations land
//! in the same process-wide counter — a bare `main` keeps the measured
//! window quiet. CLI arguments (e.g. libtest's `--nocapture`) are
//! accepted and ignored.

use p2auth_bench::alloc::CountingAllocator;
use p2auth_ml::linalg::dot;
use p2auth_obs::MetricsLocal;
use p2auth_rocket::{ConvScratch, FusedScorer, MiniRocket, MiniRocketConfig, MultiSeries};
use p2auth_server::ShardNameTable;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// Deterministic PPG-like series without pulling in an RNG (keeps the
/// measured region free of rand's internals).
fn synth_series(len: usize, channels: usize, seed: u64) -> MultiSeries {
    let tau = std::f64::consts::TAU;
    let chans: Vec<Vec<f64>> = (0..channels)
        .map(|c| {
            let phase =
                (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64 / 1e6 + c as f64 * 0.7;
            (0..len)
                .map(|i| {
                    let t = i as f64 / 100.0;
                    (tau * 1.2 * t + phase).sin() + 0.25 * (tau * 7.0 * t + phase).sin()
                })
                .collect()
        })
        .collect();
    MultiSeries::new(chans).expect("well-formed series")
}

fn main() {
    const WINDOW: usize = 90;
    const CHANNELS: usize = 2;
    const CALLS: usize = 32;

    let train: Vec<MultiSeries> = (0..24).map(|i| synth_series(WINDOW, CHANNELS, i)).collect();
    let cfg = MiniRocketConfig {
        num_features: 336,
        ..MiniRocketConfig::default()
    };
    let rocket = MiniRocket::fit(&cfg, &train).expect("fit");
    let dim = rocket.num_output_features();
    let weights: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
    let scorer = FusedScorer::new(&rocket, &weights, 0.125);
    let attempts: Vec<MultiSeries> = (0..4)
        .map(|i| synth_series(WINDOW, CHANNELS, 100 + i))
        .collect();

    let mut scratch = ConvScratch::new(WINDOW);
    let mut features: Vec<f64> = Vec::with_capacity(dim);
    let mut sink = 0.0_f64;

    // Warmup: grows the scratch to the working shape, initializes
    // every obs metric site (OnceLock registration allocates once) and
    // warms the stdout machinery used by the progress prints below.
    for a in &attempts {
        sink += scorer.score(a, &mut scratch);
        features.clear();
        rocket.transform_into(a, &mut scratch, &mut features);
        sink += dot(&weights, &features);
    }
    println!("zero-alloc audit: warmup complete ({dim} features)");

    // Fused path: transform-and-score with no feature vector.
    let before = ALLOC.total_allocated();
    for i in 0..CALLS {
        sink += scorer.score(&attempts[i % attempts.len()], &mut scratch);
    }
    let fused_delta = ALLOC.total_allocated() - before;
    println!("fused path: {fused_delta} bytes over {CALLS} calls");
    assert_eq!(
        fused_delta, 0,
        "fused scoring allocated {fused_delta} bytes over {CALLS} steady-state calls"
    );

    // Materialized path: transform_into + dot into reused buffers.
    let before = ALLOC.total_allocated();
    for i in 0..CALLS {
        features.clear();
        rocket.transform_into(&attempts[i % attempts.len()], &mut scratch, &mut features);
        sink += dot(&weights, &features);
    }
    let mat_delta = ALLOC.total_allocated() - before;
    println!("materialized path: {mat_delta} bytes over {CALLS} calls");
    assert_eq!(
        mat_delta, 0,
        "materialized transform+dot allocated {mat_delta} bytes over {CALLS} calls"
    );

    // Scheduler metric-name path: the per-shard names used to be
    // `format!`ed per session; the precomputed ShardNameTable plus a
    // warmed MetricsLocal (BTreeMap keys allocate on first touch only)
    // must make the steady-state recording loop allocation-free.
    const SHARDS: usize = 16;
    let names = ShardNameTable::new(SHARDS);
    let mut local = MetricsLocal::new();
    for shard in 0..SHARDS {
        let n = names.get(shard);
        local.incr(&n.sheds);
        local.incr(&n.accepts);
        local.incr(&n.sessions);
        local.record(&n.latency_ns, 1);
    }
    let before = ALLOC.total_allocated();
    for i in 0..CALLS * SHARDS {
        let n = names.get(i);
        local.incr(&n.sessions);
        local.incr(&n.accepts);
        local.record(&n.latency_ns, (i as u64 + 1) * 1000);
    }
    let shard_delta = ALLOC.total_allocated() - before;
    println!(
        "shard metric names: {shard_delta} bytes over {} calls",
        CALLS * SHARDS
    );
    assert_eq!(
        shard_delta, 0,
        "per-shard metric recording allocated {shard_delta} bytes steady-state"
    );
    sink += local.counter(&names.get(0).sessions) as f64;

    assert!(sink.is_finite(), "checksum must be finite: {sink}");
    println!("zero-alloc audit: PASS");
}
