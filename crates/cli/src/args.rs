//! Minimal flag parser (the approved dependency set has no argument
//! parser, and a demo CLI does not justify one).
//!
//! Grammar: `p2auth <command> [arg] [--flag value]... [--switch]...`.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: the subcommand plus `--key value` / `--switch`
/// options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// The subcommand's positional argument (second positional), e.g.
    /// the log path for `replay <log>`.
    pub arg: Option<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Error parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` that expected a value hit the end of the arguments.
    MissingValue {
        /// The flag name.
        flag: String,
    },
    /// A positional argument appeared after the subcommand.
    UnexpectedPositional {
        /// The offending token.
        token: String,
    },
    /// An option's value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue { flag } => write!(f, "--{flag} expects a value"),
            ArgError::UnexpectedPositional { token } => {
                write!(f, "unexpected argument {token:?}")
            }
            ArgError::BadValue { flag, detail } => write!(f, "bad value for --{flag}: {detail}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that never take a value.
const SWITCHES: &[&str] = &[
    "boost",
    "two-handed",
    "no-pin",
    "stream",
    "help",
    "structure-only",
    "json",
    "verify",
    "summary",
    "inspect",
    "from-shard",
];

impl ParsedArgs {
    /// Parses tokens (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a flag missing its value or a stray
    /// positional argument.
    pub fn parse<I, S>(tokens: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ParsedArgs::default();
        let mut iter = tokens.into_iter().map(Into::into).peekable();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                if SWITCHES.contains(&flag) {
                    out.switches.push(flag.to_string());
                } else {
                    let value = iter.next().ok_or_else(|| ArgError::MissingValue {
                        flag: flag.to_string(),
                    })?;
                    out.options.insert(flag.to_string(), value);
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else if out.arg.is_none() {
                out.arg = Some(tok);
            } else {
                return Err(ArgError::UnexpectedPositional { token: tok });
            }
        }
        Ok(out)
    }

    /// String option value.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// Parsed option value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparseable.
    pub fn get_parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.options.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e: T::Err| ArgError::BadValue {
                flag: flag.to_string(),
                detail: e.to_string(),
            }),
        }
    }

    /// Whether a switch was present.
    pub fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_switches() {
        let a = ParsedArgs::parse(["enroll", "--user", "3", "--pin", "1628", "--boost"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("enroll"));
        assert_eq!(a.get("user"), Some("3"));
        assert_eq!(a.get("pin"), Some("1628"));
        assert!(a.has("boost"));
        assert!(!a.has("no-pin"));
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let a = ParsedArgs::parse(["verify", "--users", "12"]).unwrap();
        assert_eq!(a.get_parsed("users", 15_usize).unwrap(), 12);
        assert_eq!(a.get_parsed("seed", 7_u64).unwrap(), 7);
        let b = ParsedArgs::parse(["verify", "--users", "many"]).unwrap();
        assert!(matches!(
            b.get_parsed("users", 15_usize),
            Err(ArgError::BadValue { .. })
        ));
    }

    #[test]
    fn missing_value_detected() {
        assert!(matches!(
            ParsedArgs::parse(["enroll", "--user"]),
            Err(ArgError::MissingValue { .. })
        ));
    }

    #[test]
    fn second_positional_is_the_command_argument() {
        let a = ParsedArgs::parse(["replay", "session.json", "--verify"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("replay"));
        assert_eq!(a.arg.as_deref(), Some("session.json"));
        assert!(a.has("verify"));
    }

    #[test]
    fn third_positional_rejected() {
        assert!(matches!(
            ParsedArgs::parse(["replay", "session.json", "extra"]),
            Err(ArgError::UnexpectedPositional { .. })
        ));
    }

    #[test]
    fn empty_is_ok() {
        let a = ParsedArgs::parse(Vec::<String>::new()).unwrap();
        assert!(a.command.is_none());
    }
}
