//! The CLI commands: each returns its report as a `String` so the
//! binary stays a thin shell and the logic is testable.

use crate::args::{ArgError, ParsedArgs};
use crate::replay::{self, ChaosMode, RecordSpec, ReplayError};
use p2auth_core::preprocess::wear::{detect_wear, WearConfig};
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, PinPolicy, UserProfile};
use p2auth_device::clock::VirtualClock;
use p2auth_device::{
    decide_session, transmit_reliable, FaultConfig, FaultyLink, LinkConfig, ReliableConfig,
    SessionOutcome, WearableDevice,
};
use p2auth_obs::events::Fnv64;
use p2auth_obs::{persist, ShardedEventStore, SloConfig, SloTracker};
use p2auth_server::{
    build_fleet, run_fleet_obs, FleetConfig, ServeObs, ServeRegion, ServeReport, ServerConfig,
    SessionVerdict,
};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;

/// Error running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments.
    Args(ArgError),
    /// Bad PIN.
    Pin(p2auth_core::PinError),
    /// Pipeline failure.
    Auth(p2auth_core::AuthError),
    /// Profile file I/O or (de)serialization failure.
    Io(String),
    /// Recording or replaying an event-sourced session failed (this is
    /// the variant a diverging `replay --verify` exits through).
    Replay(ReplayError),
    /// Unknown subcommand.
    UnknownCommand(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "argument error: {e}"),
            CliError::Pin(e) => write!(f, "PIN error: {e}"),
            CliError::Auth(e) => write!(f, "pipeline error: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Replay(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}; try `p2auth help`"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<p2auth_core::PinError> for CliError {
    fn from(e: p2auth_core::PinError) -> Self {
        CliError::Pin(e)
    }
}

impl From<p2auth_core::AuthError> for CliError {
    fn from(e: p2auth_core::AuthError) -> Self {
        CliError::Auth(e)
    }
}

impl From<ReplayError> for CliError {
    fn from(e: ReplayError) -> Self {
        CliError::Replay(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
p2auth — PIN + keystroke-induced PPG two-factor authentication (ICDCS'23 reproduction)

USAGE:
    p2auth <command> [options]

COMMANDS:
    enroll    Enroll a simulated user and write the profile to a file
                --user N (0)  --pin DDDD (1628)  --out FILE (profile.json)
                --users N (8) --seed S (42)      [--boost] [--no-pin]
    verify    Authenticate an attempt against a stored profile
                --profile FILE (profile.json)  --pin DDDD (1628)
                --user N (0) | --attacker N --victim N (emulating attack)
                --nonce K (0) [--two-handed] [--no-pin]
    wear      Check watch-wear detection on a simulated signal
                --user N (0)  --seed S (42)
    fault     Stream sessions over a faulty link with NACK recovery
                --loss P (0.02)   --corrupt P (0.005)  --fault-seed S (1)
                --sessions N (3)  --user N (0)  --pin DDDD (1628)
                (uses the reduced feature budget for speed)
    trace     Trace one simulated enroll + authentication session:
              span tree, metrics report and flight-recorder tail
                --loss P (0.02)  --fault-seed S (1)  --user N (0)
                --pin DDDD (1628)  [--structure-only] [--json]
                (requires the default `obs` feature)
    quality   Assess per-keystroke signal quality under an injected
              sensor fault and run one supervised session
                --fault KIND (saturation: motion|saturation|detach|
                dropout|wander)  --intensity I (0.6)  --fault-seed S (1)
                --user N (0)  --pin DDDD (1628)  [--json]
    record    Record one supervised chaos session as an event log
              (schema p2auth.events.v1)
                --out FILE (session.events.json)
                --chaos MODE (none|sensor|link|both; default
                $P2AUTH_CHAOS_MODE or both)
                --chaos-seed S ($P2AUTH_CHAOS_SEED or 1)
                --users N (4)  --seed S (811)  --user N (0)
                --pin DDDD (1628)  --nonce K (0)
                --loss P (0.05)  --corrupt P (0.0125)
                [--fault KIND --intensity I] (named sensor preset)
    replay    Inspect or deterministically re-execute a recorded log
                p2auth replay <log> [--verify|--json|--summary]
                --verify re-runs the session from the log's embedded
                spec and diffs every event; a mismatch reports the
                first divergent event and exits nonzero. --summary
                (the default) and --json never re-execute.
              With --from-shard, <log> is a directory written by
              `fleet --persist`: lists every persisted session per
              shard; --request N selects one session (then --json
              dumps its canonical log); --verify checks every
              record's CRC framing, canonical re-encoding and digest
              against the recorded manifest and exits nonzero on any
              divergence.
    fleet     Serve a simulated device fleet through the sharded
              profile store and supervised worker pool; reports
              accept/abort mix, shed counts and latency quantiles
                --devices N (6)  --sessions N (3)  --workers N (4)
                --seed S (814)   --chaos MODE (on|off; default on)
                --p99-ms N (500, the SLO objective)
                --persist DIR (append session event logs to sharded
                segment files + manifest, then verify the read-back
                against the in-memory logs)
                [--inspect] (append the fleet introspection view)
                [--json]
              `p2auth fleet top` renders only the introspection view:
              per-shard sessions/sheds/latency, per-worker load, the
              SQI-rejection mix, SLO burn rate and top-5 slow sessions
              `p2auth fleet recover --persist DIR` replays a persisted
              shard store after a crash: completed-session accounting,
              its FNV-64 digest, and any in-flight (interrupted)
              sessions the intent journal surfaced
    help      Show this message

All data comes from the seeded simulator; the same seed always produces
the same cohort, so profiles and attempts are reproducible.";

fn population(args: &ParsedArgs) -> Result<(Population, SessionConfig), CliError> {
    let users = args.get_parsed("users", 8_usize)?;
    let seed = args.get_parsed("seed", 42_u64)?;
    let pop = Population::generate(&PopulationConfig {
        num_users: users,
        seed,
        ..Default::default()
    });
    Ok((pop, SessionConfig::default()))
}

fn pin_arg(args: &ParsedArgs) -> Result<Pin, CliError> {
    Ok(Pin::new(args.get("pin").unwrap_or("1628"))?)
}

fn system(args: &ParsedArgs) -> P2Auth {
    let mut cfg = P2AuthConfig::default();
    if args.has("boost") {
        cfg.privacy_boost = true;
    }
    if args.has("no-pin") {
        cfg.pin_policy = PinPolicy::NoPinAllowed;
    }
    P2Auth::new(cfg)
}

/// `p2auth enroll`.
pub fn enroll(args: &ParsedArgs) -> Result<String, CliError> {
    let (pop, session) = population(args)?;
    let user = args.get_parsed("user", 0_usize)?;
    let pin = pin_arg(args)?;
    let out = args.get("out").unwrap_or("profile.json").to_string();
    let sys = system(args);

    let enroll_recs: Vec<_> = (0..9)
        .map(|i| pop.record_entry(user, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..60)
        .map(|i| {
            let other = (user + 1 + (i as usize % (pop.num_users() - 1))) % pop.num_users();
            pop.record_entry(other, &pin, HandMode::OneHanded, &session, 5000 + i as u64)
        })
        .collect();
    let profile = if args.has("no-pin") {
        sys.enroll_no_pin(&enroll_recs, &third)?
    } else {
        sys.enroll(&pin, &enroll_recs, &third)?
    };
    write_profile(&profile, Path::new(&out))?;
    Ok(format!(
        "enrolled user {user} (PIN {pin}{}) -> {out}\nmodels: full={} boost={} per-key digits {:?}",
        if args.has("no-pin") {
            ", no-PIN mode"
        } else {
            ""
        },
        profile.has_full_model(),
        profile.has_boost_model(),
        profile.enrolled_keys(),
    ))
}

/// `p2auth verify`.
pub fn verify(args: &ParsedArgs) -> Result<String, CliError> {
    let (pop, session) = population(args)?;
    let pin = pin_arg(args)?;
    let path = args.get("profile").unwrap_or("profile.json").to_string();
    let profile = read_profile(Path::new(&path))?;
    let sys = system(args);
    let nonce = args.get_parsed("nonce", 0_u64)?;
    let mode = if args.has("two-handed") {
        HandMode::TwoHanded
    } else {
        HandMode::OneHanded
    };

    let (attempt, who) = match (args.get("attacker"), args.get("victim")) {
        (Some(_), Some(_)) => {
            let attacker = args.get_parsed("attacker", 1_usize)?;
            let victim = args.get_parsed("victim", 0_usize)?;
            (
                pop.record_emulating_attack(attacker, victim, &pin, mode, &session, nonce),
                format!("emulating attack: user {attacker} imitating user {victim}"),
            )
        }
        _ => {
            let user = args.get_parsed("user", 0_usize)?;
            (
                pop.record_entry(user, &pin, mode, &session, 9000 + nonce),
                format!("legitimate attempt by user {user}"),
            )
        }
    };
    let decision = if args.has("no-pin") {
        sys.authenticate_no_pin(&profile, &attempt)?
    } else {
        sys.authenticate(&profile, &pin, &attempt)?
    };
    Ok(format!(
        "{who}\ncase: {:?}\nresult: {} (score {:+.3}{})",
        decision.case,
        if decision.accepted {
            "ACCEPTED"
        } else {
            "REJECTED"
        },
        decision.score,
        decision
            .reason
            .map(|r| format!(", reason {r:?}"))
            .unwrap_or_default(),
    ))
}

/// `p2auth wear`.
pub fn wear(args: &ParsedArgs) -> Result<String, CliError> {
    let (pop, session) = population(args)?;
    let user = args.get_parsed("user", 0_usize)?;
    // Wear detection monitors idle signal between authentications
    // (paper §VI), not PIN entries.
    let idle = pop.record_idle(user, 8.0, &session, 0);
    let status = detect_wear(&idle[0], session.sample_rate, &WearConfig::default());
    let mut out = format!(
        "worn: {} (periodicity {:.2})",
        status.worn, status.periodicity
    );
    if let Some(hr) = status.heart_rate_hz {
        out.push_str(&format!(", estimated heart rate {:.0} bpm", hr * 60.0));
    }
    Ok(out)
}

/// `p2auth fault`: end-to-end sessions over a lossy, corrupting link
/// with the retransmission layer and coverage-gated decisions.
pub fn fault(args: &ParsedArgs) -> Result<String, CliError> {
    let (pop, session) = population(args)?;
    let pin = pin_arg(args)?;
    let loss = args.get_parsed("loss", 0.02_f64)?;
    let corrupt = args.get_parsed("corrupt", 0.005_f64)?;
    let fault_seed = args.get_parsed("fault-seed", 1_u64)?;
    let sessions = args.get_parsed("sessions", 3_usize)?;
    let user = args.get_parsed("user", 0_usize)?;

    let sys = P2Auth::new(P2AuthConfig::fast());
    let enroll_recs: Vec<_> = (0..6)
        .map(|i| pop.record_entry(user, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            let other = (user + 1 + (i as usize % (pop.num_users() - 1))) % pop.num_users();
            pop.record_entry(other, &pin, HandMode::OneHanded, &session, 5000 + i as u64)
        })
        .collect();
    let profile = sys.enroll(&pin, &enroll_recs, &third)?;

    let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
    let faults = FaultConfig {
        drop_rate: loss,
        corrupt_rate: corrupt,
        ..FaultConfig::default()
    };
    let mut out =
        format!("link faults: loss {loss:.3}, corruption {corrupt:.4}, seed {fault_seed}\n");
    let mut accepted = 0_usize;
    for s in 0..sessions {
        let rec = pop.record_entry(user, &pin, HandMode::OneHanded, &session, 7000 + s as u64);
        let mut data = FaultyLink::new(
            LinkConfig::default(),
            FaultConfig {
                seed: fault_seed + 2 * s as u64,
                ..faults
            },
        );
        let mut keys = FaultyLink::new(
            LinkConfig {
                seed: 0x4b,
                ..LinkConfig::default()
            },
            FaultConfig {
                seed: fault_seed + 2 * s as u64 + 1,
                ..faults
            },
        );
        let (result, stats) = transmit_reliable(
            &rec,
            &device,
            &mut data,
            &mut keys,
            &ReliableConfig::default(),
        );
        match result {
            Ok((rebuilt, quality)) => {
                let outcome = decide_session(&sys, &profile, Some(&pin), &rebuilt, quality);
                if outcome.accepted() {
                    accepted += 1;
                }
                let label = match &outcome {
                    SessionOutcome::Decision(d) => {
                        if d.accepted {
                            "ACCEPTED".to_string()
                        } else {
                            "REJECTED".to_string()
                        }
                    }
                    SessionOutcome::Degraded {
                        decision,
                        coverage,
                        gap_blocks,
                    } => {
                        let why = format!("coverage {coverage:.3}, {gap_blocks} gap blocks");
                        if decision.accepted {
                            format!("ACCEPTED (degraded, PIN only: {why})")
                        } else {
                            format!("REJECTED (degraded: {why})")
                        }
                    }
                    SessionOutcome::Abort {
                        reason, gap_blocks, ..
                    } => format!("ABORTED ({reason}, {gap_blocks} gap blocks)"),
                };
                out.push_str(&format!("session {s}: {label}, link {quality}, {stats}\n"));
            }
            Err(e) => {
                out.push_str(&format!("session {s}: TRANSFER FAILED ({e}), {stats}\n"));
            }
        }
    }
    out.push_str(&format!(
        "accepted {accepted}/{sessions} legitimate sessions"
    ));
    Ok(out)
}

/// `p2auth trace`: one simulated enroll + authentication session with
/// span capture on, reported as a span tree, the metrics registry and
/// the flight-recorder tail. `--structure-only` prints just the sorted
/// span paths (the golden-file format); `--json` emits the machine
/// report (schema `p2auth.obs.v1`).
pub fn trace(args: &ParsedArgs) -> Result<String, CliError> {
    if !p2auth_obs::is_enabled() {
        return Ok(
            "observability is compiled out (built with --no-default-features); \
             rebuild with the default `obs` feature to trace"
                .to_string(),
        );
    }
    let (pop, session) = population(args)?;
    let pin = pin_arg(args)?;
    let user = args.get_parsed("user", 0_usize)?;
    let loss = args.get_parsed("loss", 0.02_f64)?;
    let fault_seed = args.get_parsed("fault-seed", 1_u64)?;

    p2auth_obs::reset();
    p2auth_obs::span::enable_capture();

    // Enrollment (reduced feature budget: the trace is about structure
    // and per-stage cost, not accuracy).
    let sys = P2Auth::new(P2AuthConfig::fast());
    let enroll_recs: Vec<_> = (0..6)
        .map(|i| pop.record_entry(user, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            let other = (user + 1 + (i as usize % (pop.num_users() - 1))) % pop.num_users();
            pop.record_entry(other, &pin, HandMode::OneHanded, &session, 5000 + i as u64)
        })
        .collect();
    let profile = sys.enroll(&pin, &enroll_recs, &third)?;

    // One authentication streamed over a lossy link with NACK recovery.
    // The loss realization depends on the RNG backend, so scan fault
    // seeds until the transfer recovers to full-path coverage; failed
    // attempts only produce a subset of the successful span paths, so
    // the traced structure stays deterministic.
    let rec = pop.record_entry(user, &pin, HandMode::OneHanded, &session, 7000);
    let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
    let mut recovered = None;
    for s in 0..40_u64 {
        let faults = FaultConfig {
            drop_rate: loss,
            corrupt_rate: loss / 4.0,
            seed: fault_seed + 2 * s,
            ..FaultConfig::default()
        };
        let mut data = FaultyLink::new(LinkConfig::default(), faults);
        let mut keys = FaultyLink::new(
            LinkConfig {
                seed: 0x4b,
                ..LinkConfig::default()
            },
            FaultConfig {
                seed: fault_seed + 2 * s + 1,
                ..faults
            },
        );
        let (result, stats) = transmit_reliable(
            &rec,
            &device,
            &mut data,
            &mut keys,
            &ReliableConfig::default(),
        );
        match result {
            Ok((rebuilt, quality)) if quality.coverage >= sys.config().min_ppg_coverage => {
                recovered = Some((rebuilt, quality, stats));
                break;
            }
            _ => {}
        }
    }
    let Some((rebuilt, quality, stats)) = recovered else {
        return Err(CliError::Io(format!(
            "no transfer realization recovered at loss {loss}"
        )));
    };
    let outcome = decide_session(&sys, &profile, Some(&pin), &rebuilt, quality);

    let records = p2auth_obs::span::take_capture();
    if args.has("structure-only") {
        return Ok(p2auth_obs::report::span_paths(&records).join("\n"));
    }
    let report = p2auth_obs::report::collect();
    if args.has("json") {
        return Ok(p2auth_obs::report::render_json(&report));
    }

    let mut out = format!(
        "traced enroll + 1 auth session (user {user}, loss {loss:.3})\n\
         link {quality}\ntransfer {stats}\noutcome: {}\n\nspan tree:\n{}\n{}",
        match &outcome {
            SessionOutcome::Decision(d) =>
                if d.accepted {
                    "ACCEPTED".to_string()
                } else {
                    format!("REJECTED ({:?})", d.reason)
                },
            SessionOutcome::Degraded {
                coverage,
                gap_blocks,
                ..
            } => format!("DEGRADED (coverage {coverage:.3}, {gap_blocks} gap blocks)"),
            SessionOutcome::Abort { reason, .. } => format!("ABORTED ({reason})"),
        },
        p2auth_obs::report::span_tree(&records),
        p2auth_obs::report::render_text(&report),
    );
    let tail = p2auth_obs::recorder::render_dump(&report.events, 12);
    if !tail.is_empty() {
        out.push_str(&format!("flight recorder tail:\n{tail}"));
    }
    Ok(out)
}

/// `p2auth quality`: inject a sensor fault into one simulated PIN
/// entry, score every keystroke's SQI against the enrolled profile,
/// and run the attempt through a supervised session (SQI gating +
/// bounded re-prompts). `--json` emits a machine-readable report.
pub fn quality(args: &ParsedArgs) -> Result<String, CliError> {
    use p2auth_device::{run_supervised, SupervisorConfig};
    use p2auth_sim::{inject_sensor_faults, SensorFaultConfig, SensorFaultKind};

    let (pop, session) = population(args)?;
    let pin = pin_arg(args)?;
    let user = args.get_parsed("user", 0_usize)?;
    let kind_name = args.get("fault").unwrap_or("saturation");
    let kind = SensorFaultKind::parse(kind_name).ok_or_else(|| {
        CliError::Io(format!(
            "unknown fault kind {kind_name:?}; expected motion|saturation|detach|dropout|wander"
        ))
    })?;
    let intensity = args.get_parsed("intensity", 0.6_f64)?;
    let fault_seed = args.get_parsed("fault-seed", 1_u64)?;

    let sys = P2Auth::new(P2AuthConfig::fast());
    let enroll_recs: Vec<_> = (0..6)
        .map(|i| pop.record_entry(user, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            let other = (user + 1 + (i as usize % (pop.num_users() - 1))) % pop.num_users();
            pop.record_entry(other, &pin, HandMode::OneHanded, &session, 5000 + i as u64)
        })
        .collect();
    let profile = sys.enroll(&pin, &enroll_recs, &third)?;

    let faults = SensorFaultConfig::preset(kind, intensity, fault_seed);
    let attempt = pop.record_entry(user, &pin, HandMode::OneHanded, &session, 8000);
    let (faulted, stats) = inject_sensor_faults(&attempt, &faults, 0);
    let assessment = sys.assess_quality(&profile, &faulted)?;

    // Perfect link: this command isolates sensor faults.
    let link = p2auth_device::LinkQuality {
        coverage: 1.0,
        expected_blocks: 1,
        received_blocks: 1,
        gap_blocks: 0,
    };
    let outcome = run_supervised(
        &sys,
        &profile,
        Some(&pin),
        &SupervisorConfig::default(),
        |attempt_no| {
            let rec = pop.record_entry(
                user,
                &pin,
                HandMode::OneHanded,
                &session,
                8000 + u64::from(attempt_no),
            );
            let (f, _) = inject_sensor_faults(&rec, &faults, u64::from(attempt_no));
            Some((f, link))
        },
    );

    if args.has("json") {
        let keystrokes = assessment
            .per_keystroke
            .iter()
            .map(|k| {
                let (sqi, flags) = match &k.quality {
                    Some(q) => (format!("{:.4}", q.sqi), format!("\"{}\"", q.flags)),
                    None => ("null".to_string(), "null".to_string()),
                };
                format!(
                    "    {{ \"index\": {}, \"digit\": {}, \"detected\": {}, \
                     \"sqi\": {sqi}, \"flags\": {flags} }}",
                    k.index, k.digit, k.detected
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        return Ok(format!(
            "{{\n  \"fault\": \"{kind}\",\n  \"intensity\": {intensity},\n  \
             \"fault_seed\": {fault_seed},\n  \"detected\": {},\n  \"usable\": {},\n  \
             \"mean_sqi\": {:.4},\n  \"keystrokes\": [\n{keystrokes}\n  ],\n  \
             \"session\": {{ \"state\": \"{}\", \"attempts\": {}, \"accepted\": {} }}\n}}",
            assessment.detected,
            assessment.usable,
            assessment.mean_sqi,
            outcome.state,
            outcome.attempts,
            outcome.accepted(),
        ));
    }

    let mut out = format!(
        "sensor fault: {kind} at intensity {intensity:.2} (seed {fault_seed})\n\
         injected: {} motion bursts, {} saturation episodes, {} detach episodes, \
         {} dropout runs\n\n  key  digit  detected  sqi     flags\n",
        stats.motion_bursts, stats.saturation_episodes, stats.detach_episodes, stats.dropout_runs,
    );
    for k in &assessment.per_keystroke {
        let (sqi, flags) = match &k.quality {
            Some(q) => (format!("{:.3}", q.sqi), q.flags.to_string()),
            None => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "  {:<4} {:<6} {:<9} {:<7} {}\n",
            k.index, k.digit, k.detected, sqi, flags
        ));
    }
    out.push_str(&format!(
        "\ndetected {} / usable {} keystrokes, mean SQI {:.3}\n\
         supervised session: {} after {} attempt(s){}",
        assessment.detected,
        assessment.usable,
        assessment.mean_sqi,
        outcome.state.as_str().to_uppercase(),
        outcome.attempts,
        outcome
            .outcome
            .as_ref()
            .and_then(|o| o.decision())
            .and_then(|d| d.reason)
            .map(|r| format!(", reason {r:?}"))
            .unwrap_or_default(),
    ));
    Ok(out)
}

/// `p2auth record`: run one supervised chaos session (the
/// `session_chaos` CI flow: seeded sensor faults + seeded link faults,
/// SQI gating, bounded re-prompts) with the event recorder tapped in,
/// and write the `p2auth.events.v1` log to a file. The log embeds the
/// full record spec, so `p2auth replay --verify` needs nothing else.
pub fn record(args: &ParsedArgs) -> Result<String, CliError> {
    use p2auth_sim::SensorFaultKind;

    // CLI flags win; the chaos-matrix environment variables supply the
    // defaults so the CI lane can drive this without repeating them.
    let chaos_env = std::env::var("P2AUTH_CHAOS_MODE").ok();
    let chaos_name = args
        .get("chaos")
        .map(str::to_string)
        .or(chaos_env)
        .unwrap_or_else(|| "both".to_string());
    let chaos = ChaosMode::parse(&chaos_name).ok_or_else(|| {
        CliError::Io(format!(
            "unknown chaos mode {chaos_name:?}; expected none|sensor|link|both"
        ))
    })?;
    let chaos_seed_env = std::env::var("P2AUTH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_u64);
    let sensor_preset = match args.get("fault") {
        None => None,
        Some(name) => {
            let kind = SensorFaultKind::parse(name).ok_or_else(|| {
                CliError::Io(format!(
                    "unknown fault kind {name:?}; expected motion|saturation|detach|dropout|wander"
                ))
            })?;
            Some((kind, args.get_parsed("intensity", 0.6_f64)?))
        }
    };
    let spec = RecordSpec {
        users: args.get_parsed("users", 4_usize)?,
        population_seed: args.get_parsed("seed", 811_u64)?,
        user: args.get_parsed("user", 0_usize)?,
        pin: args.get("pin").unwrap_or("1628").to_string(),
        nonce: args.get_parsed("nonce", 0_u64)?,
        chaos,
        chaos_seed: args.get_parsed("chaos-seed", chaos_seed_env)?,
        loss: args.get_parsed("loss", 0.05_f64)?,
        corrupt: args.get_parsed("corrupt", 0.0125_f64)?,
        sensor_preset,
    };
    let out = args.get("out").unwrap_or("session.events.json").to_string();
    let (log, outcome) = replay::record_session(&spec)?;
    std::fs::write(&out, log.encode()).map_err(|e| CliError::Io(format!("{out}: {e}")))?;
    Ok(format!(
        "recorded session (chaos {chaos}, seed {}): {} after {} attempt(s), \
         {} events -> {out}",
        spec.chaos_seed,
        outcome.state.as_str(),
        outcome.attempts,
        log.len(),
    ))
}

/// `p2auth replay <log>`: summarize (default / `--summary`), dump the
/// canonical encoding (`--json`), or re-execute and diff (`--verify`).
/// With `--from-shard` the argument is a shard **directory** written by
/// `fleet --persist`: list its sessions, pick one with `--request N`,
/// or `--verify` every record against `manifest.json`.
pub fn replay_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args
        .arg
        .as_deref()
        .ok_or_else(|| CliError::Io("replay requires a log path argument".to_string()))?;
    if args.has("from-shard") {
        return replay_from_shard(path, args);
    }
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let log = p2auth_obs::EventLog::decode(&text).map_err(ReplayError::Log)?;
    if args.has("verify") {
        let outcome = replay::verify_replay(&log)?;
        return Ok(format!(
            "replay verified: {} events bit-identical; session {} after {} attempt(s)",
            log.len(),
            outcome.state.as_str(),
            outcome.attempts,
        ));
    }
    if args.has("json") {
        return Ok(log.encode());
    }
    Ok(replay::summarize(&log))
}

/// One session pulled back out of a shard directory.
struct ShardSession {
    shard_idx: u32,
    payload_len: usize,
    request_id: u64,
    log: p2auth_obs::EventLog,
}

/// Decodes every record of every readable shard in `dir`. Returns the
/// sessions plus a list of per-shard warnings (torn tails, unreadable
/// shards) so the default listing can surface them without failing.
fn read_shard_sessions(dir: &str) -> Result<(Vec<ShardSession>, Vec<String>), CliError> {
    let mut sessions = Vec::new();
    let mut warnings = Vec::new();
    for (path, read) in persist::read_store_dir(Path::new(dir))
        .map_err(|e| CliError::Io(format!("reading {dir}: {e}")))?
    {
        let read = match read {
            Ok(read) => read,
            Err(e) => {
                warnings.push(format!("{}: {e}", path.display()));
                continue;
            }
        };
        if read.torn_bytes > 0 {
            warnings.push(format!(
                "{}: dropped torn tail ({} bytes) — crash before flush",
                path.display(),
                read.torn_bytes
            ));
        }
        for payload in &read.records {
            let text = std::str::from_utf8(payload)
                .map_err(|e| CliError::Io(format!("{}: non-utf8 record: {e}", path.display())))?;
            let log = p2auth_obs::EventLog::decode(text).map_err(ReplayError::Log)?;
            let request_id = log
                .meta_get("request_id")
                .and_then(|v| v.parse().ok())
                .unwrap_or(u64::MAX);
            sessions.push(ShardSession {
                shard_idx: read.shard_idx,
                payload_len: payload.len(),
                request_id,
                log,
            });
        }
    }
    sessions.sort_by_key(|s| s.request_id);
    Ok((sessions, warnings))
}

/// The `--from-shard` side of `replay`: list, select, or verify the
/// persisted fleet session logs in a shard directory.
fn replay_from_shard(dir: &str, args: &ParsedArgs) -> Result<String, CliError> {
    let (sessions, warnings) = read_shard_sessions(dir)?;
    if args.has("verify") {
        return verify_shard_dir(dir, &sessions, &warnings);
    }
    if let Some(request) = args.get("request") {
        let want: u64 = request.parse().map_err(|e| {
            CliError::Args(ArgError::BadValue {
                flag: "request".to_string(),
                detail: format!("{e}"),
            })
        })?;
        let hit = sessions
            .iter()
            .find(|s| s.request_id == want)
            .ok_or_else(|| {
                CliError::Io(format!("request {want} not found in {dir} shard files"))
            })?;
        if args.has("json") {
            return Ok(hit.log.encode());
        }
        return Ok(replay::summarize(&hit.log));
    }
    let mut out = format!("{dir}: {} persisted session logs\n", sessions.len());
    for w in &warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    out.push_str("request  user  shard  events  bytes\n");
    for s in &sessions {
        let user = s.log.meta_get("user_id").unwrap_or("?");
        let _ = writeln!(
            out,
            "  {:>6} {:>5} {:>6} {:>7} {:>6}",
            s.request_id,
            user,
            s.shard_idx,
            s.log.len(),
            s.payload_len,
        );
    }
    out.push_str("pick one with --request N (--json dumps, default summarizes); --verify checks manifest.json");
    Ok(out)
}

/// `replay <dir> --from-shard --verify`: every persisted record must
/// re-encode canonically to its own bytes, hash to the digest the fleet
/// recorded in `manifest.json`, and sit in the shard its user id maps
/// to — and every manifest entry must be present. Any mismatch is a
/// hard error (nonzero exit).
fn verify_shard_dir(
    dir: &str,
    sessions: &[ShardSession],
    warnings: &[String],
) -> Result<String, CliError> {
    if let Some(w) = warnings.first() {
        return Err(CliError::Io(format!("shard store not clean: {w}")));
    }
    let manifest_path = Path::new(dir).join("manifest.json");
    let manifest_text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| CliError::Io(format!("{}: {e}", manifest_path.display())))?;
    let manifest = p2auth_obs::json::parse(&manifest_text)
        .map_err(|e| CliError::Io(format!("{}: {e}", manifest_path.display())))?;
    if manifest
        .get("schema")
        .and_then(p2auth_obs::json::JsonValue::as_str)
        != Some("p2auth.fleet-shards.v1")
    {
        return Err(CliError::Io(format!(
            "{}: not a p2auth.fleet-shards.v1 manifest",
            manifest_path.display()
        )));
    }
    let shard_count = manifest
        .get("shard_count")
        .and_then(p2auth_obs::json::JsonValue::as_f64)
        .ok_or_else(|| CliError::Io("manifest missing shard_count".to_string()))?
        as usize;
    let entries = manifest
        .get("sessions")
        .and_then(p2auth_obs::json::JsonValue::as_array)
        .ok_or_else(|| CliError::Io("manifest missing sessions array".to_string()))?;
    let mut expected: std::collections::BTreeMap<u64, (u64, u64, String)> =
        std::collections::BTreeMap::new();
    for e in entries {
        let field = |k: &str| -> Result<f64, CliError> {
            e.get(k)
                .and_then(p2auth_obs::json::JsonValue::as_f64)
                .ok_or_else(|| CliError::Io(format!("manifest session missing {k}")))
        };
        let digest = e
            .get("digest")
            .and_then(p2auth_obs::json::JsonValue::as_str)
            .ok_or_else(|| CliError::Io("manifest session missing digest".to_string()))?;
        expected.insert(
            field("request_id")? as u64,
            (
                field("user_id")? as u64,
                field("events")? as u64,
                digest.to_string(),
            ),
        );
    }
    let mut verified = 0_usize;
    for s in sessions {
        let (user_id, events, digest) = expected.get(&s.request_id).ok_or_else(|| {
            CliError::Io(format!(
                "request {} persisted but absent from the manifest",
                s.request_id
            ))
        })?;
        let encoded = s.log.encode();
        if log_digest(&encoded) != *digest {
            return Err(CliError::Io(format!(
                "request {}: digest mismatch vs manifest (persisted log altered?)",
                s.request_id
            )));
        }
        if s.log.len() as u64 != *events {
            return Err(CliError::Io(format!(
                "request {}: {} events persisted, manifest says {events}",
                s.request_id,
                s.log.len()
            )));
        }
        let want_shard = persist::shard_of(*user_id, shard_count);
        if s.shard_idx as usize != want_shard {
            return Err(CliError::Io(format!(
                "request {}: found in shard {} but user {user_id} routes to {want_shard}",
                s.request_id, s.shard_idx
            )));
        }
        verified += 1;
    }
    if verified != expected.len() {
        let missing: Vec<u64> = expected
            .keys()
            .filter(|id| sessions.iter().all(|s| s.request_id != **id))
            .copied()
            .collect();
        return Err(CliError::Io(format!(
            "manifest lists {} sessions but only {verified} persisted; missing requests {missing:?}",
            expected.len()
        )));
    }
    Ok(format!(
        "shard replay verified: {verified} session logs across {shard_count} shards, \
         zero divergence (canonical re-encode + digest + shard routing all match)"
    ))
}

/// `p2auth fleet`: a miniature of the `fleet_bench` sweep — one serve
/// region over a simulated device fleet, reported interactively.
/// `--persist DIR` additionally appends every session's event log to a
/// sharded segment store (then verifies the read-back bit-for-bit
/// against the in-memory logs and writes a digest manifest for
/// `replay --from-shard --verify`); `--inspect` appends the fleet
/// introspection view, and `p2auth fleet top` renders only that view.
pub fn fleet(args: &ParsedArgs) -> Result<String, CliError> {
    let top_only = args.arg.as_deref() == Some("top");
    if args.arg.as_deref() == Some("recover") {
        return fleet_recover(args);
    }
    if let Some(other) = args.arg.as_deref().filter(|a| *a != "top") {
        return Err(CliError::Io(format!(
            "unknown fleet view {other:?}; try `p2auth fleet top` or `p2auth fleet recover`"
        )));
    }
    let devices = args.get_parsed("devices", 6_usize)?.max(1);
    let sessions = args.get_parsed("sessions", 3_usize)?.max(1);
    let workers = args.get_parsed("workers", 4_usize)?.max(1);
    let seed = args.get_parsed("seed", 814_u64)?;
    let p99_ms = args.get_parsed("p99-ms", 500_u64)?;
    let chaos = match args.get("chaos").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                flag: "chaos".to_string(),
                detail: format!("expected on|off, got {other:?}"),
            }))
        }
    };
    let scenario = build_fleet(&FleetConfig {
        num_devices: devices,
        sessions_per_device: sessions,
        enrolled_users: devices.min(3),
        seed,
        chaos,
        hang_every: 0,
    });
    let server = ServerConfig {
        num_workers: workers,
        queue_capacity: (2 * workers).max(4),
        ..ServerConfig::default()
    };
    let slo = SloTracker::new(SloConfig {
        p99_objective_ns: p99_ms.saturating_mul(1_000_000),
        ..SloConfig::default()
    });
    let persist_dir = args.get("persist").map(str::to_string);
    let store = match &persist_dir {
        Some(dir) => Some(
            ShardedEventStore::create(Path::new(dir), server.shard_count, 8)
                .map_err(|e| CliError::Io(format!("{dir}: {e}")))?,
        ),
        None => None,
    };
    let (report, shed_at_submit) = run_fleet_obs(
        &scenario,
        &server,
        ServeObs {
            persist: store.as_ref(),
            slo: Some(&slo),
            ..ServeObs::default()
        },
    );
    // Durable read-back verification: every persisted record must be
    // bit-identical to the in-memory log the worker produced.
    let persist_note = match (&store, &persist_dir) {
        (Some(st), Some(dir)) => {
            st.flush()
                .map_err(|e| CliError::Io(format!("{dir}: {e}")))?;
            Some(persist_verify_and_manifest(&report, st, dir)?)
        }
        _ => None,
    };

    let total = scenario.requests.len();
    let mut accepts = 0_usize;
    let mut rejects = 0_usize;
    let mut aborts = 0_usize;
    let mut crashes = 0_usize;
    let mut shed = shed_at_submit.len();
    let mut latencies: Vec<u64> = Vec::with_capacity(report.sessions.len());
    for r in &report.sessions {
        latencies.push(r.response.latency_ns);
        match &r.response.verdict {
            SessionVerdict::Completed { accepted: true, .. } => accepts += 1,
            SessionVerdict::Completed { state, .. }
                if *state == p2auth_device::SupervisorState::Abort =>
            {
                aborts += 1;
            }
            SessionVerdict::Completed { .. } => rejects += 1,
            SessionVerdict::Shed(_) => shed += 1,
            SessionVerdict::Crashed { .. } => crashes += 1,
        }
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let n = latencies.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        latencies[rank - 1]
    };
    let (p50, p95, p99) = (quantile(0.50), quantile(0.95), quantile(0.99));
    let slo_report = slo.report();

    if top_only {
        return Ok(fleet_top_view(
            &report,
            shed_at_submit.len(),
            &slo_report,
            server.shard_count,
            workers,
        ));
    }
    if args.has("json") {
        return Ok(format!(
            "{{ \"devices\": {devices}, \"sessions_per_device\": {sessions}, \
             \"workers\": {workers}, \"seed\": {seed}, \"chaos\": {chaos}, \
             \"requests\": {total}, \"responses\": {}, \"accepts\": {accepts}, \
             \"rejects\": {rejects}, \"aborts\": {aborts}, \"crashes\": {crashes}, \
             \"shed\": {shed}, \
             \"p50_ns\": {p50}, \"p95_ns\": {p95}, \"p99_ns\": {p99}, \
             \"slo_alert\": {}, \"persisted\": {}, \
             \"ctx_leaks_repaired\": {} }}",
            report.sessions.len() + shed_at_submit.len(),
            slo_report.alert,
            store.as_ref().map_or(0, ShardedEventStore::appended),
            report.ctx_leaks_repaired,
        ));
    }
    let mut out = format!(
        "fleet: {devices} devices x {sessions} sessions, {workers} workers, \
         chaos {}, seed {seed}\n\
         responses: {}/{total} (accepted {accepts}, rejected {rejects}, \
         aborted {aborts}, crashed {crashes}, shed {shed})\n\
         latency: p50 {:.1} us, p95 {:.1} us, p99 {:.1} us\n\
         ctx leaks repaired: {}",
        if chaos { "on" } else { "off" },
        report.sessions.len() + shed_at_submit.len(),
        p50 as f64 / 1e3,
        p95 as f64 / 1e3,
        p99 as f64 / 1e3,
        report.ctx_leaks_repaired,
    );
    if let Some(note) = persist_note {
        out.push('\n');
        out.push_str(&note);
    }
    if args.has("inspect") {
        out.push('\n');
        out.push_str(&fleet_top_view(
            &report,
            shed_at_submit.len(),
            &slo_report,
            server.shard_count,
            workers,
        ));
    }
    Ok(out)
}

/// `p2auth fleet recover --persist DIR`: warm-restart view of a
/// persisted shard store — replays every shard, rebuilds the
/// completed-session accounting and its digest, and lists the
/// in-flight sessions the intent journal says a crash interrupted.
fn fleet_recover(args: &ParsedArgs) -> Result<String, CliError> {
    let dir = args
        .get("persist")
        .ok_or_else(|| CliError::Io("fleet recover needs --persist DIR".to_string()))?;
    let region =
        ServeRegion::recover(Path::new(dir)).map_err(|e| CliError::Io(format!("{dir}: {e}")))?;
    let acc = region.completed;
    let mut out = format!(
        "recovered {dir}: {} completed sessions (accepted {}, rejected {}, \
         aborted {}, crashed {}, shed {})\n\
         accounting digest: {:016x}\n\
         torn bytes dropped: {}, undecodable records: {}, failed shards: {}",
        acc.sessions,
        acc.accepts,
        acc.rejects,
        acc.aborts,
        acc.crashes,
        acc.sheds,
        region.accounting_digest(),
        region.torn_bytes,
        region.undecodable_records,
        region.failed_shards.len(),
    );
    for (path, err) in &region.failed_shards {
        let _ = write!(out, "\n  failed shard {}: {err}", path.display());
    }
    if region.in_flight.is_empty() {
        out.push_str("\nin-flight: none (clean shutdown or no intent journal)");
    } else {
        let _ = write!(out, "\nin-flight ({} interrupted):", region.in_flight.len());
        for s in &region.in_flight {
            let _ = write!(out, "\n  request {} user {}", s.request_id, s.user_id);
        }
    }
    if region.prior_interruptions > 0 {
        let _ = write!(
            out,
            "\nprior restarts left {} interruption markers",
            region.prior_interruptions
        );
    }
    Ok(out)
}

/// Short human label for a session verdict.
fn verdict_label(verdict: &SessionVerdict) -> String {
    match verdict {
        SessionVerdict::Completed { accepted: true, .. } => "accepted".to_string(),
        SessionVerdict::Completed { state, .. } => state.as_str().to_string(),
        SessionVerdict::Shed(why) => format!("shed:{why:?}"),
        SessionVerdict::Crashed { .. } => "crashed".to_string(),
    }
}

/// Renders the fleet introspection view (`fleet top` / `--inspect`):
/// per-shard load and latency from the merged per-worker metrics,
/// per-worker session counts, the shed and SQI-rejection mix mined
/// from the session logs, the SLO burn line, and the top-5 slowest
/// sessions.
fn fleet_top_view(
    report: &ServeReport,
    shed_at_submit: usize,
    slo: &p2auth_obs::SloReport,
    shard_count: usize,
    workers: usize,
) -> String {
    let m = &report.metrics;
    let mut out = format!(
        "fleet top — {shard_count} shards, {workers} workers, {} sessions\n",
        report.sessions.len()
    );
    out.push_str("shard  sessions  accepts  sheds       p50       p99\n");
    for s in 0..shard_count {
        let sessions = m.counter(&format!("server.shard.{s:02}.sessions"));
        if sessions == 0 {
            continue;
        }
        let accepts = m.counter(&format!("server.shard.{s:02}.accepts"));
        let sheds = m.counter(&format!("server.shard.{s:02}.sheds"));
        let (p50, p99) = m
            .histogram(&format!("server.shard.{s:02}.latency_ns"))
            .map_or((0, 0), |h| (h.quantile(0.50), h.quantile(0.99)));
        let _ = writeln!(
            out,
            "  {s:3} {sessions:9} {accepts:8} {sheds:6} {:>9} {:>9}",
            p2auth_obs::report::fmt_ns(p50),
            p2auth_obs::report::fmt_ns(p99),
        );
    }
    out.push_str("workers:");
    for w in 0..workers {
        let count = report
            .sessions
            .iter()
            .filter(|r| r.response.worker == w)
            .count();
        let _ = write!(out, " w{w}={count}");
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "shed: at_submit={shed_at_submit} unknown_user={}",
        m.counter("server.shed_unknown_user"),
    );
    // SQI-rejection mix: the last decision of every non-accepted
    // session, keyed by its recorded reason.
    let mut mix: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for r in &report.sessions {
        if matches!(
            r.response.verdict,
            SessionVerdict::Completed { accepted: true, .. } | SessionVerdict::Shed(_)
        ) {
            continue;
        }
        let reason = r
            .log
            .events
            .iter()
            .rev()
            .find_map(|e| match &e.event {
                p2auth_obs::SessionEvent::Decision { kind, reason, .. } => Some(
                    reason
                        .clone()
                        .map_or_else(|| kind.clone(), |why| format!("{kind}:{why}")),
                ),
                _ => None,
            })
            .unwrap_or_else(|| verdict_label(&r.response.verdict));
        *mix.entry(reason).or_insert(0) += 1;
    }
    out.push_str("rejection mix:");
    if mix.is_empty() {
        out.push_str(" none");
    }
    for (reason, count) in &mix {
        let _ = write!(out, " {reason}={count}");
    }
    out.push('\n');
    out.push_str(&slo.render_text());
    out.push('\n');
    let mut slow: Vec<_> = report.sessions.iter().collect();
    slow.sort_by(|a, b| {
        b.response
            .latency_ns
            .cmp(&a.response.latency_ns)
            .then(a.response.request_id.cmp(&b.response.request_id))
    });
    out.push_str("top 5 slow sessions:\n");
    for r in slow.iter().take(5) {
        let _ = writeln!(
            out,
            "  req {:>4}  user {:>4}  worker {}  {:>9}  {}",
            r.response.request_id,
            r.response.user_id,
            r.response.worker,
            p2auth_obs::report::fmt_ns(r.response.latency_ns),
            verdict_label(&r.response.verdict),
        );
    }
    out
}

/// Hex digest of a canonical event-log encoding (FNV-64 over the
/// bytes) — the manifest currency `replay --from-shard --verify`
/// checks against.
fn log_digest(encoded: &str) -> String {
    let mut h = Fnv64::new();
    h.update_bytes(encoded.as_bytes());
    format!("{:016x}", h.finish())
}

/// Reads every shard back, proves each persisted record bit-identical
/// to the in-memory log of the same session, and writes
/// `DIR/manifest.json` (request id → digest) for offline verification.
fn persist_verify_and_manifest(
    report: &ServeReport,
    store: &ShardedEventStore,
    dir: &str,
) -> Result<String, CliError> {
    let by_request: std::collections::BTreeMap<u64, &p2auth_obs::EventLog> = report
        .sessions
        .iter()
        .map(|r| (r.response.request_id, &r.log))
        .collect();
    let mut persisted = 0_usize;
    for (path, read) in persist::read_store_dir(Path::new(dir))
        .map_err(|e| CliError::Io(format!("reading {dir}: {e}")))?
    {
        let read = read.map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        if read.torn_bytes > 0 {
            return Err(CliError::Io(format!(
                "{}: torn tail right after writing (flush failed?)",
                path.display()
            )));
        }
        for payload in &read.records {
            let text = std::str::from_utf8(payload)
                .map_err(|e| CliError::Io(format!("{}: non-utf8 record: {e}", path.display())))?;
            let log = p2auth_obs::EventLog::decode(text).map_err(ReplayError::Log)?;
            let request_id: u64 = log
                .meta_get("request_id")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    CliError::Io(format!("{}: record without request_id", path.display()))
                })?;
            let in_memory = by_request.get(&request_id).ok_or_else(|| {
                CliError::Io(format!("persisted request {request_id} was never served"))
            })?;
            if let Some(div) = in_memory.first_divergence(&log) {
                return Err(CliError::Io(format!(
                    "persisted log for request {request_id} diverged from memory: {div:?}"
                )));
            }
            persisted += 1;
        }
    }
    if persisted != report.sessions.len() {
        return Err(CliError::Io(format!(
            "persisted {persisted} records but served {} sessions",
            report.sessions.len()
        )));
    }
    // The manifest: one digest per session, so a later process can
    // verify the shard files against what the fleet actually recorded.
    let mut manifest = String::from("{ \"schema\": \"p2auth.fleet-shards.v1\",");
    let _ = write!(
        manifest,
        " \"shard_count\": {}, \"sessions\": [",
        store.shard_count()
    );
    for (i, r) in report.sessions.iter().enumerate() {
        if i > 0 {
            manifest.push(',');
        }
        let encoded = r.log.encode();
        let _ = write!(
            manifest,
            " {{ \"request_id\": {}, \"user_id\": {}, \"shard\": {}, \"events\": {}, \
             \"digest\": \"{}\" }}",
            r.response.request_id,
            r.response.user_id,
            persist::shard_of(r.response.user_id, store.shard_count()),
            r.log.len(),
            log_digest(&encoded),
        );
    }
    manifest.push_str(" ] }");
    let manifest_path = Path::new(dir).join("manifest.json");
    std::fs::write(&manifest_path, manifest)
        .map_err(|e| CliError::Io(format!("{}: {e}", manifest_path.display())))?;
    Ok(format!(
        "persisted {persisted} session logs across {} shards -> {dir} \
         (read-back verified, zero divergence; manifest.json written)",
        store.shard_count()
    ))
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands or failures inside one.
pub fn dispatch(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_deref() {
        None | Some("help") => Ok(USAGE.to_string()),
        Some("enroll") => enroll(args),
        Some("verify") => verify(args),
        Some("wear") => wear(args),
        Some("fault") => fault(args),
        Some("trace") => trace(args),
        Some("quality") => quality(args),
        Some("record") => record(args),
        Some("replay") => replay_cmd(args),
        Some("fleet") => fleet(args),
        Some(other) => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn write_profile(profile: &UserProfile, path: &Path) -> Result<(), CliError> {
    let json = serde_json::to_vec(profile).map_err(|e| CliError::Io(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| CliError::Io(e.to_string()))
}

fn read_profile(path: &Path) -> Result<UserProfile, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
    serde_json::from_slice(&bytes).map_err(|e| CliError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(name)
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn help_and_unknown() {
        let help = dispatch(&ParsedArgs::parse(["help"]).unwrap()).unwrap();
        assert!(help.contains("USAGE"));
        assert!(matches!(
            dispatch(&ParsedArgs::parse(["frobnicate"]).unwrap()),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn enroll_verify_round_trip() {
        let out = tmp("p2auth_cli_test_profile.json");
        let msg = dispatch(
            &ParsedArgs::parse(["enroll", "--user", "0", "--out", &out, "--users", "6"]).unwrap(),
        )
        .unwrap();
        assert!(msg.contains("enrolled user 0"), "{msg}");

        let msg = dispatch(
            &ParsedArgs::parse(["verify", "--profile", &out, "--user", "0", "--users", "6"])
                .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("ACCEPTED"), "{msg}");

        let msg = dispatch(
            &ParsedArgs::parse([
                "verify",
                "--profile",
                &out,
                "--attacker",
                "2",
                "--victim",
                "0",
                "--users",
                "6",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("REJECTED"), "{msg}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn wear_reports_pulse() {
        let msg = dispatch(&ParsedArgs::parse(["wear", "--users", "4"]).unwrap()).unwrap();
        assert!(msg.contains("worn: true"), "{msg}");
    }

    #[test]
    fn fleet_serves_every_request() {
        let msg = dispatch(
            &ParsedArgs::parse([
                "fleet",
                "--devices",
                "2",
                "--sessions",
                "2",
                "--workers",
                "2",
                "--chaos",
                "off",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("responses: 4/4"), "{msg}");
        assert!(msg.contains("ctx leaks repaired: 0"), "{msg}");
        let json = dispatch(
            &ParsedArgs::parse(["fleet", "--devices", "2", "--sessions", "1", "--json"]).unwrap(),
        )
        .unwrap();
        assert!(json.contains("\"requests\": 2"), "{json}");
        assert!(
            dispatch(&ParsedArgs::parse(["fleet", "--chaos", "sideways"]).unwrap()).is_err(),
            "bad chaos mode must be rejected"
        );
    }

    #[test]
    fn fault_streams_and_reports() {
        let msg = dispatch(
            &ParsedArgs::parse(["fault", "--users", "4", "--sessions", "1", "--loss", "0.02"])
                .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("link faults: loss 0.020"), "{msg}");
        assert!(msg.contains("session 0:"), "{msg}");
        assert!(msg.contains("/1 legitimate sessions"), "{msg}");
    }

    #[test]
    fn quality_reports_gated_keystrokes() {
        let msg = dispatch(
            &ParsedArgs::parse([
                "quality",
                "--users",
                "4",
                "--fault",
                "saturation",
                "--intensity",
                "1.0",
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("sensor fault: saturation"), "{msg}");
        assert!(msg.contains("mean SQI"), "{msg}");
        assert!(msg.contains("supervised session:"), "{msg}");
    }

    #[test]
    fn quality_json_is_machine_readable() {
        let msg = dispatch(
            &ParsedArgs::parse(["quality", "--users", "4", "--fault", "motion", "--json"]).unwrap(),
        )
        .unwrap();
        assert!(msg.starts_with('{'), "{msg}");
        assert!(msg.contains("\"fault\": \"motion\""), "{msg}");
        assert!(msg.contains("\"keystrokes\""), "{msg}");
        assert!(msg.contains("\"session\""), "{msg}");
    }

    #[test]
    fn quality_rejects_unknown_fault_kind() {
        let r = dispatch(&ParsedArgs::parse(["quality", "--fault", "gremlins"]).unwrap());
        assert!(matches!(r, Err(CliError::Io(_))));
    }

    #[test]
    fn missing_profile_is_io_error() {
        let r =
            dispatch(&ParsedArgs::parse(["verify", "--profile", "/nonexistent/p.json"]).unwrap());
        assert!(matches!(r, Err(CliError::Io(_))));
    }

    #[test]
    fn fleet_persist_round_trips_through_shard_replay() {
        let dir = tmp(&format!("p2auth_cli_shards_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let msg = dispatch(
            &ParsedArgs::parse([
                "fleet",
                "--devices",
                "3",
                "--sessions",
                "2",
                "--workers",
                "2",
                "--persist",
                &dir,
            ])
            .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("read-back verified, zero divergence"), "{msg}");
        assert!(Path::new(&dir).join("manifest.json").is_file());

        // The persisted store lists every session...
        let listing =
            dispatch(&ParsedArgs::parse(["replay", &dir, "--from-shard"]).unwrap()).unwrap();
        assert!(listing.contains("6 persisted session logs"), "{listing}");

        // ...verifies offline against the manifest...
        let verified =
            dispatch(&ParsedArgs::parse(["replay", &dir, "--from-shard", "--verify"]).unwrap())
                .unwrap();
        assert!(verified.contains("zero divergence"), "{verified}");

        // ...and a single request dumps its canonical log.
        let dumped = dispatch(
            &ParsedArgs::parse(["replay", &dir, "--from-shard", "--request", "0", "--json"])
                .unwrap(),
        )
        .unwrap();
        assert!(
            dumped.starts_with("{\"schema\":\"p2auth.events.v1\""),
            "{dumped}"
        );

        // Tampering with a persisted byte must turn verification into
        // a hard error.
        let shard = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| {
                p.extension().is_some_and(|x| x == "shard")
                    && std::fs::metadata(p).unwrap().len() > persist::HEADER_LEN as u64
            })
            .expect("at least one non-empty shard");
        let mut bytes = std::fs::read(&shard).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&shard, bytes).unwrap();
        let r = dispatch(&ParsedArgs::parse(["replay", &dir, "--from-shard", "--verify"]).unwrap());
        assert!(
            matches!(r, Err(CliError::Io(_))),
            "tampered store must fail verify"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fleet_top_renders_introspection_view() {
        let msg = dispatch(
            &ParsedArgs::parse(["fleet", "top", "--devices", "3", "--sessions", "2"]).unwrap(),
        )
        .unwrap();
        assert!(msg.contains("fleet top —"), "{msg}");
        assert!(msg.contains("shard  sessions  accepts  sheds"), "{msg}");
        assert!(msg.contains("SLO[60s]:"), "{msg}");
        assert!(msg.contains("top 5 slow sessions:"), "{msg}");
        assert!(
            dispatch(&ParsedArgs::parse(["fleet", "sideways"]).unwrap()).is_err(),
            "unknown fleet view must be rejected"
        );
    }
}
