//! Library side of the `p2auth` CLI: argument parsing and the command
//! implementations, kept in a lib so they are unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod replay;
