//! `p2auth` — command-line demo of the reproduction. See `p2auth help`.

use p2auth_cli::args::ParsedArgs;
use p2auth_cli::commands::dispatch;
use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match ParsedArgs::parse(tokens) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match dispatch(&parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
