//! Event-sourced record/replay of supervised sessions.
//!
//! **Recording** runs one supervised chaos session (the exact flow of
//! the `session_chaos` CI matrix: seeded sensor faults degrade what the
//! ADC sampled, seeded link faults degrade what the host received) with
//! an observer tap on [`run_supervised_observed`] and the reliable
//! transfer, appending every sample batch, link frame event, SQI
//! verdict, supervisor transition, deadline tick, vote and decision to
//! a [`p2auth_obs::EventLog`] (`p2auth.events.v1`).
//!
//! **Replaying** re-executes the session from nothing but the log's
//! header — the [`RecordSpec`] is embedded in the log's metadata — and
//! diffs the re-derived event stream against the recorded one,
//! reporting the first divergent event on mismatch. The pipeline is
//! deterministic end-to-end, so a verified replay means every SQI
//! value, coverage metric, vote weight and state transition
//! reproduced *bit-identically*.
//!
//! Replay re-derives randomness through the recorded seeds and the
//! process's compiled-in RNG backend, so `--verify` is meaningful
//! within one build of the binary (which is how CI uses it: record,
//! then replay twice). `summarize` is pure log inspection — no
//! re-execution — and therefore stable across builds; the committed
//! golden summary is checked with it.

use p2auth_core::{AttemptQuality, HandMode, P2Auth, P2AuthConfig, Pin, Recording};
use p2auth_device::clock::VirtualClock;
use p2auth_device::host::LinkQuality;
use p2auth_device::{
    run_supervised_observed, transmit_reliable, FaultConfig, FaultyLink, LinkConfig,
    ReliableConfig, SessionObserver, SessionOutcome, SupervisedOutcome, SupervisorConfig,
    SupervisorEvent, SupervisorState, WearableDevice,
};
use p2auth_obs::events::{EventLog, EventLogError, Fnv64, LogDivergence, SessionEvent};
use p2auth_obs::SessionSeeds;
use p2auth_sim::{
    inject_sensor_faults, Population, PopulationConfig, SensorFaultConfig, SensorFaultKind,
    SessionConfig,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

/// Which fault families a recorded session injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Clean sensor, clean link.
    None,
    /// Sensor faults only.
    Sensor,
    /// Link faults only.
    Link,
    /// Sensor and link faults together.
    Both,
}

impl ChaosMode {
    /// Parses the `P2AUTH_CHAOS_MODE` vocabulary.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Self::None),
            "sensor" => Some(Self::Sensor),
            "link" => Some(Self::Link),
            "both" => Some(Self::Both),
            _ => None,
        }
    }

    /// Stable name (the `P2AUTH_CHAOS_MODE` vocabulary plus `none`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Sensor => "sensor",
            Self::Link => "link",
            Self::Both => "both",
        }
    }

    fn sensor_active(self) -> bool {
        matches!(self, Self::Sensor | Self::Both)
    }

    fn link_active(self) -> bool {
        matches!(self, Self::Link | Self::Both)
    }
}

impl fmt::Display for ChaosMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything a replayer needs to re-execute a recorded session. The
/// spec is embedded in the event log's metadata, so a log file is
/// self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSpec {
    /// Simulated cohort size.
    pub users: usize,
    /// Cohort seed.
    pub population_seed: u64,
    /// Authenticating user.
    pub user: usize,
    /// The PIN (and the claim presented at authentication).
    pub pin: String,
    /// Recording nonce: selects which simulated entry the session
    /// authenticates.
    pub nonce: u64,
    /// Fault families to inject.
    pub chaos: ChaosMode,
    /// Seed driving both fault injectors.
    pub chaos_seed: u64,
    /// Link frame drop rate.
    pub loss: f64,
    /// Link frame corruption rate.
    pub corrupt: f64,
    /// Named sensor-fault preset; `None` uses the chaos matrix's
    /// moderate multi-family mix.
    pub sensor_preset: Option<(SensorFaultKind, f64)>,
}

impl Default for RecordSpec {
    /// The `session_chaos` CI cell's shape: 4 users, combined chaos,
    /// the matrix's loss/corruption rates.
    fn default() -> Self {
        Self {
            users: 4,
            population_seed: 811,
            user: 0,
            pin: "1628".to_string(),
            nonce: 0,
            chaos: ChaosMode::Both,
            chaos_seed: 1,
            loss: 0.05,
            corrupt: 0.0125,
            sensor_preset: None,
        }
    }
}

impl RecordSpec {
    /// The log seeds header derived from this spec.
    #[must_use]
    pub fn seeds(&self) -> SessionSeeds {
        SessionSeeds {
            population: self.population_seed,
            chaos: self.chaos_seed,
            nonce: self.nonce,
        }
    }

    /// Writes the spec into a log's metadata.
    fn stamp(&self, log: &mut EventLog) {
        log.meta_push("spec.users", self.users.to_string());
        log.meta_push("spec.user", self.user.to_string());
        log.meta_push("spec.pin", self.pin.clone());
        log.meta_push("spec.chaos", self.chaos.as_str());
        log.meta_push("spec.loss", self.loss.to_string());
        log.meta_push("spec.corrupt", self.corrupt.to_string());
        if let Some((kind, intensity)) = self.sensor_preset {
            log.meta_push("spec.fault", kind.to_string());
            log.meta_push("spec.intensity", intensity.to_string());
        }
    }

    /// Reconstructs a spec from a log's header and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Spec`] when a required key is absent or
    /// unparseable — a log without a complete spec cannot be replayed.
    pub fn from_log(log: &EventLog) -> Result<Self, ReplayError> {
        fn get<T: std::str::FromStr>(log: &EventLog, key: &str) -> Result<T, ReplayError> {
            log.meta_get(key)
                .ok_or_else(|| ReplayError::Spec(format!("metadata key {key:?} missing")))?
                .parse()
                .map_err(|_| ReplayError::Spec(format!("metadata key {key:?} unparseable")))
        }
        let chaos_name: String = get(log, "spec.chaos")?;
        let chaos = ChaosMode::parse(&chaos_name)
            .ok_or_else(|| ReplayError::Spec(format!("unknown chaos mode {chaos_name:?}")))?;
        let sensor_preset = match log.meta_get("spec.fault") {
            None => None,
            Some(name) => {
                let kind = SensorFaultKind::parse(name)
                    .ok_or_else(|| ReplayError::Spec(format!("unknown fault kind {name:?}")))?;
                Some((kind, get(log, "spec.intensity")?))
            }
        };
        Ok(Self {
            users: get(log, "spec.users")?,
            population_seed: log.seeds.population,
            user: get(log, "spec.user")?,
            pin: get(log, "spec.pin")?,
            nonce: log.seeds.nonce,
            chaos,
            chaos_seed: log.seeds.chaos,
            loss: get(log, "spec.loss")?,
            corrupt: get(log, "spec.corrupt")?,
            sensor_preset,
        })
    }

    fn sensor_faults(&self) -> SensorFaultConfig {
        match self.sensor_preset {
            Some((kind, intensity)) => SensorFaultConfig::preset(kind, intensity, self.chaos_seed),
            // The session_chaos matrix's moderate multi-family mix.
            None => SensorFaultConfig {
                motion_rate_hz: 0.25,
                saturation_rate_hz: 0.3,
                dropout_rate_hz: 0.5,
                seed: self.chaos_seed,
                ..SensorFaultConfig::default()
            },
        }
    }
}

/// Failure to replay a recorded session.
#[derive(Debug)]
pub enum ReplayError {
    /// The log file could not be decoded.
    Log(EventLogError),
    /// The log decoded but its embedded spec is incomplete or invalid.
    Spec(String),
    /// The session could not be re-executed (e.g. enrollment failed).
    Execution(String),
    /// The re-executed session diverged from the recording.
    Divergence(Box<LogDivergence>),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Log(e) => write!(f, "cannot decode event log: {e}"),
            ReplayError::Spec(e) => write!(f, "cannot reconstruct record spec: {e}"),
            ReplayError::Execution(e) => write!(f, "cannot re-execute session: {e}"),
            ReplayError::Divergence(d) => write!(f, "replay DIVERGED: {d}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<EventLogError> for ReplayError {
    fn from(e: EventLogError) -> Self {
        ReplayError::Log(e)
    }
}

/// [`SessionObserver`] that appends supervisor-side events to a shared
/// log. The log is shared (`Rc<RefCell>`) with the acquisition closure,
/// which appends the sample/link events, so one stream holds the whole
/// session in execution order.
struct LogObserver {
    log: Rc<RefCell<EventLog>>,
}

impl SessionObserver for LogObserver {
    fn on_step(
        &mut self,
        from: SupervisorState,
        event: &SupervisorEvent,
        to: SupervisorState,
        now_s: f64,
        deadline_s: Option<f64>,
    ) {
        let mut log = self.log.borrow_mut();
        if from == to {
            // Absorbed event: only time matters (deadline audit trail).
            log.push(SessionEvent::DeadlineTick {
                state: from.as_str().to_string(),
                now_s,
                deadline_s,
            });
        } else {
            log.push(SessionEvent::Transition {
                from: from.as_str().to_string(),
                to: to.as_str().to_string(),
                event: event.name().to_string(),
                now_s,
            });
        }
    }

    fn on_assessment(&mut self, attempt_no: u32, quality: Option<&AttemptQuality>) {
        let mut log = self.log.borrow_mut();
        let Some(q) = quality else {
            log.push(SessionEvent::Assessment {
                attempt: attempt_no,
                detected: 0,
                usable: 0,
                mean_sqi: 0.0,
            });
            return;
        };
        for k in &q.per_keystroke {
            log.push(SessionEvent::SqiVerdict {
                attempt: attempt_no,
                index: k.index as u32,
                digit: k.digit,
                detected: k.detected,
                sqi: k.quality.as_ref().map(|s| s.sqi),
                flags: k
                    .quality
                    .as_ref()
                    .map(|s| s.flags.to_string())
                    .unwrap_or_default(),
            });
        }
        log.push(SessionEvent::Assessment {
            attempt: attempt_no,
            detected: q.detected as u32,
            usable: q.usable as u32,
            mean_sqi: q.mean_sqi,
        });
    }

    fn on_outcome(&mut self, attempt_no: u32, outcome: &SessionOutcome) {
        let mut log = self.log.borrow_mut();
        if let Some(d) = outcome.decision() {
            for v in &d.keystroke_votes {
                log.push(SessionEvent::Vote {
                    attempt: attempt_no,
                    index: v.index as u32,
                    digit: v.digit,
                    passed: v.passed,
                    score: v.score,
                    weight: v.weight,
                });
            }
        }
        let (kind, accepted, case, reason, score, coverage, gap_blocks) = match outcome {
            SessionOutcome::Decision(d) => (
                "decision",
                d.accepted,
                format!("{:?}", d.case),
                d.reason.map(|r| r.as_str().to_string()),
                d.score,
                None,
                None,
            ),
            SessionOutcome::Degraded {
                decision,
                coverage,
                gap_blocks,
            } => (
                "degraded",
                decision.accepted,
                format!("{:?}", decision.case),
                decision.reason.map(|r| r.as_str().to_string()),
                decision.score,
                Some(*coverage),
                Some(*gap_blocks as u64),
            ),
            SessionOutcome::Abort {
                reason,
                coverage,
                gap_blocks,
            } => (
                "abort",
                false,
                String::new(),
                Some(reason.clone()),
                0.0,
                Some(*coverage),
                Some(*gap_blocks as u64),
            ),
        };
        log.push(SessionEvent::Decision {
            attempt: attempt_no,
            kind: kind.to_string(),
            accepted,
            case,
            reason,
            score,
            coverage,
            gap_blocks,
        });
    }
}

/// Bit-identity digest of a delivered sample batch: every PPG sample's
/// bit pattern plus the keystroke times.
fn batch_digest(rec: &Recording) -> u64 {
    let mut d = Fnv64::new();
    for channel in &rec.ppg {
        d.update_u64(channel.len() as u64);
        for &s in channel {
            d.update_f64(s);
        }
    }
    for &t in &rec.reported_key_times {
        d.update_u64(t as u64);
    }
    d.finish()
}

/// Records one supervised chaos session, returning the event log and
/// the session outcome.
///
/// # Errors
///
/// Returns [`ReplayError::Execution`] when the spec cannot be set up
/// (bad PIN, enrollment failure, out-of-range user).
pub fn record_session(spec: &RecordSpec) -> Result<(EventLog, SupervisedOutcome), ReplayError> {
    let pop = Population::generate(&PopulationConfig {
        num_users: spec.users,
        seed: spec.population_seed,
        ..Default::default()
    });
    if spec.user >= pop.num_users() || pop.num_users() < 2 {
        return Err(ReplayError::Execution(format!(
            "user {} out of range for a {}-user cohort (need >= 2 users)",
            spec.user,
            pop.num_users()
        )));
    }
    let pin = Pin::new(&spec.pin).map_err(|e| ReplayError::Execution(format!("bad PIN: {e}")))?;
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<_> = (0..6)
        .map(|i| pop.record_entry(spec.user, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..12)
        .map(|i| {
            let other = (spec.user + 1 + (i as usize % (pop.num_users() - 1))) % pop.num_users();
            pop.record_entry(other, &pin, HandMode::OneHanded, &session, 5000 + i as u64)
        })
        .collect();
    let profile = system
        .enroll(&pin, &enroll, &third)
        .map_err(|e| ReplayError::Execution(format!("enrollment failed: {e}")))?;
    let legit = pop.record_entry(
        spec.user,
        &pin,
        HandMode::OneHanded,
        &session,
        610 + spec.nonce,
    );

    let mut log = EventLog::new(spec.seeds());
    spec.stamp(&mut log);
    let log = Rc::new(RefCell::new(log));

    // One acquisition per collection attempt, mirroring the
    // session_chaos matrix: sensor faults first, then the reliable
    // transfer over seeded faulty links, logging every link-layer
    // statistic and the delivered batch's digest.
    let acquire_log = Rc::clone(&log);
    let attempt_fn = |attempt: u32| -> Option<(Recording, LinkQuality)> {
        let attempt_nonce = u64::from(attempt);
        let sampled = if spec.chaos.sensor_active() {
            inject_sensor_faults(&legit, &spec.sensor_faults(), attempt_nonce).0
        } else {
            legit.clone()
        };
        let (delivered, quality) = if spec.chaos.link_active() {
            let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
            let faults = FaultConfig {
                drop_rate: spec.loss,
                corrupt_rate: spec.corrupt,
                seed: spec.chaos_seed ^ (attempt_nonce << 8),
                ..FaultConfig::default()
            };
            let mut data = FaultyLink::new(LinkConfig::default(), faults);
            let mut keys = FaultyLink::new(
                LinkConfig {
                    seed: 0x4b,
                    ..LinkConfig::default()
                },
                FaultConfig {
                    seed: faults.seed ^ 0x1234,
                    ..faults
                },
            );
            let (result, stats) = transmit_reliable(
                &sampled,
                &device,
                &mut data,
                &mut keys,
                &ReliableConfig::default(),
            );
            {
                let mut log = acquire_log.borrow_mut();
                log.push(SessionEvent::LinkFrames {
                    attempt,
                    sent: stats.data_packets as u64,
                    delivered: stats.delivered_unique as u64,
                    bytes: stats.forward_bytes as u64,
                    digest: u64::from(stats.forward_digest),
                });
                log.push(SessionEvent::LinkCorrupt {
                    attempt,
                    corrupt: stats.corrupt_discarded as u64,
                    duplicates: stats.duplicates as u64,
                    late: stats.late_dropped as u64,
                });
                log.push(SessionEvent::LinkNack {
                    attempt,
                    nacks: stats.nacks_sent as u64,
                    backoffs: stats.backoff_waits as u64,
                    backoff_us: stats.backoff_wait_us,
                });
                log.push(SessionEvent::LinkRetransmit {
                    attempt,
                    retransmissions: stats.retransmissions as u64,
                    gaps_abandoned: stats.gaps_abandoned as u64,
                });
            }
            // A failed transfer models a hung collection: the link
            // events above still record what the wire did.
            result.ok()?
        } else {
            (
                sampled,
                LinkQuality {
                    coverage: 1.0,
                    expected_blocks: 1,
                    received_blocks: 1,
                    gap_blocks: 0,
                },
            )
        };
        {
            let mut log = acquire_log.borrow_mut();
            log.push(SessionEvent::LinkCoverage {
                attempt,
                coverage: quality.coverage,
                expected: quality.expected_blocks as u64,
                received: quality.received_blocks as u64,
                gaps: quality.gap_blocks as u64,
            });
            log.push(SessionEvent::SampleBatch {
                attempt,
                channels: delivered.num_channels() as u32,
                samples: delivered.num_samples() as u64,
                keystrokes: delivered.reported_key_times.len() as u32,
                digest: batch_digest(&delivered),
            });
        }
        Some((delivered, quality))
    };

    let mut observer = LogObserver {
        log: Rc::clone(&log),
    };
    let outcome = run_supervised_observed(
        &system,
        &profile,
        Some(&pin),
        &SupervisorConfig::default(),
        attempt_fn,
        &mut observer,
    );
    log.borrow_mut().push(SessionEvent::SessionEnd {
        state: outcome.state.as_str().to_string(),
        attempts: outcome.attempts,
        accepted: outcome.accepted(),
    });
    drop(observer);
    drop(acquire_log);
    let log = Rc::try_unwrap(log)
        .map_err(|_| ReplayError::Execution("log still shared after session".to_string()))?
        .into_inner();
    Ok((log, outcome))
}

/// Re-executes the session a log records and diffs the re-derived
/// stream against it. `Ok` means every event — every SQI value,
/// coverage metric, vote weight, state transition — reproduced
/// bit-identically.
///
/// # Errors
///
/// [`ReplayError::Divergence`] carries the first divergent event;
/// decode/spec/setup failures use the other variants.
pub fn verify_replay(recorded: &EventLog) -> Result<SupervisedOutcome, ReplayError> {
    let spec = RecordSpec::from_log(recorded)?;
    let (replayed, outcome) = record_session(&spec)?;
    match recorded.first_divergence(&replayed) {
        None => Ok(outcome),
        Some(d) => Err(ReplayError::Divergence(Box::new(d))),
    }
}

/// Renders a log's summary: header, spec, event counts by type, and
/// the terminal state. Pure inspection — no re-execution — so the
/// output is identical everywhere the log parses.
#[must_use]
pub fn summarize(log: &EventLog) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema: {}", p2auth_obs::events::EVENTS_SCHEMA);
    let _ = writeln!(
        out,
        "seeds: population {} chaos {} nonce {}",
        log.seeds.population, log.seeds.chaos, log.seeds.nonce
    );
    for (k, v) in &log.meta {
        let _ = writeln!(out, "{k}: {v}");
    }
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for ev in &log.events {
        *counts.entry(ev.event.type_tag()).or_insert(0) += 1;
    }
    let _ = writeln!(out, "events: {}", log.len());
    for (tag, n) in &counts {
        let _ = writeln!(out, "  {tag}: {n}");
    }
    for ev in &log.events {
        if let SessionEvent::SessionEnd {
            state,
            attempts,
            accepted,
        } = &ev.event
        {
            let _ = writeln!(
                out,
                "session: {state} after {attempts} attempt(s), accepted {accepted}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> RecordSpec {
        RecordSpec::default()
    }

    #[test]
    fn spec_round_trips_through_log_metadata() {
        let mut spec = quick_spec();
        spec.chaos_seed = 7;
        spec.nonce = 3;
        spec.sensor_preset = Some((SensorFaultKind::Motion, 0.8));
        let mut log = EventLog::new(spec.seeds());
        spec.stamp(&mut log);
        let back = RecordSpec::from_log(&log).expect("spec reconstructs");
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_missing_key_is_a_spec_error() {
        let log = EventLog::new(SessionSeeds::default());
        assert!(matches!(
            RecordSpec::from_log(&log),
            Err(ReplayError::Spec(_))
        ));
    }

    #[test]
    fn bad_user_is_an_execution_error() {
        let spec = RecordSpec {
            user: 99,
            ..quick_spec()
        };
        assert!(matches!(
            record_session(&spec),
            Err(ReplayError::Execution(_))
        ));
    }
}
