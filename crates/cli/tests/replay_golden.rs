//! Pins the committed golden event log: it must decode, its canonical
//! encoding must be the committed bytes, and `replay --summary` must
//! render exactly the committed summary. Pure log inspection — no
//! re-execution — so this holds on any RNG backend. Regenerate both
//! files with:
//!
//! ```text
//! p2auth record --chaos sensor --chaos-seed 1 \
//!     --out crates/cli/tests/golden/session_chaos.events.json
//! p2auth replay crates/cli/tests/golden/session_chaos.events.json \
//!     --summary > crates/cli/tests/golden/session_chaos.summary.txt
//! ```

use p2auth_cli::replay::{summarize, RecordSpec};
use p2auth_obs::EventLog;

const GOLDEN_LOG: &str = include_str!("golden/session_chaos.events.json");
const GOLDEN_SUMMARY: &str = include_str!("golden/session_chaos.summary.txt");

#[test]
fn golden_log_decodes_and_is_canonical() {
    let log = EventLog::decode(GOLDEN_LOG.trim_end()).expect("golden decodes");
    assert!(!log.is_empty());
    assert_eq!(log.encode(), GOLDEN_LOG.trim_end(), "golden not canonical");
    // The embedded spec must stay reconstructable: replayability of
    // committed logs is part of the format contract.
    RecordSpec::from_log(&log).expect("golden spec reconstructs");
}

#[test]
fn golden_summary_matches() {
    let log = EventLog::decode(GOLDEN_LOG.trim_end()).expect("golden decodes");
    // The golden was captured from the CLI, whose `println!` appends
    // one newline to the summary.
    assert_eq!(
        format!("{}\n", summarize(&log)),
        GOLDEN_SUMMARY,
        "summary drifted"
    );
}
