//! End-to-end record/replay determinism: a recorded chaos session
//! replays bit-identically within one build, a mutated log reports the
//! first divergent event, and a truncated log yields a typed error.

use p2auth_cli::replay::{record_session, verify_replay, ChaosMode, RecordSpec, ReplayError};
use p2auth_obs::events::{EventLog, LogDivergence, SessionEvent};

fn chaos_spec() -> RecordSpec {
    RecordSpec {
        chaos: ChaosMode::Both,
        chaos_seed: 1,
        ..RecordSpec::default()
    }
}

#[test]
fn recorded_session_replays_bit_identically() {
    let (log, outcome) = record_session(&chaos_spec()).expect("recording runs");
    assert!(!log.is_empty());
    assert!(outcome.attempts >= 1);
    // The log survives its own serialization...
    let decoded = EventLog::decode(&log.encode()).expect("log round-trips");
    assert_eq!(decoded, log);
    // ...and re-executing from nothing but the decoded log reproduces
    // every event — every digest, SQI, vote weight and transition.
    let replayed = verify_replay(&decoded).expect("replay is bit-identical");
    assert_eq!(replayed.state, outcome.state);
    assert_eq!(replayed.attempts, outcome.attempts);
}

#[test]
fn sensorless_and_linkless_modes_replay_too() {
    for chaos in [ChaosMode::None, ChaosMode::Sensor, ChaosMode::Link] {
        let spec = RecordSpec {
            chaos,
            ..chaos_spec()
        };
        let (log, _) = record_session(&spec).expect("recording runs");
        verify_replay(&log).unwrap_or_else(|e| panic!("{chaos} replay diverged: {e}"));
    }
}

#[test]
fn mutated_log_reports_the_first_divergent_event() {
    // Sensor-only chaos: the link is bypassed, so a sample batch is
    // always delivered and recorded regardless of the RNG backend.
    let spec = RecordSpec {
        chaos: ChaosMode::Sensor,
        ..chaos_spec()
    };
    let (mut log, _) = record_session(&spec).expect("recording runs");
    // Corrupt one recorded value the way a buggy recorder (or a tampered
    // file) would: the replay must pinpoint exactly that event.
    let victim = log
        .events
        .iter()
        .position(|e| matches!(e.event, SessionEvent::SampleBatch { .. }))
        .expect("chaos session records sample batches");
    if let SessionEvent::SampleBatch { digest, .. } = &mut log.events[victim].event {
        *digest ^= 1;
    }
    match verify_replay(&log) {
        Err(ReplayError::Divergence(d)) => match *d {
            LogDivergence::Event { seq, .. } => {
                assert_eq!(seq, log.events[victim].seq, "wrong event blamed");
            }
            other => panic!("expected event divergence, got {other}"),
        },
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn truncated_log_is_a_typed_error_not_a_partial_replay() {
    let (log, _) = record_session(&chaos_spec()).expect("recording runs");
    let text = log.encode();
    let cut = text.len() / 2;
    let mut prefix = &text[..cut];
    while !text.is_char_boundary(prefix.len()) {
        prefix = &prefix[..prefix.len() - 1];
    }
    assert!(matches!(EventLog::decode(prefix), Err(_)));
}

#[test]
fn log_without_a_spec_cannot_be_replayed() {
    let log = EventLog::new(Default::default());
    assert!(matches!(verify_replay(&log), Err(ReplayError::Spec(_))));
}
