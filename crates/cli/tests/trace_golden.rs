//! Golden test for `p2auth trace --structure-only`: the span-tree
//! structure of a traced enroll + auth session is pinned against a
//! committed golden file. Timings and counter values vary run to run
//! and RNG backend to RNG backend; the *set of span paths* — which
//! stages ran, nested under what — must not drift silently.
#![cfg(feature = "obs")]

use p2auth_cli::args::ParsedArgs;
use p2auth_cli::commands::dispatch;

#[test]
fn trace_structure_matches_golden() {
    let args = ParsedArgs::parse(["trace", "--structure-only"]).expect("parse");
    let got = dispatch(&args).expect("trace runs");
    let want = include_str!("golden/trace_structure.txt");
    assert_eq!(
        got.trim(),
        want.trim(),
        "span structure drifted; regenerate with \
         `cargo run -p p2auth-cli -- trace --structure-only` if intended"
    );
}

#[test]
fn trace_report_covers_the_link_path() {
    let args = ParsedArgs::parse(["trace"]).expect("parse");
    let out = dispatch(&args).expect("trace runs");
    // The acceptance checklist: the default report must show the
    // pipeline stages and the device link path with frame/retransmit
    // counters under loss.
    for needle in [
        "core.preprocess.calibrate",
        "core.preprocess.case_id",
        "core.segmentation",
        "core.fusion",
        "rocket.transform",
        "core.decision",
        "device.reliable.transmit",
        "device.host.frames",
        "device.reliable.retransmissions",
        "flight recorder",
    ] {
        assert!(out.contains(needle), "trace output lacks {needle}:\n{out}");
    }
}
