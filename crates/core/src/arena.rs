//! Per-profile constant arena: precomputed fused scorers shared across
//! authentication sessions.
//!
//! [`crate::UserProfile`] stores each model as a fitted transform plus
//! a classifier; scoring through it materializes a feature vector and
//! re-reads two separately allocated tables per decision.
//! [`ProfileArena`] folds every enrolled model into a
//! [`p2auth_rocket::FusedScorer`] once — bias quantiles, dilation
//! tables and ridge/logistic weights compacted into per-feature
//! `(bias, weight)` pairs — so steady-state authentication is
//! transform-and-score with **no materialized feature vector and no
//! heap allocation** (given a warm [`SessionScratch`]).
//!
//! The arena is immutable and self-contained: build it once per
//! enrolled profile (e.g. at unlock-screen bring-up or fleet-server
//! profile load) and share it across every session that authenticates
//! against that user. [`ProfileArena::bytes`] reports the resident
//! size; DESIGN.md §11 carries the memory-budget table showing ~1M
//! operating-shape profiles fit in half a terabyte — a single large
//! server — with the f32 lane halving the dominant table.
//!
//! Decisions are **bit-identical** to the [`crate::UserProfile`] path:
//! the fused sweep reproduces `dot(w, φ(x)) + b` exactly in f64 (see
//! `p2auth_rocket::FusedScorer`), and the logistic mapping applies the
//! same `sigmoid(z) − 0.5` to an identical `z`.

use crate::enroll::{KeyClassifier, UserProfile, WaveModel};
use crate::error::AuthError;
use crate::types::Pin;
use p2auth_rocket::{ConvScratch, FusedScorer, MultiSeries};
use std::collections::BTreeMap;

/// Reusable per-session scratch for the authentication hot path: the
/// convolution buffers plus a feature buffer for the materialized
/// (non-arena) path. Create once per session (or per worker) and pass
/// to every decision; after the first attempt at each model shape, no
/// further heap allocation occurs in the rocket/ml layers.
#[derive(Debug)]
pub struct SessionScratch {
    pub(crate) conv: ConvScratch,
    /// Feature buffer for the materialized path; cleared (capacity
    /// kept) before each transform.
    pub(crate) features: Vec<f64>,
}

impl SessionScratch {
    /// Creates an empty scratch; buffers size themselves on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            conv: ConvScratch::new(0),
            features: Vec::new(),
        }
    }
}

impl Default for SessionScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// How a fused margin maps to the decision value the classifier
/// produced on the materialized path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ScoreKind {
    /// Ridge: the margin is the decision.
    Linear,
    /// Logistic: `sigmoid(margin) − 0.5`, matching
    /// `LogisticClassifier::probability − 0.5`.
    Logistic,
}

/// One enrolled model folded for fused scoring.
#[derive(Debug, Clone)]
pub(crate) struct FusedModel {
    scorer: FusedScorer,
    kind: ScoreKind,
}

impl FusedModel {
    fn from_wave(model: &WaveModel) -> Self {
        match &model.clf {
            KeyClassifier::Ridge(c) => Self {
                scorer: FusedScorer::new(&model.rocket, c.weights(), c.intercept()),
                kind: ScoreKind::Linear,
            },
            KeyClassifier::Logistic(c) => Self {
                scorer: FusedScorer::new(&model.rocket, c.weights(), c.intercept()),
                kind: ScoreKind::Logistic,
            },
        }
    }

    /// Decision value for one (already z-normalized) series; positive
    /// means "legitimate". Mirrors `WaveModel::decision` bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError::ProfileMismatch`] when the series shape
    /// does not match what the model was fitted on.
    pub(crate) fn decision(
        &self,
        s: &MultiSeries,
        conv: &mut ConvScratch,
    ) -> Result<f64, AuthError> {
        if s.len() != self.scorer.input_length() || s.num_channels() != self.scorer.num_channels() {
            return Err(AuthError::ProfileMismatch {
                detail: format!(
                    "series shape {}×{} does not match model input {}×{} \
                     (was the profile enrolled with a different config?)",
                    s.num_channels(),
                    s.len(),
                    self.scorer.num_channels(),
                    self.scorer.input_length(),
                ),
            });
        }
        let z = self.scorer.score(s, conv);
        Ok(match self.kind {
            ScoreKind::Linear => z,
            ScoreKind::Logistic => 1.0 / (1.0 + (-z).exp()) - 0.5,
        })
    }

    fn bytes(&self) -> usize {
        self.scorer.arena_bytes()
    }
}

/// A profile's constant tables folded for the fused single-auth hot
/// path. Build with [`ProfileArena::build`] (or
/// [`crate::P2Auth::arena`]), then authenticate with
/// [`crate::auth::authenticate_arena`] /
/// [`crate::P2Auth::authenticate_arena`].
#[derive(Debug, Clone)]
pub struct ProfileArena {
    pub(crate) pin: Option<Pin>,
    pub(crate) privacy_boost: bool,
    pub(crate) sample_rate: f64,
    pub(crate) num_channels: usize,
    pub(crate) perfusion_range: Option<(f64, f64)>,
    pub(crate) full: Option<FusedModel>,
    pub(crate) boost: Option<FusedModel>,
    pub(crate) per_key: BTreeMap<u8, FusedModel>,
}

impl ProfileArena {
    /// Folds every enrolled model of `profile` into fused scorers.
    #[must_use]
    pub fn build(profile: &UserProfile) -> Self {
        let _span = p2auth_obs::span!("core.arena.build");
        p2auth_obs::counter!("core.arena.builds").incr();
        let arena = Self {
            pin: profile.pin.clone(),
            privacy_boost: profile.privacy_boost,
            sample_rate: profile.sample_rate,
            num_channels: profile.num_channels,
            perfusion_range: profile.perfusion_range,
            full: profile.full.as_ref().map(FusedModel::from_wave),
            boost: profile.boost.as_ref().map(FusedModel::from_wave),
            per_key: profile
                .per_key
                .iter()
                .map(|(&d, m)| (d, FusedModel::from_wave(m)))
                .collect(),
        };
        p2auth_obs::gauge!("core.arena.bytes").set(arena.bytes() as f64);
        arena
    }

    /// Number of folded models (full + boost + per-key).
    #[must_use]
    pub fn num_models(&self) -> usize {
        usize::from(self.full.is_some()) + usize::from(self.boost.is_some()) + self.per_key.len()
    }

    /// Resident size of the arena's constant tables in bytes (heap +
    /// inline). The memory-budget table in DESIGN.md §11 is derived
    /// from this accounting.
    #[must_use]
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.full.as_ref().map_or(0, FusedModel::bytes)
            + self.boost.as_ref().map_or(0, FusedModel::bytes)
            + self
                .per_key
                .values()
                .map(|m| std::mem::size_of::<(u8, FusedModel)>() + m.bytes())
                .sum::<usize>()
    }
}

// Concurrency contract, pinned at compile time: a fleet scheduler
// shares one `ProfileArena` read-only across worker threads (all
// scoring goes through `&self`), while every worker owns its
// `SessionScratch` outright and may move it between sessions. Interior
// mutability sneaking into a fused-scorer table would surface here as a
// build break, not a data race.
const _: () = {
    const fn shared_across_workers<T: Send + Sync>() {}
    const fn owned_per_worker<T: Send>() {}
    shared_across_workers::<ProfileArena>();
    owned_per_worker::<SessionScratch>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use p2auth_ml::logistic::{LogisticClassifier, LogisticConfig};
    use p2auth_ml::ridge::{RidgeClassifier, RidgeCvConfig};
    use p2auth_rocket::{MiniRocket, MiniRocketConfig};

    fn sine_series(n: usize, freq: f64, channels: usize) -> MultiSeries {
        let data: Vec<Vec<f64>> = (0..channels)
            .map(|c| {
                (0..n)
                    .map(|i| ((i as f64 + c as f64 * 3.0) * freq).sin())
                    .collect()
            })
            .collect();
        MultiSeries::new(data).unwrap()
    }

    /// Trains a small but real WaveModel (fitted transform + fitted
    /// classifier) on synthetic series.
    fn trained_model(logistic: bool, seed: u64) -> (WaveModel, Vec<MultiSeries>) {
        let positives: Vec<MultiSeries> = (0..4)
            .map(|i| sine_series(90, 0.3 + 0.02 * i as f64, 2))
            .collect();
        let negatives: Vec<MultiSeries> = (0..4)
            .map(|i| sine_series(90, 0.9 + 0.05 * i as f64, 2))
            .collect();
        let train: Vec<MultiSeries> = positives.iter().chain(&negatives).cloned().collect();
        let cfg = MiniRocketConfig {
            seed,
            num_features: 168,
            ..Default::default()
        };
        let rocket = MiniRocket::fit(&cfg, &train).unwrap();
        let x = rocket.transform(&train);
        let y: Vec<i8> = (0..8).map(|i| if i < 4 { 1 } else { -1 }).collect();
        let clf = if logistic {
            KeyClassifier::Logistic(
                LogisticClassifier::fit_matrix(&LogisticConfig::default(), &x, &y).unwrap(),
            )
        } else {
            KeyClassifier::Ridge(
                RidgeClassifier::fit_matrix(&RidgeCvConfig::default(), &x, &y).unwrap(),
            )
        };
        (WaveModel { rocket, clf }, train)
    }

    #[test]
    fn arena_decisions_bit_identical_to_wave_models() {
        // The fused arena path must reproduce the materialized
        // WaveModel decision bit-for-bit, for both classifier kinds.
        for (logistic, seed) in [(false, 7_u64), (true, 7), (false, 41), (true, 41)] {
            let (model, probes) = trained_model(logistic, seed);
            let mut profile = UserProfile {
                pin: None,
                privacy_boost: false,
                sample_rate: 100.0,
                num_channels: 2,
                full: Some(model),
                boost: None,
                per_key: BTreeMap::new(),
                perfusion_range: None,
            };
            let arena = ProfileArena::build(&profile);
            let fused = arena.full.as_ref().unwrap();
            let wave = profile.full.as_mut().unwrap();
            let mut cx = SessionScratch::new();
            for probe in &probes {
                let direct = wave.decision_with(probe, &mut cx).unwrap();
                let via_arena = fused.decision(probe, &mut cx.conv).unwrap();
                assert_eq!(
                    via_arena.to_bits(),
                    direct.to_bits(),
                    "logistic={logistic} seed={seed}: {via_arena} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn arena_shape_mismatch_is_an_error() {
        let (model, _) = trained_model(false, 3);
        let profile = UserProfile {
            pin: None,
            privacy_boost: false,
            sample_rate: 100.0,
            num_channels: 2,
            full: Some(model),
            boost: None,
            per_key: BTreeMap::new(),
            perfusion_range: None,
        };
        let arena = ProfileArena::build(&profile);
        let mut cx = SessionScratch::new();
        let wrong_shape = sine_series(40, 0.3, 2);
        assert!(matches!(
            arena
                .full
                .as_ref()
                .unwrap()
                .decision(&wrong_shape, &mut cx.conv),
            Err(AuthError::ProfileMismatch { .. })
        ));
    }

    #[test]
    fn arena_budget_fits_a_million_paper_profiles() {
        // Operating shape: 840 features/model (the budget used
        // throughout the reproduction), full + boost + 10 per-key
        // models. The DESIGN.md §11 table states ~1M profiles in half
        // a terabyte; assert the 512 KiB/profile line it uses.
        let (model, _) = trained_model(false, 9);
        let per_model = FusedModel::from_wave(&model).bytes();
        // The test model has 168 features; scale to the operating 840
        // and 12 models. Dominant term is 16 bytes/feature
        // (one `(bias, weight)` pair).
        let op_model = per_model + (840 - model.rocket.num_output_features()) * 16;
        let op_profile = 12 * op_model;
        assert!(
            op_profile < 512 * 1024,
            "per-profile arena {op_profile} bytes exceeds the 512 KiB budget line"
        );
    }

    #[test]
    fn empty_profile_arena_has_no_models() {
        let profile = UserProfile {
            pin: None,
            privacy_boost: false,
            sample_rate: 100.0,
            num_channels: 1,
            full: None,
            boost: None,
            per_key: BTreeMap::new(),
            perfusion_range: None,
        };
        let arena = ProfileArena::build(&profile);
        assert_eq!(arena.num_models(), 0);
        assert!(arena.bytes() >= std::mem::size_of::<ProfileArena>());
    }

    #[test]
    fn session_scratch_default_is_empty() {
        let cx = SessionScratch::default();
        assert!(cx.features.is_empty());
    }
}
