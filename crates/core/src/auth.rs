//! Authentication phase (paper §IV-B 3): PIN verification, input-case
//! dispatch, per-keystroke classification and results integration.

use crate::arena::{ProfileArena, SessionScratch};
use crate::config::{DegradedFallback, P2AuthConfig, PinPolicy};
use crate::enroll::{extract_for_auth, UserProfile};
use crate::error::AuthError;
use crate::preprocess::{self, InputCase};
use crate::types::{Pin, Recording};
use p2auth_rocket::MultiSeries;

/// The two interchangeable profile representations the decision logic
/// can score against: the stored [`UserProfile`] (materialized
/// transform-then-dot) or its folded [`ProfileArena`] (fused
/// transform-and-score). Decisions are bit-identical between the two
/// (pinned by `arena_decisions_bit_identical`).
#[derive(Clone, Copy)]
enum ProfileRef<'a> {
    Direct(&'a UserProfile),
    Arena(&'a ProfileArena),
}

impl ProfileRef<'_> {
    fn num_channels(&self) -> usize {
        match self {
            Self::Direct(p) => p.num_channels,
            Self::Arena(a) => a.num_channels,
        }
    }

    fn sample_rate(&self) -> f64 {
        match self {
            Self::Direct(p) => p.sample_rate,
            Self::Arena(a) => a.sample_rate,
        }
    }

    fn pin(&self) -> Option<&Pin> {
        match self {
            Self::Direct(p) => p.pin.as_ref(),
            Self::Arena(a) => a.pin.as_ref(),
        }
    }

    fn privacy_boost(&self) -> bool {
        match self {
            Self::Direct(p) => p.privacy_boost,
            Self::Arena(a) => a.privacy_boost,
        }
    }

    fn perfusion_range(&self) -> Option<(f64, f64)> {
        match self {
            Self::Direct(p) => p.perfusion_range,
            Self::Arena(a) => a.perfusion_range,
        }
    }

    /// Privacy-boost model decision, if a boost model is enrolled.
    fn boost_decision(
        &self,
        s: &MultiSeries,
        cx: &mut SessionScratch,
    ) -> Option<Result<f64, AuthError>> {
        match self {
            Self::Direct(p) => p.boost.as_ref().map(|m| m.decision_with(s, cx)),
            Self::Arena(a) => a.boost.as_ref().map(|m| m.decision(s, &mut cx.conv)),
        }
    }

    /// Full-waveform model decision, if a full model is enrolled.
    fn full_decision(
        &self,
        s: &MultiSeries,
        cx: &mut SessionScratch,
    ) -> Option<Result<f64, AuthError>> {
        match self {
            Self::Direct(p) => p.full.as_ref().map(|m| m.decision_with(s, cx)),
            Self::Arena(a) => a.full.as_ref().map(|m| m.decision(s, &mut cx.conv)),
        }
    }

    /// Per-key single-waveform model decision, if one exists for `digit`.
    fn key_decision(
        &self,
        digit: u8,
        s: &MultiSeries,
        cx: &mut SessionScratch,
    ) -> Option<Result<f64, AuthError>> {
        match self {
            Self::Direct(p) => p.per_key.get(&digit).map(|m| m.decision_with(s, cx)),
            Self::Arena(a) => a.per_key.get(&digit).map(|m| m.decision(s, &mut cx.conv)),
        }
    }
}

/// Why an attempt was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The entered PIN does not match the enrolled PIN.
    WrongPin,
    /// No PIN supplied but the policy requires one.
    PinRequired,
    /// One or zero keystroke events detected — rejected outright
    /// "for the sake of system security" (paper §IV-B 2.6).
    InsufficientKeystrokes,
    /// The PPG biometric check failed.
    BiometricMismatch,
    /// No trained model exists for the attempted case/keys.
    MissingModel,
    /// The link delivered too little PPG data for the biometric factor
    /// and the degraded-mode policy rejects such sessions.
    DegradedChannel,
    /// Signal-quality gating excluded too many keystroke segments to
    /// decide — the signal was bad, not the person wrong. The session
    /// supervisor re-prompts on this reason instead of counting it as
    /// a biometric failure.
    PoorSignal,
}

impl RejectReason {
    /// Stable machine-readable name, used in telemetry events and logs.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::WrongPin => "wrong_pin",
            Self::PinRequired => "pin_required",
            Self::InsufficientKeystrokes => "insufficient_keystrokes",
            Self::BiometricMismatch => "biometric_mismatch",
            Self::MissingModel => "missing_model",
            Self::DegradedChannel => "degraded_channel",
            Self::PoorSignal => "poor_signal",
        }
    }
}

/// Outcome of classifying one keystroke waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeystrokeVote {
    /// Index of the keystroke within the entry.
    pub index: usize,
    /// The digit typed.
    pub digit: u8,
    /// Whether the single-waveform model accepted it.
    pub passed: bool,
    /// Raw decision value (positive = legitimate).
    pub score: f64,
    /// Quality weight of this vote: the segment's SQI under quality
    /// gating, exactly 1.0 on clean signal or with gating disabled.
    pub weight: f64,
}

/// The full decision for one authentication attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AuthDecision {
    /// Final verdict.
    pub accepted: bool,
    /// Input case resolved by preprocessing.
    pub case: InputCase,
    /// Reason for rejection (`None` when accepted).
    pub reason: Option<RejectReason>,
    /// Per-keystroke votes (empty on the full-waveform path).
    pub keystroke_votes: Vec<KeystrokeVote>,
    /// Aggregate decision score (mean of the scores that were computed).
    pub score: f64,
}

impl AuthDecision {
    fn reject(case: InputCase, reason: RejectReason) -> Self {
        Self {
            accepted: false,
            case,
            reason: Some(reason),
            keystroke_votes: Vec::new(),
            score: 0.0,
        }
    }
}

/// Records the final verdict in the telemetry counters and the flight
/// recorder, then passes the decision through unchanged.
fn finish(decision: AuthDecision) -> AuthDecision {
    if decision.accepted {
        p2auth_obs::counter!("core.auth.accepted").incr();
        p2auth_obs::event!("core.auth", "accepted", score = decision.score);
    } else {
        p2auth_obs::counter!("core.auth.rejected").incr();
        let reason = decision.reason.map_or("unknown", RejectReason::as_str);
        p2auth_obs::event!(
            "core.auth",
            "rejected",
            reason = reason,
            score = decision.score,
        );
    }
    decision
}

/// Authenticates one attempt. `claimed_pin` of `None` selects the
/// no-PIN flow (allowed only under [`PinPolicy::NoPinAllowed`]).
///
/// # Errors
///
/// Returns [`AuthError`] for malformed recordings or a channel-count
/// mismatch with the profile. A failed factor is expressed in the
/// returned [`AuthDecision`], not as an error.
pub fn authenticate(
    config: &P2AuthConfig,
    profile: &UserProfile,
    claimed_pin: Option<&Pin>,
    attempt: &Recording,
) -> Result<AuthDecision, AuthError> {
    let mut cx = SessionScratch::new();
    authenticate_impl(
        config,
        ProfileRef::Direct(profile),
        claimed_pin,
        attempt,
        &mut cx,
    )
}

/// [`authenticate`] against a prebuilt [`ProfileArena`], reusing the
/// caller's [`SessionScratch`]: the fused single-auth hot path. The
/// decision is bit-identical to [`authenticate`] on the profile the
/// arena was built from; steady state performs no heap allocation in
/// the rocket/ml layers.
///
/// # Errors
///
/// Same conditions as [`authenticate`].
pub fn authenticate_arena(
    config: &P2AuthConfig,
    arena: &ProfileArena,
    cx: &mut SessionScratch,
    claimed_pin: Option<&Pin>,
    attempt: &Recording,
) -> Result<AuthDecision, AuthError> {
    authenticate_impl(config, ProfileRef::Arena(arena), claimed_pin, attempt, cx)
}

fn authenticate_impl(
    config: &P2AuthConfig,
    profile: ProfileRef<'_>,
    claimed_pin: Option<&Pin>,
    attempt: &Recording,
    cx: &mut SessionScratch,
) -> Result<AuthDecision, AuthError> {
    let _span = p2auth_obs::span!("core.auth");
    p2auth_obs::counter!("core.auth.attempts").incr();
    attempt.validate().map_err(|detail| {
        p2auth_obs::event!("core.auth", "invalid_recording");
        AuthError::InvalidRecording { detail }
    })?;
    if attempt.num_channels() != profile.num_channels() {
        p2auth_obs::event!(
            "core.auth",
            "profile_mismatch",
            attempt_channels = attempt.num_channels(),
            profile_channels = profile.num_channels(),
        );
        return Err(AuthError::ProfileMismatch {
            detail: format!(
                "attempt has {} channels, profile trained with {}",
                attempt.num_channels(),
                profile.num_channels()
            ),
        });
    }
    // Bring the attempt to the profile's rate if needed (the models are
    // rate-specific).
    let resampled;
    let attempt = if (attempt.sample_rate - profile.sample_rate()).abs() > 1e-9 {
        resampled = attempt.resample(profile.sample_rate());
        &resampled
    } else {
        attempt
    };

    // ---- Factor 1: PIN verification --------------------------------
    let no_pin_flow = match (claimed_pin, profile.pin()) {
        (Some(claimed), Some(stored)) => {
            if claimed != stored || &attempt.pin_entered != stored {
                return Ok(finish(AuthDecision::reject(
                    InputCase::Insufficient,
                    RejectReason::WrongPin,
                )));
            }
            false
        }
        (Some(_), None) => {
            // Profile enrolled without a PIN: fall back to pattern-only.
            true
        }
        (None, _) => {
            if config.pin_policy != PinPolicy::NoPinAllowed {
                return Ok(finish(AuthDecision::reject(
                    InputCase::Insufficient,
                    RejectReason::PinRequired,
                )));
            }
            true
        }
    };

    // ---- Factor 2: keystroke-induced PPG ----------------------------
    let pre = preprocess::preprocess(config, attempt)?;
    let case = pre.case.case;
    let extracted = extract_for_auth(config, attempt, &pre)?;
    let quals = crate::quality::score_all(&extracted.seg_stats, profile.perfusion_range());
    for q in &quals {
        p2auth_obs::histogram!("core.quality.sqi_milli").record((q.sqi * 1000.0) as u64);
    }
    // Whether every detected segment clears the quality floor; a clean
    // session always does (every segment scores exactly 1.0), so this
    // only diverts the one-handed full-waveform path under real faults.
    let quality_clean = !config.sqi_gating || quals.iter().all(|q| q.usable(config.sqi_floor));

    let _decision_span = p2auth_obs::span!("core.decision");
    if no_pin_flow {
        // No-PIN: keystroke pattern only, on whatever keys were typed.
        return per_keystroke_decision(
            config,
            profile,
            case,
            &pre.case.present,
            attempt,
            &extracted,
            &quals,
            cx,
        )
        .map(finish);
    }

    match case {
        InputCase::OneHanded if quality_clean => {
            // Privacy boost replaces the full waveform when enabled.
            if profile.privacy_boost() {
                if let Some(fused) = &extracted.fused {
                    if let Some(score) = profile.boost_decision(fused, cx) {
                        return Ok(finish(full_decision(case, score?)));
                    }
                }
            }
            if let Some(full) = &extracted.full {
                if let Some(score) = profile.full_decision(full, cx) {
                    return Ok(finish(full_decision(case, score?)));
                }
            }
            // No full model (e.g. user enrolled two-handed only): fall
            // back to per-keystroke majority.
            per_keystroke_decision(
                config,
                profile,
                case,
                &pre.case.present,
                attempt,
                &extracted,
                &quals,
                cx,
            )
            .map(finish)
        }
        InputCase::OneHanded | InputCase::TwoHandedThree | InputCase::TwoHandedTwo => {
            // A one-handed attempt with sub-floor segments skips the
            // full-waveform model (it would span the faulty region) and
            // votes on the usable keystrokes instead.
            per_keystroke_decision(
                config,
                profile,
                case,
                &pre.case.present,
                attempt,
                &extracted,
                &quals,
                cx,
            )
            .map(finish)
        }
        InputCase::Insufficient => Ok(finish(AuthDecision::reject(
            case,
            RejectReason::InsufficientKeystrokes,
        ))),
    }
}

/// Authenticates a session whose PPG stream was too degraded for the
/// biometric factor (coverage below
/// [`P2AuthConfig::min_ppg_coverage`]): the configured
/// [`DegradedFallback`] decides. Under [`DegradedFallback::Reject`]
/// the attempt is rejected with [`RejectReason::DegradedChannel`];
/// under [`DegradedFallback::PinOnly`] the knowledge factor alone is
/// verified — the same triple-match as the main flow (claimed PIN,
/// stored PIN, and the digits actually typed must all agree) — and the
/// score is 0, so callers can tell a degraded accept from a biometric
/// one.
///
/// # Errors
///
/// Returns [`AuthError::InvalidRecording`] for malformed recordings,
/// and [`AuthError::DegradedUnavailable`] when PIN-only fallback is
/// configured but no claimed or enrolled PIN exists.
pub fn authenticate_degraded(
    config: &P2AuthConfig,
    profile: &UserProfile,
    claimed_pin: Option<&Pin>,
    attempt: &Recording,
) -> Result<AuthDecision, AuthError> {
    degraded_impl(config, profile.pin.as_ref(), claimed_pin, attempt)
}

/// [`authenticate_degraded`] against a prebuilt [`ProfileArena`]. The
/// degraded path never touches the biometric models, so this only
/// reads the arena's stored PIN; behavior is identical to the profile
/// variant.
///
/// # Errors
///
/// Same conditions as [`authenticate_degraded`].
pub fn authenticate_degraded_arena(
    config: &P2AuthConfig,
    arena: &ProfileArena,
    claimed_pin: Option<&Pin>,
    attempt: &Recording,
) -> Result<AuthDecision, AuthError> {
    degraded_impl(config, arena.pin.as_ref(), claimed_pin, attempt)
}

fn degraded_impl(
    config: &P2AuthConfig,
    stored_pin: Option<&Pin>,
    claimed_pin: Option<&Pin>,
    attempt: &Recording,
) -> Result<AuthDecision, AuthError> {
    let _span = p2auth_obs::span!("core.auth");
    p2auth_obs::counter!("core.auth.degraded_sessions").incr();
    attempt.validate().map_err(|detail| {
        p2auth_obs::event!("core.auth", "invalid_recording");
        AuthError::InvalidRecording { detail }
    })?;
    match config.degraded_fallback {
        DegradedFallback::Reject => Ok(finish(AuthDecision::reject(
            InputCase::Insufficient,
            RejectReason::DegradedChannel,
        ))),
        DegradedFallback::PinOnly => {
            let (claimed, stored) = match (claimed_pin, stored_pin) {
                (Some(c), Some(s)) => (c, s),
                (None, _) => {
                    p2auth_obs::event!("core.auth", "degraded_unavailable", missing = "claimed");
                    return Err(AuthError::DegradedUnavailable {
                        detail: "PIN-only fallback needs a claimed PIN".into(),
                    });
                }
                (_, None) => {
                    p2auth_obs::event!("core.auth", "degraded_unavailable", missing = "enrolled");
                    return Err(AuthError::DegradedUnavailable {
                        detail: "PIN-only fallback needs an enrolled PIN".into(),
                    });
                }
            };
            if claimed == stored && &attempt.pin_entered == stored {
                Ok(finish(AuthDecision {
                    accepted: true,
                    case: InputCase::Insufficient,
                    reason: None,
                    keystroke_votes: Vec::new(),
                    score: 0.0,
                }))
            } else {
                Ok(finish(AuthDecision::reject(
                    InputCase::Insufficient,
                    RejectReason::WrongPin,
                )))
            }
        }
    }
}

fn full_decision(case: InputCase, score: f64) -> AuthDecision {
    let accepted = score > 0.0;
    AuthDecision {
        accepted,
        case,
        reason: if accepted {
            None
        } else {
            Some(RejectReason::BiometricMismatch)
        },
        keystroke_votes: Vec::new(),
        score,
    }
}

/// Results integration for the per-keystroke (single-waveform) path
/// (paper §IV-B 3): with three detected keystrokes at least two must
/// pass; with two, both must; with more (no-PIN, one-handed fallback),
/// all but one must. A lone keystroke was already rejected upstream.
///
/// Under quality gating ([`P2AuthConfig::sqi_gating`]) each vote is
/// weighted by its segment's SQI and segments below the floor are
/// excluded instead of voting; when gating leaves fewer than two
/// usable keystrokes out of an otherwise decidable entry, the reject
/// reason is [`RejectReason::PoorSignal`] — bad signal, not a wrong
/// person. With every weight at 1.0 (clean signal, or gating off) the
/// weighted rule reduces exactly to the paper's counting rule.
#[allow(clippy::too_many_arguments)]
fn per_keystroke_decision(
    config: &P2AuthConfig,
    profile: ProfileRef<'_>,
    case: InputCase,
    present: &[bool],
    attempt: &Recording,
    extracted: &crate::enroll::ExtractedWaveforms,
    quals: &[crate::quality::SegmentQuality],
    cx: &mut SessionScratch,
) -> Result<AuthDecision, AuthError> {
    let digits = attempt.pin_entered.digits();
    let mut votes = Vec::new();
    let mut excluded = 0_usize;
    let mut seg_iter = extracted.segments.iter().zip(quals);
    for (i, &p) in present.iter().enumerate() {
        if !p {
            continue;
        }
        // INVARIANT: `extract_for_auth` pushes exactly one segment (and
        // one quality entry) per `present[i] == true`, in the same
        // iteration order as this loop, so the iterator cannot run dry.
        #[allow(clippy::expect_used)]
        let ((digit, series), qual) = seg_iter.next().expect("segment per present keystroke");
        debug_assert_eq!(*digit, digits[i]);
        if config.sqi_gating && !qual.usable(config.sqi_floor) {
            excluded += 1;
            p2auth_obs::counter!("core.quality.gated").incr();
            p2auth_obs::event!(
                "core.quality",
                "segment_gated",
                index = i,
                sqi = qual.sqi,
                flags = qual.flags.to_string(),
            );
            continue;
        }
        let weight = if config.sqi_gating { qual.sqi } else { 1.0 };
        let (passed, score) = match profile.key_decision(*digit, series, cx) {
            Some(result) => {
                let s = result?;
                (s > 0.0, s)
            }
            None => (false, f64::NEG_INFINITY),
        };
        votes.push(KeystrokeVote {
            index: i,
            digit: *digit,
            passed,
            score,
            weight,
        });
    }
    let n = votes.len();
    if n < 2 {
        // Distinguish "the signal was too bad to vote" from "the entry
        // never had enough keystrokes": if gating excluded segments
        // that would otherwise have made the entry decidable, this is a
        // quality failure, and the supervisor may re-prompt.
        let reason = if excluded > 0 && n + excluded >= 2 {
            RejectReason::PoorSignal
        } else {
            RejectReason::InsufficientKeystrokes
        };
        return Ok(AuthDecision::reject(case, reason));
    }
    let required = if n == 2 { 2 } else { n - 1 };
    let total_weight: f64 = votes.iter().map(|v| v.weight).sum();
    let passed_weight: f64 = votes.iter().filter(|v| v.passed).map(|v| v.weight).sum();
    // Weighted majority with the same pass fraction as the counting
    // rule; equal weights make the two rules coincide exactly.
    let accepted = passed_weight + 1e-9 >= (required as f64 / n as f64) * total_weight;
    let finite: Vec<f64> = votes
        .iter()
        .map(|v| v.score)
        .filter(|s| s.is_finite())
        .collect();
    let score = if finite.is_empty() {
        f64::NEG_INFINITY
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };
    let any_model = votes.iter().any(|v| v.score.is_finite());
    Ok(AuthDecision {
        accepted,
        case,
        reason: if accepted {
            None
        } else if any_model {
            Some(RejectReason::BiometricMismatch)
        } else {
            Some(RejectReason::MissingModel)
        },
        keystroke_votes: votes,
        score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enroll::UserProfile;
    use crate::types::{ChannelInfo, HandMode, Placement, UserId, Wavelength};
    use std::collections::BTreeMap;

    /// A profile with a stored PIN but no trained models — enough to
    /// exercise the decision plumbing without any training.
    fn stub_profile(pin: Option<Pin>) -> UserProfile {
        UserProfile {
            pin,
            privacy_boost: false,
            sample_rate: 100.0,
            num_channels: 1,
            full: None,
            boost: None,
            per_key: BTreeMap::new(),
            perfusion_range: None,
        }
    }

    /// A recording whose signal contains clear bursts at the reported
    /// keystroke times, so preprocessing detects all four keystrokes.
    fn burst_recording(pin: &str) -> Recording {
        let times = [120_usize, 230, 340, 450];
        let n = 580;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                let mut v = 0.2 * (t * 2.0 * std::f64::consts::PI / 85.0).sin();
                for &k in &times {
                    let d = (t - k as f64) / 5.0;
                    v += 2.0 * (-d * d).exp() * (0.9 * (t - k as f64)).sin();
                }
                v
            })
            .collect();
        Recording {
            user: UserId(0),
            sample_rate: 100.0,
            ppg: vec![x],
            channels: vec![ChannelInfo {
                wavelength: Wavelength::Infrared,
                placement: Placement::Radial,
            }],
            accel: None,
            pin_entered: Pin::new(pin).expect("valid"),
            reported_key_times: times.to_vec(),
            true_key_times: times.to_vec(),
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn wrong_pin_short_circuits_before_any_biometrics() {
        let cfg = P2AuthConfig::fast();
        let profile = stub_profile(Some(Pin::new("1628").expect("valid")));
        let wrong = Pin::new("9999").expect("valid");
        let attempt = burst_recording("9999");
        let d = authenticate(&cfg, &profile, Some(&wrong), &attempt).expect("runs");
        assert!(!d.accepted);
        assert_eq!(d.reason, Some(RejectReason::WrongPin));
        assert!(d.keystroke_votes.is_empty());
    }

    #[test]
    fn entered_pin_must_match_claimed_pin() {
        // Claimed PIN matches the stored one, but the typed digits do
        // not: still a PIN failure.
        let cfg = P2AuthConfig::fast();
        let stored = Pin::new("1628").expect("valid");
        let profile = stub_profile(Some(stored.clone()));
        let attempt = burst_recording("1629");
        let d = authenticate(&cfg, &profile, Some(&stored), &attempt).expect("runs");
        assert_eq!(d.reason, Some(RejectReason::WrongPin));
    }

    #[test]
    fn no_pin_attempt_rejected_under_required_policy() {
        let cfg = P2AuthConfig::fast(); // PinPolicy::Required
        let profile = stub_profile(Some(Pin::new("1628").expect("valid")));
        let attempt = burst_recording("1628");
        let d = authenticate(&cfg, &profile, None, &attempt).expect("runs");
        assert_eq!(d.reason, Some(RejectReason::PinRequired));
    }

    #[test]
    fn missing_models_reject_with_missing_model_reason() {
        // PIN passes, all keystrokes detected, but the profile has no
        // models at all: the per-keystroke fallback must reject with
        // MissingModel, never accept.
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let profile = stub_profile(Some(pin.clone()));
        let attempt = burst_recording("1628");
        let d = authenticate(&cfg, &profile, Some(&pin), &attempt).expect("runs");
        assert!(!d.accepted);
        assert_eq!(d.reason, Some(RejectReason::MissingModel));
        assert_eq!(
            d.keystroke_votes.len(),
            4,
            "one vote per detected keystroke"
        );
        assert!(d.keystroke_votes.iter().all(|v| !v.passed));
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let mut profile = stub_profile(Some(pin.clone()));
        profile.num_channels = 4;
        let attempt = burst_recording("1628"); // 1 channel
        assert!(matches!(
            authenticate(&cfg, &profile, Some(&pin), &attempt),
            Err(AuthError::ProfileMismatch { .. })
        ));
    }

    #[test]
    fn full_decision_sign_convention() {
        let accept = full_decision(InputCase::OneHanded, 0.7);
        assert!(accept.accepted && accept.reason.is_none());
        let reject = full_decision(InputCase::OneHanded, -0.1);
        assert!(!reject.accepted);
        assert_eq!(reject.reason, Some(RejectReason::BiometricMismatch));
        // A zero score is conservative: reject.
        assert!(!full_decision(InputCase::OneHanded, 0.0).accepted);
    }

    #[test]
    fn degraded_pin_only_fallback_checks_the_triple_match() {
        let cfg = P2AuthConfig::fast(); // DegradedFallback::PinOnly
        let pin = Pin::new("1628").expect("valid");
        let profile = stub_profile(Some(pin.clone()));

        let good = burst_recording("1628");
        let d = authenticate_degraded(&cfg, &profile, Some(&pin), &good).expect("runs");
        assert!(d.accepted);
        assert_eq!(d.score, 0.0, "degraded accept carries no biometric score");

        // Typed digits differ from the stored PIN: reject.
        let typo = burst_recording("1629");
        let d = authenticate_degraded(&cfg, &profile, Some(&pin), &typo).expect("runs");
        assert_eq!(d.reason, Some(RejectReason::WrongPin));

        // Claimed PIN differs: reject.
        let wrong = Pin::new("9999").expect("valid");
        let d = authenticate_degraded(&cfg, &profile, Some(&wrong), &good).expect("runs");
        assert_eq!(d.reason, Some(RejectReason::WrongPin));
    }

    #[test]
    fn degraded_reject_policy_rejects_outright() {
        let cfg = P2AuthConfig {
            degraded_fallback: DegradedFallback::Reject,
            ..P2AuthConfig::fast()
        };
        let pin = Pin::new("1628").expect("valid");
        let profile = stub_profile(Some(pin.clone()));
        let attempt = burst_recording("1628");
        let d = authenticate_degraded(&cfg, &profile, Some(&pin), &attempt).expect("runs");
        assert!(!d.accepted);
        assert_eq!(d.reason, Some(RejectReason::DegradedChannel));
    }

    #[test]
    fn degraded_fallback_without_a_pin_is_an_error() {
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let attempt = burst_recording("1628");
        // No enrolled PIN.
        let no_pin_profile = stub_profile(None);
        assert!(matches!(
            authenticate_degraded(&cfg, &no_pin_profile, Some(&pin), &attempt),
            Err(AuthError::DegradedUnavailable { .. })
        ));
        // No claimed PIN.
        let profile = stub_profile(Some(pin));
        assert!(matches!(
            authenticate_degraded(&cfg, &profile, None, &attempt),
            Err(AuthError::DegradedUnavailable { .. })
        ));
    }

    #[test]
    fn arena_path_matches_direct_path_end_to_end() {
        // The arena plumbing (PIN factor, channel checks, per-keystroke
        // dispatch) must agree with the direct path decision-for-
        // decision, including on model-less profiles.
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let profile = stub_profile(Some(pin.clone()));
        let arena = crate::arena::ProfileArena::build(&profile);
        let mut cx = crate::arena::SessionScratch::new();
        let wrong = Pin::new("9999").expect("valid");
        for (claimed, attempt) in [
            (Some(&pin), burst_recording("1628")),
            (Some(&wrong), burst_recording("9999")),
            (None, burst_recording("1628")),
        ] {
            let direct = authenticate(&cfg, &profile, claimed, &attempt).expect("runs");
            let via_arena =
                authenticate_arena(&cfg, &arena, &mut cx, claimed, &attempt).expect("runs");
            assert_eq!(direct, via_arena);
        }
        // Degraded path parity.
        let attempt = burst_recording("1628");
        let direct = authenticate_degraded(&cfg, &profile, Some(&pin), &attempt).expect("runs");
        let via_arena =
            authenticate_degraded_arena(&cfg, &arena, Some(&pin), &attempt).expect("runs");
        assert_eq!(direct, via_arena);
    }

    #[test]
    fn reject_constructor_shape() {
        let d = AuthDecision::reject(
            InputCase::Insufficient,
            RejectReason::InsufficientKeystrokes,
        );
        assert!(!d.accepted);
        assert_eq!(d.score, 0.0);
        assert!(d.keystroke_votes.is_empty());
    }
}
