//! Pipeline configuration.

use p2auth_ml::ridge::RidgeCvConfig;
use p2auth_rocket::MiniRocketConfig;

/// Whether authentication without a fixed PIN is permitted
/// (paper §IV-B 2.6 / §IV-B 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinPolicy {
    /// A PIN must be enrolled and verified; no-PIN attempts are
    /// rejected.
    Required,
    /// No-PIN authentication by keystroke pattern alone is allowed.
    NoPinAllowed,
}

/// Policy when a session's PPG coverage falls below
/// [`P2AuthConfig::min_ppg_coverage`] (a faulty link dropped too many
/// sensor blocks for the biometric factor to be trusted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedFallback {
    /// Reject outright: both factors or nothing.
    Reject,
    /// Fall back to PIN-only verification — the knowledge factor alone
    /// decides, and the decision is marked as degraded by the caller.
    PinOnly,
}

/// Which classifier backs the per-key single-waveform models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SingleModelKind {
    /// Ridge classifier with LOOCV (same family as the full-waveform
    /// model).
    Ridge,
    /// SGD logistic regression — the paper's "binary gradient
    /// classifiers" (§IV-B 2.6).
    Logistic,
}

/// Full configuration of the P²Auth pipeline.
///
/// All window sizes are expressed in samples **at 100 Hz**, the paper's
/// prototype rate, and are scaled proportionally when a recording has a
/// different sampling rate (Fig. 16 sweeps 30–100 Hz).
#[derive(Debug, Clone)]
pub struct P2AuthConfig {
    /// Median-filter window for noise removal (odd).
    pub median_window: usize,
    /// Savitzky–Golay window before extreme-point search (odd).
    pub savgol_window: usize,
    /// Savitzky–Golay polynomial order.
    pub savgol_order: usize,
    /// Window `w` of the calibration objective, Eq. (1) (30 in the
    /// paper).
    pub calibration_window: usize,
    /// Search reach (samples at 100 Hz) *before* the reported keystroke
    /// time — covers the communication jitter.
    pub calibration_radius_before: usize,
    /// Search reach (samples at 100 Hz) *after* the reported keystroke
    /// time — covers the jitter plus the neuromuscular latency of the
    /// vascular response.
    pub calibration_radius_after: usize,
    /// Smoothness-priors regularization λ for detrending (Eq. (2)).
    pub detrend_lambda: f64,
    /// Short-time-energy window for input-case identification (20 in
    /// the paper).
    pub energy_window: usize,
    /// Fraction of the mean short-time energy used as the keystroke
    /// presence threshold (the paper sets ½).
    pub energy_threshold_factor: f64,
    /// Single-keystroke segment window (90 samples in the paper, chosen
    /// to avoid overlapping the ~1.1 s inter-keystroke interval).
    pub segment_window: usize,
    /// Length the full PIN-entry waveform is resampled to for the
    /// full-waveform model.
    pub full_waveform_len: usize,
    /// Enable privacy-boost waveform fusion for one-handed attempts
    /// (paper Eq. (4); optional for users).
    pub privacy_boost: bool,
    /// Maximum cross-correlation shift (samples at 100 Hz) when
    /// aligning single-keystroke waveforms before fusion; 0 disables
    /// alignment (plain Eq. (4)).
    pub fusion_max_shift: usize,
    /// MiniRocket settings for the privacy-boost (fused-waveform)
    /// model; `None` reuses [`P2AuthConfig::rocket`]. Fusion discards
    /// information, so the boost model defaults to a larger feature
    /// count to claw some of it back.
    pub boost_rocket: Option<MiniRocketConfig>,
    /// PIN policy.
    pub pin_policy: PinPolicy,
    /// Classifier used for per-key models.
    pub single_model: SingleModelKind,
    /// MiniRocket settings shared by all feature extractors.
    pub rocket: MiniRocketConfig,
    /// Ridge CV settings.
    pub ridge: RidgeCvConfig,
    /// Minimum number of enrollment recordings.
    pub min_enroll_recordings: usize,
    /// Minimum fraction of PPG blocks a session must deliver for the
    /// biometric factor to be evaluated; below this the
    /// [`P2AuthConfig::degraded_fallback`] policy applies.
    pub min_ppg_coverage: f64,
    /// What to do when coverage is below
    /// [`P2AuthConfig::min_ppg_coverage`].
    pub degraded_fallback: DegradedFallback,
    /// Enable per-segment signal-quality gating: keystroke votes are
    /// weighted by their SQI and segments below
    /// [`P2AuthConfig::sqi_floor`] are excluded from voting. On clean
    /// signal every segment scores exactly 1.0, so enabling this
    /// changes nothing for fault-free input.
    pub sqi_gating: bool,
    /// Hard SQI floor below which a segment may not vote.
    pub sqi_floor: f64,
    /// Minimum usable (detected and at-or-above-floor) keystrokes a
    /// session needs before the supervisor considers it decidable;
    /// below this it re-prompts instead of deciding.
    pub sqi_min_keystrokes: usize,
    /// RNG seed for the trainable components.
    pub seed: u64,
}

impl Default for P2AuthConfig {
    fn default() -> Self {
        Self {
            median_window: 5,
            savgol_window: 9,
            savgol_order: 2,
            calibration_window: 30,
            calibration_radius_before: 12,
            calibration_radius_after: 32,
            detrend_lambda: 50.0,
            energy_window: 20,
            energy_threshold_factor: 0.5,
            segment_window: 90,
            full_waveform_len: 512,
            privacy_boost: false,
            fusion_max_shift: 10,
            boost_rocket: Some(MiniRocketConfig {
                num_features: 2520,
                ..MiniRocketConfig::default()
            }),
            pin_policy: PinPolicy::Required,
            single_model: SingleModelKind::Ridge,
            rocket: MiniRocketConfig::default(),
            ridge: RidgeCvConfig::default(),
            min_enroll_recordings: 4,
            min_ppg_coverage: 0.9,
            degraded_fallback: DegradedFallback::PinOnly,
            sqi_gating: true,
            sqi_floor: 0.35,
            sqi_min_keystrokes: 2,
            seed: 0x000b_100d,
        }
    }
}

impl P2AuthConfig {
    /// A reduced-cost configuration for tests, examples and doc tests:
    /// fewer MiniRocket features, everything else as the paper.
    pub fn fast() -> Self {
        Self {
            rocket: MiniRocketConfig {
                num_features: 336,
                ..MiniRocketConfig::default()
            },
            ..Self::default()
        }
    }

    /// Scales a window expressed in samples at 100 Hz to `rate` Hz,
    /// keeping at least 1 sample and preserving odd windows' oddness.
    pub fn scale_window(&self, samples_at_100: usize, rate: f64) -> usize {
        let scaled = ((samples_at_100 as f64) * rate / 100.0).round().max(1.0) as usize;
        if samples_at_100 % 2 == 1 && scaled.is_multiple_of(2) {
            scaled + 1
        } else {
            scaled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let c = P2AuthConfig::default();
        assert_eq!(c.calibration_window, 30);
        assert_eq!(c.energy_window, 20);
        assert_eq!(c.segment_window, 90);
        assert_eq!(c.energy_threshold_factor, 0.5);
    }

    #[test]
    fn window_scaling() {
        let c = P2AuthConfig::default();
        assert_eq!(c.scale_window(20, 100.0), 20);
        assert_eq!(c.scale_window(20, 50.0), 10);
        assert_eq!(c.scale_window(90, 30.0), 27);
        // Odd windows stay odd.
        assert_eq!(c.scale_window(9, 50.0), 5);
        assert_eq!(c.scale_window(5, 30.0) % 2, 1);
        // Never collapses to zero.
        assert!(c.scale_window(1, 30.0) >= 1);
    }
}
