//! Feature-extraction helpers shared by enrollment and authentication.

use p2auth_dsp::normalize::zscore;
use p2auth_rocket::MultiSeries;

/// Z-normalizes every channel of a series (zero mean, unit variance per
/// channel). MiniRocket's PPV features are offset-invariant but not
/// scale-invariant; normalizing makes the models robust to per-session
/// gain differences of the optical front-end.
// INVARIANT: `zscore` is length-preserving, so the rectangular
// non-empty shape of the input MultiSeries carries over verbatim.
#[allow(clippy::expect_used)]
pub fn znorm_series(s: &MultiSeries) -> MultiSeries {
    let channels: Vec<Vec<f64>> = s.channels().iter().map(|c| zscore(c)).collect();
    MultiSeries::new(channels).expect("znorm preserves shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn znorm_standardizes_each_channel() {
        let s = MultiSeries::new(vec![
            vec![10.0, 20.0, 30.0, 40.0],
            vec![-5.0, 0.0, 5.0, 10.0],
        ])
        .unwrap();
        let z = znorm_series(&s);
        for ch in 0..2 {
            let c = z.channel(ch);
            let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
            let var: f64 = c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / c.len() as f64;
            assert!(mean.abs() < 1e-10);
            assert!((var - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn gain_invariance() {
        let base = vec![1.0, 4.0, 2.0, 8.0, 3.0];
        let scaled: Vec<f64> = base.iter().map(|v| 100.0 + 7.0 * v).collect();
        let z1 = znorm_series(&MultiSeries::univariate(base));
        let z2 = znorm_series(&MultiSeries::univariate(scaled));
        for (a, b) in z1.channel(0).iter().zip(z2.channel(0)) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
