//! Privacy-boost waveform fusion (paper §IV-B 2.2, Eq. (4)).
//!
//! To avoid storing or matching raw single-keystroke waveforms — whose
//! leakage would permanently burn the user's biometric — the one-handed
//! path can fuse the K single-keystroke waveforms additively:
//! `S = Σ_h P_h`. The fusion "inevitably loses some useful information
//! and thus reduces the accuracy", which the paper accepts as a
//! security/usability trade-off (Fig. 8).

use p2auth_rocket::MultiSeries;

/// Additively fuses equally shaped single-keystroke waveforms.
///
/// Returns `None` if `segments` is empty or shapes disagree.
pub fn fuse(segments: &[MultiSeries]) -> Option<MultiSeries> {
    let first = segments.first()?;
    let (ch, len) = (first.num_channels(), first.len());
    let mut acc: Vec<Vec<f64>> = vec![vec![0.0; len]; ch];
    for s in segments {
        if s.num_channels() != ch || s.len() != len {
            return None;
        }
        for (c, out) in acc.iter_mut().enumerate() {
            for (o, v) in out.iter_mut().zip(s.channel(c)) {
                *o += v;
            }
        }
    }
    // INVARIANT: `acc` has the channel count and per-channel length of
    // `first`, which is itself a valid (non-empty, rectangular)
    // MultiSeries, so the constructor cannot reject it.
    #[allow(clippy::expect_used)]
    let fused = MultiSeries::new(acc).expect("fusion of valid series is valid");
    Some(fused)
}

/// Like [`fuse`], but cross-correlation-aligns each waveform to the
/// first before adding (shift search of ±`max_shift` samples,
/// edge-replicated). Fine alignment absorbs the residual per-keystroke
/// calibration jitter, which otherwise compounds across the K fused
/// waveforms; with `max_shift` 0 this is exactly [`fuse`].
///
/// Returns `None` if `segments` is empty or shapes disagree.
pub fn fuse_aligned(segments: &[MultiSeries], max_shift: usize) -> Option<MultiSeries> {
    let first = segments.first()?;
    if max_shift == 0 || segments.len() == 1 {
        return fuse(segments);
    }
    let (ch, len) = (first.num_channels(), first.len());
    let mut acc: Vec<Vec<f64>> = first.channels().to_vec();
    for s in &segments[1..] {
        if s.num_channels() != ch || s.len() != len {
            return None;
        }
        // Best shift by summed cross-correlation against the reference.
        let mut best = (0_i64, f64::NEG_INFINITY);
        let m = max_shift as i64;
        #[allow(clippy::needless_range_loop)] // shifted indexing reads clearest
        for shift in -m..=m {
            let mut score = 0.0;
            for c in 0..ch {
                let r = first.channel(c);
                let x = s.channel(c);
                for i in 0..len {
                    let j = (i as i64 + shift).clamp(0, len as i64 - 1) as usize;
                    score += r[i] * x[j];
                }
            }
            if score > best.1 {
                best = (shift, score);
            }
        }
        let shift = best.0;
        #[allow(clippy::needless_range_loop)] // shifted indexing reads clearest
        for c in 0..ch {
            let x = s.channel(c);
            for i in 0..len {
                let j = (i as i64 + shift).clamp(0, len as i64 - 1) as usize;
                acc[c][i] += x[j];
            }
        }
    }
    // INVARIANT: `acc` starts as `first.channels()` (valid shape) and is
    // only ever updated element-wise, so the shape is preserved.
    #[allow(clippy::expect_used)]
    let fused = MultiSeries::new(acc).expect("aligned fusion of valid series is valid");
    Some(fused)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> MultiSeries {
        MultiSeries::univariate(vals.to_vec())
    }

    #[test]
    fn fusion_is_additive() {
        let a = series(&[1.0, 2.0, 3.0]);
        let b = series(&[10.0, 20.0, 30.0]);
        let f = fuse(&[a, b]).unwrap();
        assert_eq!(f.channel(0), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn single_segment_identity() {
        let a = series(&[5.0, -1.0]);
        assert_eq!(fuse(std::slice::from_ref(&a)).unwrap(), a);
    }

    #[test]
    fn empty_or_mismatched_is_none() {
        assert!(fuse(&[]).is_none());
        let a = series(&[1.0, 2.0]);
        let b = series(&[1.0, 2.0, 3.0]);
        assert!(fuse(&[a, b]).is_none());
    }

    #[test]
    fn fusion_order_invariant() {
        let a = series(&[1.0, 0.0, 2.0]);
        let b = series(&[0.5, 1.5, -1.0]);
        let c = series(&[2.0, 2.0, 2.0]);
        let f1 = fuse(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let f2 = fuse(&[c, a, b]).unwrap();
        assert_eq!(f1, f2);
    }

    #[test]
    fn aligned_fusion_absorbs_small_shifts() {
        // Two copies of the same bump, one shifted by 3 samples: plain
        // fusion smears it, aligned fusion reconstructs ~2x the bump.
        let bump = |c: f64| -> MultiSeries {
            MultiSeries::univariate(
                (0..60)
                    .map(|i| {
                        let d = (i as f64 - c) / 3.0;
                        (-d * d).exp()
                    })
                    .collect(),
            )
        };
        let a = bump(30.0);
        let b = bump(33.0);
        let aligned = fuse_aligned(&[a.clone(), b.clone()], 5).unwrap();
        let plain = fuse(&[a.clone(), b]).unwrap();
        // Aligned peak approaches 2.0; plain peak is lower (smeared).
        let peak = |s: &MultiSeries| s.channel(0).iter().cloned().fold(0.0_f64, f64::max);
        assert!(peak(&aligned) > peak(&plain));
        assert!(peak(&aligned) > 1.9, "aligned peak {}", peak(&aligned));
    }

    #[test]
    fn aligned_fusion_zero_shift_equals_plain() {
        let a = series(&[1.0, 3.0, 2.0, 0.0]);
        let b = series(&[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(fuse_aligned(&[a.clone(), b.clone()], 0), fuse(&[a, b]));
    }

    #[test]
    fn fusion_hides_individual_waveforms() {
        // The fusion of two different pairs can coincide — exactly the
        // ambiguity that protects the individual keystrokes.
        let f1 = fuse(&[series(&[1.0, 0.0]), series(&[0.0, 1.0])]).unwrap();
        let f2 = fuse(&[series(&[0.5, 0.5]), series(&[0.5, 0.5])]).unwrap();
        assert_eq!(f1, f2);
    }
}
