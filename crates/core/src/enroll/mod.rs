//! Enrollment phase (paper §IV-B 2): waveform segmentation, optional
//! privacy-boost fusion, MiniRocket feature extraction and per-user
//! model training.

pub mod features;
pub mod fusion;
pub mod segmentation;

use crate::config::{P2AuthConfig, SingleModelKind};
use crate::error::AuthError;
use crate::preprocess::{self, Preprocessed};
use crate::types::{Pin, Recording};
use p2auth_ml::logistic::{LogisticClassifier, LogisticConfig};
use p2auth_ml::ridge::RidgeClassifier;
use p2auth_par::par_map;
use p2auth_rocket::{MiniRocket, MultiSeries};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use features::znorm_series;
use fusion::fuse_aligned;
use segmentation::{full_waveform, segment};

/// One trained waveform model: a fitted MiniRocket transform plus a
/// binary classifier over its features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct WaveModel {
    pub(crate) rocket: MiniRocket,
    pub(crate) clf: KeyClassifier,
}

impl WaveModel {
    /// Decision value for one (already z-normalized) series; positive
    /// means "legitimate". Reuses the session scratch — the conv
    /// buffers and the feature vector — so steady-state calls perform
    /// no heap allocation in the rocket/ml layers.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError::ProfileMismatch`] when the series shape
    /// does not match what the model was fitted on — e.g. the caller
    /// authenticates with a different segmentation configuration than
    /// the profile was enrolled with. (The underlying transform would
    /// otherwise panic on the length assertion.)
    pub(crate) fn decision_with(
        &self,
        s: &MultiSeries,
        cx: &mut crate::arena::SessionScratch,
    ) -> Result<f64, AuthError> {
        if s.len() != self.rocket.input_length() || s.num_channels() != self.rocket.num_channels() {
            return Err(AuthError::ProfileMismatch {
                detail: format!(
                    "series shape {}×{} does not match model input {}×{} \
                     (was the profile enrolled with a different config?)",
                    s.num_channels(),
                    s.len(),
                    self.rocket.num_channels(),
                    self.rocket.input_length(),
                ),
            });
        }
        // Span and counter sit here (not in `transform_into`) so the
        // trace structure matches the historical `transform_one` path.
        let _span = p2auth_obs::span!("rocket.transform");
        p2auth_obs::counter!("rocket.transform.series").incr();
        cx.features.clear();
        self.rocket
            .transform_into(s, &mut cx.conv, &mut cx.features);
        Ok(self.clf.decision(&cx.features))
    }
}

/// The classifier behind a waveform model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum KeyClassifier {
    /// Ridge classifier (full-waveform default).
    Ridge(RidgeClassifier),
    /// SGD logistic — the paper's "binary gradient classifier".
    Logistic(LogisticClassifier),
}

impl KeyClassifier {
    fn decision(&self, x: &[f64]) -> f64 {
        match self {
            KeyClassifier::Ridge(c) => c.decision(x),
            KeyClassifier::Logistic(c) => c.probability(x) - 0.5,
        }
    }
}

/// An enrolled user: the stored PIN (if any) and the trained models.
///
/// * `full` — the one-handed full-waveform model,
/// * `boost` — the privacy-boost (fused-waveform) model, when enabled,
/// * `per_key` — single-waveform models keyed by digit, used for
///   two-handed and no-PIN authentication.
///
/// Implements Serde `Serialize`/`Deserialize` so an enrollment can be
/// stored on the watch/phone and reloaded across sessions (bring your
/// own format, e.g. `serde_json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserProfile {
    pub(crate) pin: Option<Pin>,
    pub(crate) privacy_boost: bool,
    pub(crate) sample_rate: f64,
    pub(crate) num_channels: usize,
    pub(crate) full: Option<WaveModel>,
    pub(crate) boost: Option<WaveModel>,
    pub(crate) per_key: BTreeMap<u8, WaveModel>,
    /// Enrolled perfusion (peak-to-peak) range over the enrollment
    /// segments, used by the signal-quality assessment. `default` keeps
    /// profiles serialized before this field existed loadable.
    #[serde(default)]
    pub(crate) perfusion_range: Option<(f64, f64)>,
}

impl UserProfile {
    /// The enrolled PIN, if a fixed PIN was registered.
    pub fn pin(&self) -> Option<&Pin> {
        self.pin.as_ref()
    }

    /// Digits for which a single-waveform model exists.
    pub fn enrolled_keys(&self) -> Vec<u8> {
        self.per_key.keys().copied().collect()
    }

    /// Whether the one-handed full-waveform model is available.
    pub fn has_full_model(&self) -> bool {
        self.full.is_some()
    }

    /// Whether the privacy-boost (fused) model is available.
    pub fn has_boost_model(&self) -> bool {
        self.boost.is_some()
    }

    /// Sampling rate the profile was trained at.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Channel count the profile was trained with.
    pub fn num_channels(&self) -> usize {
        self.num_channels
    }

    /// Perfusion (peak-to-peak) range observed at enrollment, if the
    /// profile carries one (profiles serialized by older versions do
    /// not).
    pub fn perfusion_range(&self) -> Option<(f64, f64)> {
        self.perfusion_range
    }
}

/// Intermediate per-recording extraction shared by the model builders
/// and the authentication phase.
#[derive(Debug, Clone)]
pub(crate) struct ExtractedWaveforms {
    /// Full-entry waveform (present only when every keystroke was
    /// detected).
    pub(crate) full: Option<MultiSeries>,
    /// Fused single-keystroke waveform (same availability as `full`).
    pub(crate) fused: Option<MultiSeries>,
    /// (digit, segment) for every detected keystroke.
    pub(crate) segments: Vec<(u8, MultiSeries)>,
    /// Raw-segment quality statistics, aligned with `segments` (one
    /// entry per detected keystroke, computed before normalization).
    pub(crate) seg_stats: Vec<crate::quality::SegmentStats>,
}

/// Extracts the waveforms used by both enrollment and authentication.
///
/// # Errors
///
/// Returns [`AuthError::Segmentation`] when a segmentation window
/// cannot be cut (empty channels or degenerate window configuration).
pub(crate) fn extract_for_auth(
    config: &P2AuthConfig,
    rec: &Recording,
    pre: &Preprocessed,
) -> Result<ExtractedWaveforms, AuthError> {
    let _span = p2auth_obs::span!("core.segmentation");
    let seg_win = config.scale_window(config.segment_window, rec.sample_rate);
    let margin = seg_win / 2;
    let digits = rec.pin_entered.digits();
    let mut segments = Vec::new();
    let mut raw_segments = Vec::new();
    let mut present_segments = Vec::new();
    for (i, (&t, &present)) in pre
        .calibrated_times
        .iter()
        .zip(&pre.case.present)
        .enumerate()
    {
        if present {
            let raw = segment(&pre.filtered, t, seg_win)?;
            let s = znorm_series(&raw);
            // INVARIANT: `Recording::validate` pins
            // `reported_key_times.len() == pin_entered.len()`, and the
            // preprocessing stages keep `calibrated_times`/`present` at
            // that same length, so `digits[i]` is in bounds.
            segments.push((digits[i], s.clone()));
            raw_segments.push(raw);
            present_segments.push(s);
        }
    }
    p2auth_obs::counter!("core.segmentation.segments").add(segments.len() as u64);
    let seg_stats = {
        let _span = p2auth_obs::span!("core.quality");
        raw_segments
            .iter()
            .map(|raw| crate::quality::segment_stats(raw, config.detrend_lambda))
            .collect::<Vec<_>>()
    };
    let all_present = !pre.case.present.is_empty() && pre.case.present.iter().all(|&p| p);
    let (full, fused) = if all_present {
        let fw = znorm_series(&full_waveform(
            &pre.filtered,
            &pre.calibrated_times,
            margin,
            config.full_waveform_len,
        )?);
        let shift = config.scale_window(config.fusion_max_shift.max(1), rec.sample_rate);
        let shift = if config.fusion_max_shift == 0 {
            0
        } else {
            shift
        };
        let fu = {
            let _span = p2auth_obs::span!("core.fusion");
            fuse_aligned(&present_segments, shift).map(|f| znorm_series(&f))
        };
        if fu.is_some() {
            p2auth_obs::counter!("core.fusion.fused").incr();
        }
        (Some(fw), fu)
    } else {
        (None, None)
    };
    Ok(ExtractedWaveforms {
        full,
        fused,
        segments,
        seg_stats,
    })
}

fn train_wave_model(
    config: &P2AuthConfig,
    rocket_config: &p2auth_rocket::MiniRocketConfig,
    positives: &[MultiSeries],
    negatives: &[MultiSeries],
    kind: SingleModelKind,
) -> Result<WaveModel, AuthError> {
    let _span = p2auth_obs::span!("core.train");
    // Borrow the training series rather than cloning them into a fresh
    // Vec: fit/transform are generic over borrowed slices.
    let train: Vec<&MultiSeries> = positives.iter().chain(negatives.iter()).collect();
    let rocket =
        MiniRocket::fit(rocket_config, &train).map_err(|e| AuthError::FeatureExtraction {
            detail: e.to_string(),
        })?;
    // Batch transform: parallel over series, one contiguous feature
    // matrix handed straight to the classifier fit.
    let x = rocket.transform(&train);
    let mut y = vec![1_i8; positives.len()];
    y.extend(std::iter::repeat_n(-1, negatives.len()));
    let clf = match kind {
        SingleModelKind::Ridge => {
            let c = RidgeClassifier::fit_matrix(&config.ridge, &x, &y).map_err(|e| {
                AuthError::Training {
                    detail: e.to_string(),
                }
            })?;
            KeyClassifier::Ridge(c)
        }
        SingleModelKind::Logistic => {
            let c = LogisticClassifier::fit_matrix(
                &LogisticConfig {
                    seed: config.seed,
                    ..LogisticConfig::default()
                },
                &x,
                &y,
            )
            .map_err(|e| AuthError::Training {
                detail: e.to_string(),
            })?;
            KeyClassifier::Logistic(c)
        }
    };
    Ok(WaveModel { rocket, clf })
}

/// Enrolls a user with a fixed PIN. See [`crate::P2Auth::enroll`].
///
/// # Errors
///
/// Returns [`AuthError`] on malformed or inconsistent recordings, too
/// few enrollment recordings, missing third-party data, or failed model
/// training.
pub fn enroll(
    config: &P2AuthConfig,
    pin: &Pin,
    recordings: &[Recording],
    third_party: &[Recording],
) -> Result<UserProfile, AuthError> {
    enroll_impl(config, Some(pin.clone()), recordings, third_party)
}

/// Enrolls a user without a fixed PIN: only single-waveform (per-key)
/// models are trained and authentication relies on keystroke patterns
/// alone (paper §IV-B 2.6).
///
/// # Errors
///
/// Same conditions as [`enroll`].
pub fn enroll_keystrokes_only(
    config: &P2AuthConfig,
    recordings: &[Recording],
    third_party: &[Recording],
) -> Result<UserProfile, AuthError> {
    enroll_impl(config, None, recordings, third_party)
}

fn enroll_impl(
    config: &P2AuthConfig,
    pin: Option<Pin>,
    recordings: &[Recording],
    third_party: &[Recording],
) -> Result<UserProfile, AuthError> {
    let _span = p2auth_obs::span!("core.enroll");
    p2auth_obs::event!(
        "core.enroll",
        "start",
        recordings = recordings.len(),
        third_party = third_party.len(),
    );
    if recordings.len() < config.min_enroll_recordings {
        return Err(AuthError::NotEnoughRecordings {
            needed: config.min_enroll_recordings,
            got: recordings.len(),
        });
    }
    if third_party.is_empty() {
        return Err(AuthError::NoThirdPartyData);
    }
    let rate = recordings[0].sample_rate;
    let channels = recordings[0].num_channels();
    for rec in recordings.iter().chain(third_party) {
        if (rec.sample_rate - rate).abs() > 1e-9 {
            return Err(AuthError::InconsistentRecordings {
                detail: format!("sample rate {} != {rate}", rec.sample_rate),
            });
        }
        if rec.num_channels() != channels {
            return Err(AuthError::InconsistentRecordings {
                detail: format!("channel count {} != {channels}", rec.num_channels()),
            });
        }
    }

    // Preprocess and extract everything once, fanning out across
    // recordings (each is independent); the first error in recording
    // order wins, matching the old serial early-return.
    let ctx = p2auth_obs::current_ctx();
    let pos: Vec<ExtractedWaveforms> = par_map(recordings, |rec| {
        let _g = p2auth_obs::adopt(ctx);
        preprocess::preprocess(config, rec).and_then(|pre| extract_for_auth(config, rec, &pre))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;
    let neg: Vec<ExtractedWaveforms> = par_map(third_party, |rec| {
        let _g = p2auth_obs::adopt(ctx);
        preprocess::preprocess(config, rec).and_then(|pre| extract_for_auth(config, rec, &pre))
    })
    .into_iter()
    .collect::<Result<_, _>>()?;

    // Full-waveform model (one-handed).
    let full_pos: Vec<MultiSeries> = pos.iter().filter_map(|e| e.full.clone()).collect();
    let full_neg: Vec<MultiSeries> = neg.iter().filter_map(|e| e.full.clone()).collect();
    let full = if full_pos.len() >= 2 && !full_neg.is_empty() {
        Some(train_wave_model(
            config,
            &config.rocket,
            &full_pos,
            &full_neg,
            SingleModelKind::Ridge,
        )?)
    } else {
        None
    };

    // Privacy-boost model (fused waveforms).
    let boost = if config.privacy_boost {
        let b_pos: Vec<MultiSeries> = pos.iter().filter_map(|e| e.fused.clone()).collect();
        let b_neg: Vec<MultiSeries> = neg.iter().filter_map(|e| e.fused.clone()).collect();
        if b_pos.len() >= 2 && !b_neg.is_empty() {
            let boost_rocket = config.boost_rocket.as_ref().unwrap_or(&config.rocket);
            Some(train_wave_model(
                config,
                boost_rocket,
                &b_pos,
                &b_neg,
                SingleModelKind::Ridge,
            )?)
        } else {
            None
        }
    } else {
        None
    };

    // Per-key single-waveform models.
    let mut pos_by_key: BTreeMap<u8, Vec<MultiSeries>> = BTreeMap::new();
    for e in &pos {
        for (d, s) in &e.segments {
            pos_by_key.entry(*d).or_default().push(s.clone());
        }
    }
    let mut neg_by_key: BTreeMap<u8, Vec<MultiSeries>> = BTreeMap::new();
    let mut neg_any: Vec<MultiSeries> = Vec::new();
    for e in &neg {
        for (d, s) in &e.segments {
            neg_by_key.entry(*d).or_default().push(s.clone());
            neg_any.push(s.clone());
        }
    }
    // One independent model per digit: train them in parallel. Jobs are
    // collected first (in digit order) so results and error precedence
    // are deterministic.
    let jobs: Vec<(u8, &[MultiSeries], &[MultiSeries])> = pos_by_key
        .iter()
        .filter(|(_, positives)| positives.len() >= 2)
        .filter_map(|(digit, positives)| {
            // Prefer same-key negatives; fall back to any third-party
            // segments so a model can still be trained.
            let negatives: &[MultiSeries] = match neg_by_key.get(digit) {
                Some(v) if !v.is_empty() => v,
                _ => &neg_any,
            };
            if negatives.is_empty() {
                None
            } else {
                Some((*digit, positives.as_slice(), negatives))
            }
        })
        .collect();
    let trained = par_map(&jobs, |(digit, positives, negatives)| {
        let _g = p2auth_obs::adopt(ctx);
        train_wave_model(
            config,
            &config.rocket,
            positives,
            negatives,
            config.single_model,
        )
        .map(|model| (*digit, model))
    });
    let mut per_key = BTreeMap::new();
    for result in trained {
        let (digit, model) = result?;
        per_key.insert(digit, model);
    }

    if full.is_none() && boost.is_none() && per_key.is_empty() {
        return Err(AuthError::Training {
            detail: "no model could be trained (no usable keystrokes detected)".into(),
        });
    }

    // The subject's perfusion envelope over every enrollment segment:
    // the quality assessment flags attempts far outside it (detached
    // band collapses it, saturation inflates it).
    let mut perfusion_range: Option<(f64, f64)> = None;
    for s in pos.iter().flat_map(|e| e.seg_stats.iter()) {
        perfusion_range = Some(match perfusion_range {
            None => (s.perfusion, s.perfusion),
            Some((lo, hi)) => (lo.min(s.perfusion), hi.max(s.perfusion)),
        });
    }

    Ok(UserProfile {
        pin,
        privacy_boost: config.privacy_boost,
        sample_rate: rate,
        num_channels: channels,
        full,
        boost,
        per_key,
        perfusion_range,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelInfo, HandMode, Placement, UserId, Wavelength};

    fn flatline_recording(pin: &str, rate: f64, channels: usize) -> Recording {
        let times = [100_usize, 200, 300, 400];
        Recording {
            user: UserId(0),
            sample_rate: rate,
            ppg: vec![vec![0.5; 520]; channels],
            channels: vec![
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Radial,
                };
                channels
            ],
            accel: None,
            pin_entered: Pin::new(pin).expect("valid"),
            reported_key_times: times.to_vec(),
            true_key_times: times.to_vec(),
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn too_few_recordings_rejected() {
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let recs = vec![flatline_recording("1628", 100.0, 1); 2];
        assert!(matches!(
            enroll(&cfg, &pin, &recs, &recs),
            Err(AuthError::NotEnoughRecordings { needed: 4, got: 2 })
        ));
    }

    #[test]
    fn empty_third_party_rejected() {
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let recs = vec![flatline_recording("1628", 100.0, 1); 5];
        assert!(matches!(
            enroll(&cfg, &pin, &recs, &[]),
            Err(AuthError::NoThirdPartyData)
        ));
    }

    #[test]
    fn inconsistent_rates_rejected() {
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let mut recs = vec![flatline_recording("1628", 100.0, 1); 4];
        recs.push(flatline_recording("1628", 50.0, 1));
        let third = vec![flatline_recording("1628", 100.0, 1)];
        assert!(matches!(
            enroll(&cfg, &pin, &recs, &third),
            Err(AuthError::InconsistentRecordings { .. })
        ));
    }

    #[test]
    fn inconsistent_channel_counts_rejected() {
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let recs = vec![flatline_recording("1628", 100.0, 2); 5];
        let third = vec![flatline_recording("1628", 100.0, 1)];
        assert!(matches!(
            enroll(&cfg, &pin, &recs, &third),
            Err(AuthError::InconsistentRecordings { .. })
        ));
    }

    #[test]
    fn flatline_signals_cannot_train_any_model() {
        // No keystroke energy anywhere: no waveform can be extracted,
        // so enrollment must fail loudly rather than return an empty
        // profile.
        let cfg = P2AuthConfig::fast();
        let pin = Pin::new("1628").expect("valid");
        let recs = vec![flatline_recording("1628", 100.0, 1); 5];
        let third = vec![flatline_recording("1628", 100.0, 1); 3];
        assert!(matches!(
            enroll(&cfg, &pin, &recs, &third),
            Err(AuthError::Training { .. })
        ));
    }
}
