//! Waveform segmentation (paper §IV-B 2.5).
//!
//! Single-keystroke PPG samples are cut from a fixed window around each
//! calibrated keystroke time — 90 samples at 100 Hz, "to avoid
//! overlapping the pulse waveform of adjacent keystrokes" given the
//! ~1.1 s average inter-keystroke interval. The one-handed full-waveform
//! model instead uses the whole PIN-entry span, resampled to a fixed
//! length.

use p2auth_dsp::resample::resample_linear;
use p2auth_rocket::MultiSeries;

/// Cuts a fixed-length window of `window` samples centred on `center`
/// from every channel.
///
/// Near the signal boundaries the window slides inward so the output
/// always has exactly `window` samples; if the signal is shorter than
/// `window`, edge samples are replicated.
///
/// # Panics
///
/// Panics if `filtered` is empty, any channel is empty, or `window` is
/// zero.
pub fn segment(filtered: &[Vec<f64>], center: usize, window: usize) -> MultiSeries {
    assert!(!filtered.is_empty(), "no channels");
    assert!(window > 0, "window must be positive");
    let n = filtered[0].len();
    assert!(n > 0, "empty channel");
    let channels: Vec<Vec<f64>> = filtered
        .iter()
        .map(|c| {
            if n >= window {
                let half = window / 2;
                let start = center.saturating_sub(half).min(n - window);
                c[start..start + window].to_vec()
            } else {
                // Replicate the last sample to reach the window length.
                let mut v = c.clone();
                v.resize(window, *c.last().expect("non-empty"));
                v
            }
        })
        .collect();
    MultiSeries::new(channels).expect("segment construction cannot fail")
}

/// Extracts the full PIN-entry waveform: the span from `margin` samples
/// before the first keystroke to `margin` after the last, resampled to
/// `target_len` samples per channel so typing speed does not change the
/// model input size.
///
/// # Panics
///
/// Panics if `filtered` or `times` is empty or `target_len` is zero.
pub fn full_waveform(
    filtered: &[Vec<f64>],
    times: &[usize],
    margin: usize,
    target_len: usize,
) -> MultiSeries {
    assert!(!filtered.is_empty(), "no channels");
    assert!(!times.is_empty(), "no keystroke times");
    assert!(target_len > 0, "target length must be positive");
    let n = filtered[0].len();
    let first = *times.iter().min().expect("non-empty");
    let last = *times.iter().max().expect("non-empty");
    let start = first.saturating_sub(margin);
    let end = (last + margin + 1).min(n).max(start + 2);
    let span = end - start;
    let channels: Vec<Vec<f64>> = filtered
        .iter()
        .map(|c| {
            let crop = &c[start..end.min(c.len())];
            // Resample the crop to the fixed target length.
            resample_linear(crop, span as f64, target_len as f64)
        })
        .collect();
    MultiSeries::new(channels).expect("full waveform construction cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_segment_is_centred() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s = segment(&[x], 100, 90);
        assert_eq!(s.len(), 90);
        assert_eq!(s.channel(0)[0], 55.0); // 100 - 45
    }

    #[test]
    fn edge_segments_slide_inward() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = segment(std::slice::from_ref(&x), 2, 90);
        assert_eq!(s.channel(0)[0], 0.0);
        let s = segment(&[x], 99, 90);
        assert_eq!(*s.channel(0).last().unwrap(), 99.0);
        assert_eq!(s.len(), 90);
    }

    #[test]
    fn short_signal_padded() {
        let s = segment(&[vec![1.0, 2.0, 3.0]], 1, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.channel(0)[9], 3.0);
    }

    #[test]
    fn full_waveform_fixed_length_invariant_to_speed() {
        // Same shape typed slow vs fast should produce similar fixed-size
        // crops.
        let make = |scale: usize| -> (Vec<f64>, Vec<usize>) {
            let times: Vec<usize> = (0..4).map(|k| 50 + k * scale).collect();
            let n = times[3] + 100;
            let x = (0..n)
                .map(|i| {
                    times
                        .iter()
                        .enumerate()
                        .map(|(k, &t)| {
                            let d = (i as f64 - t as f64) / 5.0;
                            // Make the third keystroke unambiguously the
                            // tallest so argmax is well defined.
                            let amp = if k == 2 { 2.0 } else { 1.0 };
                            amp * (-d * d).exp()
                        })
                        .sum()
                })
                .collect();
            (x, times)
        };
        let (slow, t_slow) = make(140);
        let (fast, t_fast) = make(80);
        let a = full_waveform(&[slow], &t_slow, 40, 256);
        let b = full_waveform(&[fast], &t_fast, 40, 256);
        assert_eq!(a.len(), 256);
        assert_eq!(b.len(), 256);
        // Peaks land near the same normalized positions.
        let peak_pos = |s: &MultiSeries| -> usize {
            s.channel(0)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0
        };
        let pa = peak_pos(&a) as i64;
        let pb = peak_pos(&b) as i64;
        assert!((pa - pb).abs() < 30, "peaks at {pa} vs {pb}");
    }

    #[test]
    fn multichannel_segments_aligned() {
        let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| -(i as f64)).collect();
        let s = segment(&[a, b], 150, 50);
        assert_eq!(s.num_channels(), 2);
        for i in 0..50 {
            assert_eq!(s.channel(0)[i], -s.channel(1)[i]);
        }
    }
}
