//! Waveform segmentation (paper §IV-B 2.5).
//!
//! Single-keystroke PPG samples are cut from a fixed window around each
//! calibrated keystroke time — 90 samples at 100 Hz, "to avoid
//! overlapping the pulse waveform of adjacent keystrokes" given the
//! ~1.1 s average inter-keystroke interval. The one-handed full-waveform
//! model instead uses the whole PIN-entry span, resampled to a fixed
//! length.
//!
//! Both cutters clamp **per channel**: channel lengths are taken from
//! each channel itself, never from channel 0, so ragged inputs (e.g. a
//! degraded link delivering fewer samples on one channel) degrade into
//! well-formed windows instead of slice panics.

use crate::error::AuthError;
use p2auth_dsp::resample::resample_linear;
use p2auth_rocket::MultiSeries;

/// Cuts a fixed-length window of `window` samples centred on `center`
/// from every channel.
///
/// Near the signal boundaries the window slides inward so the output
/// always has exactly `window` samples; if a channel is shorter than
/// `window`, its edge sample is replicated. Each channel is clamped
/// against its own length, so unequal channel lengths are handled.
///
/// # Errors
///
/// Returns [`AuthError::Segmentation`] if `filtered` is empty, any
/// channel is empty, or `window` is zero.
pub fn segment(
    filtered: &[Vec<f64>],
    center: usize,
    window: usize,
) -> Result<MultiSeries, AuthError> {
    if filtered.is_empty() {
        return Err(AuthError::Segmentation {
            detail: "no channels".into(),
        });
    }
    if window == 0 {
        return Err(AuthError::Segmentation {
            detail: "zero segmentation window".into(),
        });
    }
    if let Some(i) = filtered.iter().position(|c| c.is_empty()) {
        return Err(AuthError::Segmentation {
            detail: format!("channel {i} is empty"),
        });
    }
    let channels: Vec<Vec<f64>> = filtered
        .iter()
        .map(|c| {
            // Clamp against THIS channel's length: a shorter later
            // channel used to panic on `c[start..start + window]` when
            // the bounds were derived from channel 0.
            let n = c.len();
            if n >= window {
                let half = window / 2;
                let start = center.saturating_sub(half).min(n - window);
                c[start..start + window].to_vec()
            } else {
                // Replicate the last sample to reach the window length.
                // INVARIANT: empty channels were rejected above.
                #[allow(clippy::expect_used)]
                let last = *c.last().expect("non-empty");
                let mut v = c.clone();
                v.resize(window, last);
                v
            }
        })
        .collect();
    // INVARIANT: every channel above has exactly `window` > 0 samples,
    // so the equal-length/non-empty checks of MultiSeries cannot fail.
    #[allow(clippy::expect_used)]
    let out = MultiSeries::new(channels).expect("segment construction cannot fail");
    Ok(out)
}

/// Extracts the full PIN-entry waveform: the span from `margin` samples
/// before the first keystroke to `margin` after the last, resampled to
/// `target_len` samples per channel so typing speed does not change the
/// model input size.
///
/// The crop bounds are clamped per channel and the **actual** crop
/// length is passed to the resampler, so every channel comes out at
/// exactly `target_len` samples even when a channel ends before the
/// nominal span does.
///
/// # Errors
///
/// Returns [`AuthError::Segmentation`] if `filtered` or `times` is
/// empty, any channel is empty, or `target_len` is zero.
pub fn full_waveform(
    filtered: &[Vec<f64>],
    times: &[usize],
    margin: usize,
    target_len: usize,
) -> Result<MultiSeries, AuthError> {
    if filtered.is_empty() {
        return Err(AuthError::Segmentation {
            detail: "no channels".into(),
        });
    }
    if times.is_empty() {
        return Err(AuthError::Segmentation {
            detail: "no keystroke times".into(),
        });
    }
    if target_len == 0 {
        return Err(AuthError::Segmentation {
            detail: "zero full-waveform target length".into(),
        });
    }
    if let Some(i) = filtered.iter().position(|c| c.is_empty()) {
        return Err(AuthError::Segmentation {
            detail: format!("channel {i} is empty"),
        });
    }
    // INVARIANT: `times` was rejected above if empty.
    #[allow(clippy::expect_used)]
    let first = *times.iter().min().expect("non-empty");
    #[allow(clippy::expect_used)]
    let last = *times.iter().max().expect("non-empty");
    let channels: Vec<Vec<f64>> = filtered
        .iter()
        .map(|c| {
            // Clamp the nominal span into THIS channel. The old code
            // took `n` from channel 0, could push `end` past `n` via
            // `.max(start + 2)`, and resampled a truncated crop as if
            // it still had the nominal span — silently stretching the
            // time axis and producing ragged channel lengths.
            let n = c.len();
            let start = first.saturating_sub(margin).min(n - 1);
            let end = last
                .saturating_add(margin)
                .saturating_add(1)
                .clamp(start + 1, n);
            let crop = &c[start..end];
            // Resample the true crop length to the fixed target length.
            resample_linear(crop, crop.len() as f64, target_len as f64)
        })
        .collect();
    // INVARIANT: resampling a crop of length L from rate L to rate
    // `target_len` yields round(L·target_len/L) = target_len > 0
    // samples for every channel, so MultiSeries::new cannot fail.
    #[allow(clippy::expect_used)]
    let out = MultiSeries::new(channels).expect("full waveform construction cannot fail");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_segment_is_centred() {
        let x: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let s = segment(&[x], 100, 90).expect("segments");
        assert_eq!(s.len(), 90);
        assert_eq!(s.channel(0)[0], 55.0); // 100 - 45
    }

    #[test]
    fn edge_segments_slide_inward() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = segment(std::slice::from_ref(&x), 2, 90).expect("segments");
        assert_eq!(s.channel(0)[0], 0.0);
        let s = segment(&[x], 99, 90).expect("segments");
        assert_eq!(*s.channel(0).last().unwrap(), 99.0);
        assert_eq!(s.len(), 90);
    }

    #[test]
    fn short_signal_padded() {
        let s = segment(&[vec![1.0, 2.0, 3.0]], 1, 10).expect("segments");
        assert_eq!(s.len(), 10);
        assert_eq!(s.channel(0)[9], 3.0);
    }

    #[test]
    fn degenerate_inputs_are_errors_not_panics() {
        assert!(matches!(
            segment(&[], 0, 10),
            Err(AuthError::Segmentation { .. })
        ));
        assert!(matches!(
            segment(&[vec![1.0]], 0, 0),
            Err(AuthError::Segmentation { .. })
        ));
        assert!(matches!(
            segment(&[vec![1.0], vec![]], 0, 4),
            Err(AuthError::Segmentation { .. })
        ));
        assert!(matches!(
            full_waveform(&[vec![1.0, 2.0]], &[], 5, 16),
            Err(AuthError::Segmentation { .. })
        ));
        assert!(matches!(
            full_waveform(&[vec![1.0, 2.0]], &[1], 5, 0),
            Err(AuthError::Segmentation { .. })
        ));
        assert!(matches!(
            full_waveform(&[Vec::new()], &[1], 5, 16),
            Err(AuthError::Segmentation { .. })
        ));
    }

    #[test]
    fn segment_handles_ragged_channels() {
        // Regression: `n` used to come from channel 0 only, so the
        // shorter channel 1 panicked on `c[start..start + window]`.
        let long: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let short: Vec<f64> = (0..40).map(|i| -(i as f64)).collect();
        let s = segment(&[long, short], 250, 50).expect("segments");
        assert_eq!(s.num_channels(), 2);
        assert_eq!(s.len(), 50);
        // Long channel: window [225, 275) as before.
        assert_eq!(s.channel(0)[0], 225.0);
        // Short channel (40 < window): replicate-padded to 50 samples.
        assert_eq!(s.channel(1)[0], 0.0);
        assert_eq!(*s.channel(1).last().unwrap(), -39.0);
    }

    #[test]
    fn full_waveform_handles_ragged_channels() {
        // Regression: a channel shorter than the nominal span used to
        // yield a crop resampled with the *nominal* span length,
        // producing fewer than `target_len` samples and panicking the
        // MultiSeries constructor with ragged channels.
        let long: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let short: Vec<f64> = (0..120).map(|i| i as f64).collect();
        let fw = full_waveform(&[long, short], &[100, 400], 40, 256).expect("waveform");
        assert_eq!(fw.num_channels(), 2);
        assert_eq!(fw.len(), 256);
        for ch in 0..2 {
            assert_eq!(fw.channel(ch).len(), 256);
        }
    }

    #[test]
    fn full_waveform_truncated_span_keeps_target_length() {
        // Regression: when `end` is clamped by the signal end, the crop
        // is shorter than the nominal span; the resampler used to be
        // told the nominal span and returned round(crop·target/span) ≠
        // target samples. The true crop length must be used.
        let x: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        // last + margin + 1 = 199 + 80 + 1 = 280 ≫ 200: heavy clamp.
        let fw = full_waveform(&[x], &[150, 199], 80, 128).expect("waveform");
        assert_eq!(fw.len(), 128);
    }

    #[test]
    fn full_waveform_span_past_all_channels() {
        // Keystroke times beyond a channel's end (possible pre-clamp
        // when channels are ragged) must still produce target_len.
        let x = vec![1.0, 2.0, 3.0];
        let fw = full_waveform(&[x], &[0, 2], 10, 32).expect("waveform");
        assert_eq!(fw.len(), 32);
        let tiny = vec![7.0];
        let fw = full_waveform(&[tiny], &[0], 0, 16).expect("waveform");
        assert_eq!(fw.len(), 16);
        assert!(fw.channel(0).iter().all(|&v| v == 7.0));
    }

    #[test]
    fn full_waveform_fixed_length_invariant_to_speed() {
        // Same shape typed slow vs fast should produce similar fixed-size
        // crops.
        let make = |scale: usize| -> (Vec<f64>, Vec<usize>) {
            let times: Vec<usize> = (0..4).map(|k| 50 + k * scale).collect();
            let n = times[3] + 100;
            let x = (0..n)
                .map(|i| {
                    times
                        .iter()
                        .enumerate()
                        .map(|(k, &t)| {
                            let d = (i as f64 - t as f64) / 5.0;
                            // Make the third keystroke unambiguously the
                            // tallest so argmax is well defined.
                            let amp = if k == 2 { 2.0 } else { 1.0 };
                            amp * (-d * d).exp()
                        })
                        .sum()
                })
                .collect();
            (x, times)
        };
        let (slow, t_slow) = make(140);
        let (fast, t_fast) = make(80);
        let a = full_waveform(&[slow], &t_slow, 40, 256).expect("waveform");
        let b = full_waveform(&[fast], &t_fast, 40, 256).expect("waveform");
        assert_eq!(a.len(), 256);
        assert_eq!(b.len(), 256);
        // Peaks land near the same normalized positions.
        let peak_pos = |s: &MultiSeries| -> usize {
            s.channel(0)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).unwrap())
                .unwrap()
                .0
        };
        let pa = peak_pos(&a) as i64;
        let pb = peak_pos(&b) as i64;
        assert!((pa - pb).abs() < 30, "peaks at {pa} vs {pb}");
    }

    #[test]
    fn multichannel_segments_aligned() {
        let a: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..300).map(|i| -(i as f64)).collect();
        let s = segment(&[a, b], 150, 50).expect("segments");
        assert_eq!(s.num_channels(), 2);
        for i in 0..50 {
            assert_eq!(s.channel(0)[i], -s.channel(1)[i]);
        }
    }
}
