//! Error type of the authentication pipeline.

use std::fmt;

/// Error from enrollment or authentication.
///
/// Note that a *rejected attempt* is not an error — rejection is the
/// `accepted == false` outcome of [`crate::AuthDecision`]. Errors are
/// malformed inputs or failed model training.
#[derive(Debug, Clone, PartialEq)]
pub enum AuthError {
    /// A recording failed structural validation.
    InvalidRecording {
        /// Human-readable description.
        detail: String,
    },
    /// Too few enrollment recordings.
    NotEnoughRecordings {
        /// Required minimum.
        needed: usize,
        /// Number provided.
        got: usize,
    },
    /// No usable third-party (negative) data.
    NoThirdPartyData,
    /// Enrollment recordings disagree on shape (channels/rate).
    InconsistentRecordings {
        /// Human-readable description.
        detail: String,
    },
    /// Feature-extractor fitting failed.
    FeatureExtraction {
        /// Human-readable description.
        detail: String,
    },
    /// Classifier training failed.
    Training {
        /// Human-readable description.
        detail: String,
    },
    /// The attempt's shape does not match the enrolled profile.
    ProfileMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// Waveform segmentation could not produce the expected windows
    /// (e.g. empty channels or a zero-length segmentation window).
    Segmentation {
        /// Human-readable description.
        detail: String,
    },
    /// A degraded-channel fallback was requested but cannot run — e.g.
    /// PIN-only fallback on a profile enrolled without a PIN.
    DegradedUnavailable {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::InvalidRecording { detail } => write!(f, "invalid recording: {detail}"),
            AuthError::NotEnoughRecordings { needed, got } => {
                write!(f, "need at least {needed} enrollment recordings, got {got}")
            }
            AuthError::NoThirdPartyData => write!(f, "no third-party training data"),
            AuthError::InconsistentRecordings { detail } => {
                write!(f, "inconsistent recordings: {detail}")
            }
            AuthError::FeatureExtraction { detail } => {
                write!(f, "feature extraction failed: {detail}")
            }
            AuthError::Training { detail } => write!(f, "training failed: {detail}"),
            AuthError::ProfileMismatch { detail } => write!(f, "profile mismatch: {detail}"),
            AuthError::Segmentation { detail } => write!(f, "segmentation failed: {detail}"),
            AuthError::DegradedUnavailable { detail } => {
                write!(f, "degraded fallback unavailable: {detail}")
            }
        }
    }
}

impl std::error::Error for AuthError {}
