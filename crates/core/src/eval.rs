//! Experiment protocol helpers used by the benchmark harness.
//!
//! The paper's evaluation (§V) repeatedly runs the same protocol: enroll
//! a user from part of their data (plus a third-party pool), then count
//! how often legitimate attempts are accepted (authentication accuracy)
//! and attack attempts rejected (true rejection rate). This module
//! packages that protocol so every figure harness shares one
//! implementation. It is simulation-agnostic: callers supply the
//! recordings.

use crate::auth;
use crate::config::P2AuthConfig;
use crate::enroll::{self, UserProfile};
use crate::error::AuthError;
use crate::types::{Pin, Recording};
use p2auth_ml::metrics::ConfusionCounts;

/// The tallies produced by one evaluation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalOutcome {
    /// Legitimate-attempt decisions (accuracy = TP rate).
    pub legit: ConfusionCounts,
    /// Attack-attempt decisions (TRR = TN rate).
    pub attacks: ConfusionCounts,
}

impl EvalOutcome {
    /// Authentication accuracy over legitimate attempts.
    pub fn accuracy(&self) -> Option<f64> {
        self.legit.authentication_accuracy()
    }

    /// True rejection rate over attack attempts.
    pub fn true_rejection_rate(&self) -> Option<f64> {
        self.attacks.true_rejection_rate()
    }

    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: &EvalOutcome) {
        self.legit.merge(&other.legit);
        self.attacks.merge(&other.attacks);
    }
}

/// Enrolls a profile and evaluates it against legitimate and attack
/// attempts using the PIN-checked flow.
///
/// # Errors
///
/// Propagates [`AuthError`] from enrollment or from malformed attempt
/// recordings.
pub fn run_protocol(
    config: &P2AuthConfig,
    pin: &Pin,
    enroll_recs: &[Recording],
    third_party: &[Recording],
    legit_attempts: &[Recording],
    attack_attempts: &[Recording],
) -> Result<EvalOutcome, AuthError> {
    let profile = enroll::enroll(config, pin, enroll_recs, third_party)?;
    evaluate_profile(config, &profile, pin, legit_attempts, attack_attempts)
}

/// Evaluates an existing profile (PIN-checked flow).
///
/// # Errors
///
/// Propagates [`AuthError`] from malformed attempt recordings.
pub fn evaluate_profile(
    config: &P2AuthConfig,
    profile: &UserProfile,
    pin: &Pin,
    legit_attempts: &[Recording],
    attack_attempts: &[Recording],
) -> Result<EvalOutcome, AuthError> {
    let mut out = EvalOutcome::default();
    for rec in legit_attempts {
        let d = auth::authenticate(config, profile, Some(pin), rec)?;
        out.legit.record(d.accepted, true);
    }
    for rec in attack_attempts {
        // The attacker types whatever PIN the attack scenario dictates;
        // the claimed PIN is what they entered.
        let d = auth::authenticate(config, profile, Some(&rec.pin_entered), rec)?;
        out.attacks.record(d.accepted, false);
    }
    Ok(out)
}

/// Evaluates a profile in the no-PIN flow (keystroke pattern only).
///
/// # Errors
///
/// Propagates [`AuthError`] from malformed attempt recordings.
pub fn evaluate_profile_no_pin(
    config: &P2AuthConfig,
    profile: &UserProfile,
    legit_attempts: &[Recording],
    attack_attempts: &[Recording],
) -> Result<EvalOutcome, AuthError> {
    let mut out = EvalOutcome::default();
    for rec in legit_attempts {
        let d = auth::authenticate(config, profile, None, rec)?;
        out.legit.record(d.accepted, true);
    }
    for rec in attack_attempts {
        let d = auth::authenticate(config, profile, None, rec)?;
        out.attacks.record(d.accepted, false);
    }
    Ok(out)
}

/// Splits a user's recordings into enrollment and test halves:
/// the first `n_enroll` recordings enroll, the rest test.
///
/// # Panics
///
/// Panics if `n_enroll` is zero or `>= recordings.len()`.
pub fn split_enroll_test(
    recordings: &[Recording],
    n_enroll: usize,
) -> (&[Recording], &[Recording]) {
    assert!(
        n_enroll > 0 && n_enroll < recordings.len(),
        "bad split point {n_enroll}/{}",
        recordings.len()
    );
    recordings.split_at(n_enroll)
}
