//! # P²Auth core — the two-factor authentication pipeline
//!
//! Reproduction of the primary contribution of *P²Auth: Two-Factor
//! Authentication Leveraging PIN and Keystroke-Induced PPG Measurements*
//! (Su et al., ICDCS 2023): verifying a user from (1) the PIN they type
//! and (2) the keystroke-induced PPG transients their wrist produces
//! while typing it.
//!
//! The pipeline follows the paper's workflow (Fig. 4):
//!
//! 1. **Preprocessing** ([`preprocess`]) — median-filter noise removal,
//!    fine-grained keystroke-time calibration (SG filter + extreme-point
//!    search, Eq. (1)), and PIN-input-case identification
//!    (smoothness-priors detrending + short-time-energy threshold).
//! 2. **Enrollment** ([`enroll`]) — waveform segmentation, optional
//!    privacy-boost waveform fusion (Eq. (4)), MiniRocket feature
//!    extraction, and per-user binary classifier training (a
//!    full-waveform model plus per-key single-waveform models).
//! 3. **Authentication** ([`auth`]) — PIN verification, case dispatch,
//!    per-keystroke classification and results integration (2-of-3 /
//!    2-of-2 rules, lone-keystroke rejection), plus the no-PIN policy.
//!
//! [`eval`] provides the experiment protocol used by the benchmark
//! harness (train/test splits, attack scenarios, metric tallies).
//!
//! See the crate-level example in the `p2auth` facade crate and
//! `examples/quickstart.rs` for end-to-end usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Device input must never panic the pipeline: every non-test
// `unwrap`/`expect` needs a per-site `#[allow]` paired with an
// `// INVARIANT:` comment proving it unreachable (see DESIGN.md,
// "Numerical correctness & oracles").
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod auth;
pub mod config;
pub mod enroll;
pub mod error;
pub mod eval;
pub mod preprocess;
pub mod quality;
pub mod types;

pub use arena::{ProfileArena, SessionScratch};
pub use auth::{AuthDecision, KeystrokeVote, RejectReason};
pub use config::{DegradedFallback, P2AuthConfig, PinPolicy, SingleModelKind};
pub use enroll::UserProfile;
pub use error::AuthError;
pub use preprocess::{CaseReport, InputCase};
pub use quality::{AttemptQuality, KeystrokeQuality, QualityFlags, SegmentQuality};
pub use types::{
    AccelTrack, ChannelInfo, HandMode, Pin, PinError, Placement, Recording, UserId, Wavelength,
};

use types::{Pin as PinT, Recording as Rec};

/// The P²Auth two-factor authentication system.
///
/// Construct once from a [`P2AuthConfig`], then use
/// [`P2Auth::enroll`] to register users and [`P2Auth::authenticate`] to
/// verify attempts. The struct is stateless apart from its
/// configuration; user state lives in [`UserProfile`].
#[derive(Debug, Clone)]
pub struct P2Auth {
    config: P2AuthConfig,
}

impl P2Auth {
    /// Creates a system with the given configuration.
    pub fn new(config: P2AuthConfig) -> Self {
        Self { config }
    }

    /// Borrow of the active configuration.
    pub fn config(&self) -> &P2AuthConfig {
        &self.config
    }

    /// Enrolls a user: preprocesses the recordings, trains the
    /// full-waveform and per-key models and returns the profile.
    ///
    /// `third_party` recordings play the paper's "third parties" role —
    /// negative examples stored on the phone for classifier training
    /// (§IV-B 2, Fig. 14 studies their number).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if recordings are malformed, too few, or
    /// classifier training fails.
    pub fn enroll(
        &self,
        pin: &PinT,
        recordings: &[Rec],
        third_party: &[Rec],
    ) -> Result<UserProfile, AuthError> {
        enroll::enroll(&self.config, pin, recordings, third_party)
    }

    /// Enrolls a user without a fixed PIN: only per-key single-waveform
    /// models are trained; authentication uses keystroke patterns alone
    /// (paper §IV-B 2.6, "unlock phone without having to preset a PIN").
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] under the same conditions as
    /// [`P2Auth::enroll`].
    pub fn enroll_no_pin(
        &self,
        recordings: &[Rec],
        third_party: &[Rec],
    ) -> Result<UserProfile, AuthError> {
        enroll::enroll_keystrokes_only(&self.config, recordings, third_party)
    }

    /// Authenticates one attempt against a profile with the PIN factor
    /// checked first (the paper's main flow).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the recording is malformed.
    pub fn authenticate(
        &self,
        profile: &UserProfile,
        claimed_pin: &PinT,
        attempt: &Rec,
    ) -> Result<AuthDecision, AuthError> {
        auth::authenticate(&self.config, profile, Some(claimed_pin), attempt)
    }

    /// Folds a profile's enrolled models into a [`ProfileArena`] for
    /// the fused single-auth hot path. Build once per profile (e.g. at
    /// unlock-screen bring-up or server-side profile load) and share
    /// across sessions; decisions through
    /// [`P2Auth::authenticate_arena`] are bit-identical to
    /// [`P2Auth::authenticate`].
    pub fn arena(&self, profile: &UserProfile) -> ProfileArena {
        ProfileArena::build(profile)
    }

    /// Authenticates one attempt against a prebuilt [`ProfileArena`],
    /// reusing the caller's [`SessionScratch`]: transform-and-score
    /// with no materialized feature vector and (steady-state) no heap
    /// allocation in the rocket/ml layers.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the recording is malformed.
    pub fn authenticate_arena(
        &self,
        arena: &ProfileArena,
        scratch: &mut SessionScratch,
        claimed_pin: &PinT,
        attempt: &Rec,
    ) -> Result<AuthDecision, AuthError> {
        auth::authenticate_arena(&self.config, arena, scratch, Some(claimed_pin), attempt)
    }

    /// [`P2Auth::authenticate_no_pin`] against a prebuilt
    /// [`ProfileArena`] (bit-identical decisions).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the recording is malformed.
    pub fn authenticate_arena_no_pin(
        &self,
        arena: &ProfileArena,
        scratch: &mut SessionScratch,
        attempt: &Rec,
    ) -> Result<AuthDecision, AuthError> {
        auth::authenticate_arena(&self.config, arena, scratch, None, attempt)
    }

    /// [`P2Auth::authenticate_degraded`] against a prebuilt
    /// [`ProfileArena`]: the degraded fallback only consults the
    /// enrolled PIN, which the arena carries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`P2Auth::authenticate_degraded`].
    pub fn authenticate_degraded_arena(
        &self,
        arena: &ProfileArena,
        claimed_pin: Option<&PinT>,
        attempt: &Rec,
    ) -> Result<AuthDecision, AuthError> {
        auth::authenticate_degraded_arena(&self.config, arena, claimed_pin, attempt)
    }

    /// Authenticates a session whose PPG stream was too degraded for
    /// the biometric factor; the configured
    /// [`config::DegradedFallback`] policy decides (reject outright,
    /// or fall back to PIN-only verification).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the recording is malformed or the
    /// fallback cannot run (e.g. PIN-only without an enrolled PIN).
    pub fn authenticate_degraded(
        &self,
        profile: &UserProfile,
        claimed_pin: Option<&PinT>,
        attempt: &Rec,
    ) -> Result<AuthDecision, AuthError> {
        auth::authenticate_degraded(&self.config, profile, claimed_pin, attempt)
    }

    /// Assesses the per-keystroke signal quality of an attempt without
    /// making an authentication decision: runs preprocessing and
    /// segmentation, then scores every detected segment's SQI against
    /// the profile's enrolled perfusion range.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the recording is malformed or
    /// segmentation fails.
    pub fn assess_quality(
        &self,
        profile: &UserProfile,
        attempt: &Rec,
    ) -> Result<AttemptQuality, AuthError> {
        quality::assess_attempt(&self.config, profile, attempt)
    }

    /// [`P2Auth::assess_quality`] against a prebuilt [`ProfileArena`];
    /// the verdict is identical to assessing against the source
    /// profile.
    ///
    /// # Errors
    ///
    /// Same conditions as [`P2Auth::assess_quality`].
    pub fn assess_quality_arena(
        &self,
        arena: &ProfileArena,
        attempt: &Rec,
    ) -> Result<AttemptQuality, AuthError> {
        quality::assess_attempt_arena(&self.config, arena, attempt)
    }

    /// Authenticates without a fixed PIN (paper §IV-B 2.6: "the NO-PIN
    /// case will not check the legitimacy of the password entered").
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the recording is malformed.
    pub fn authenticate_no_pin(
        &self,
        profile: &UserProfile,
        attempt: &Rec,
    ) -> Result<AuthDecision, AuthError> {
        auth::authenticate(&self.config, profile, None, attempt)
    }
}
