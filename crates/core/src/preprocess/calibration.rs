//! Fine-grained keystroke-time calibration (paper §IV-B 1.2, Eq. (1)).
//!
//! The smartphone's keystroke timestamps reach the acquisition side
//! through a link with "dynamically changing communication delay", so
//! they are only coarse. The calibration smooths the signal with an SG
//! filter, then searches local extrema within a window around each
//! reported time for the point that deviates most from the local mean —
//! keystrokes "always produce larger peaks and troughs than heartbeats
//! do".

use crate::config::P2AuthConfig;
use p2auth_dsp::peaks::calibrate_keystroke_asym;
use p2auth_dsp::savgol::savgol_filter;

/// Calibrates every reported keystroke time against the filtered
/// multichannel PPG.
///
/// For each reported time, every channel proposes its best extremum
/// (Eq. (1) objective on that channel's SG-smoothed signal); the
/// proposal with the highest objective wins. If no channel finds an
/// extremum in range (e.g. flat signal), the reported time is kept.
pub fn calibrate_times(
    config: &P2AuthConfig,
    filtered: &[Vec<f64>],
    reported: &[usize],
    sample_rate: f64,
) -> Vec<usize> {
    let sg_win = config.scale_window(config.savgol_window, sample_rate);
    let sg_order = config.savgol_order.min(sg_win.saturating_sub(1));
    let w = config.scale_window(config.calibration_window, sample_rate);
    let before = config.scale_window(config.calibration_radius_before, sample_rate);
    let after = config.scale_window(config.calibration_radius_after, sample_rate);
    let smoothed: Vec<Vec<f64>> = filtered
        .iter()
        .map(|c| savgol_filter(c, sg_win, sg_order))
        .collect();
    reported
        .iter()
        .map(|&t| {
            let mut best: Option<(usize, f64)> = None;
            for ch in &smoothed {
                if let Some(c) = calibrate_keystroke_asym(ch, t, before, after, w) {
                    if best.is_none_or(|(_, s)| c.score > s) {
                        best = Some((c.index, c.score));
                    }
                }
            }
            best.map_or(t, |(idx, _)| idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesizes a slow "heartbeat" plus a sharp trough at `at`.
    fn signal_with_keystroke(n: usize, at: usize, depth: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let heart = 0.3 * (i as f64 * 2.0 * std::f64::consts::PI / 90.0).sin();
                let d = (i as f64 - at as f64) / 4.0;
                heart - depth * (-d * d).exp()
            })
            .collect()
    }

    #[test]
    fn snaps_reported_time_to_artifact() {
        let cfg = P2AuthConfig::default();
        let truth = 200;
        let x = signal_with_keystroke(500, truth, 2.0);
        // Reported 12 samples late (120 ms communication delay).
        let cal = calibrate_times(&cfg, &[x], &[truth + 12], 100.0);
        assert!(
            (cal[0] as i64 - truth as i64).abs() <= 4,
            "calibrated to {} want ~{truth}",
            cal[0]
        );
    }

    #[test]
    fn multi_channel_picks_strongest() {
        let cfg = P2AuthConfig::default();
        let truth = 150;
        let weak = signal_with_keystroke(400, truth, 0.4);
        let strong = signal_with_keystroke(400, truth, 3.0);
        let cal = calibrate_times(&cfg, &[weak, strong], &[truth + 10], 100.0);
        assert!((cal[0] as i64 - truth as i64).abs() <= 4);
    }

    #[test]
    fn falls_back_to_reported_on_flat_signal() {
        let cfg = P2AuthConfig::default();
        let x = vec![1.0; 300];
        let cal = calibrate_times(&cfg, &[x], &[100], 100.0);
        assert_eq!(cal, vec![100]);
    }

    #[test]
    fn handles_multiple_keystrokes() {
        let cfg = P2AuthConfig::default();
        let truths = [100_usize, 210, 320, 430];
        let mut x = vec![0.0; 550];
        for &t in &truths {
            let bump = signal_with_keystroke(550, t, 2.0);
            for (a, b) in x.iter_mut().zip(&bump) {
                *a += b / truths.len() as f64;
            }
        }
        let reported: Vec<usize> = truths.iter().map(|&t| t + 8).collect();
        let cal = calibrate_times(&cfg, &[x], &reported, 100.0);
        for (c, &t) in cal.iter().zip(&truths) {
            assert!(
                (*c as i64 - t as i64).abs() <= 5,
                "calibrated {c} want ~{t}"
            );
        }
    }

    #[test]
    fn scales_with_sample_rate() {
        let cfg = P2AuthConfig::default();
        // Same scenario at 50 Hz: indices halve.
        let truth = 100;
        let x = signal_with_keystroke(250, truth, 2.0);
        let cal = calibrate_times(&cfg, &[x], &[truth + 6], 50.0);
        assert!((cal[0] as i64 - truth as i64).abs() <= 4);
    }
}
