//! PIN-input-case identification (paper §IV-B 1.3).
//!
//! After removing baseline drift with the smoothness-priors method, the
//! short-time energy of each channel is compared against a threshold
//! (half the mean short-time energy) in a window around each calibrated
//! keystroke time. If all keystrokes are detected the one-handed model
//! is used, otherwise the two-handed (per-keystroke) models.

use crate::config::P2AuthConfig;
use p2auth_dsp::detrend::detrend;
use p2auth_dsp::energy::{energy_around, short_time_energy};
use p2auth_dsp::stats::quantile;

/// The input case the identification step resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputCase {
    /// Every keystroke detected: one-handed input (full-waveform model).
    OneHanded,
    /// Exactly three keystrokes by the watch hand.
    TwoHandedThree,
    /// Exactly two keystrokes by the watch hand.
    TwoHandedTwo,
    /// One or zero keystrokes detected — rejected "for the sake of
    /// system security" (paper §IV-B 2.6).
    Insufficient,
}

/// Detailed result of the input-case identification.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseReport {
    /// Per reported keystroke: whether a keystroke event is present.
    pub present: Vec<bool>,
    /// The resolved case.
    pub case: InputCase,
}

impl CaseReport {
    /// Number of detected keystrokes.
    pub fn present_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }
}

/// Identifies the input case from detrended short-time energy around
/// each calibrated keystroke time.
///
/// A keystroke is declared present when at least half of the channels
/// see above-threshold energy in the decision window (per-channel
/// thresholds, half of that channel's mean short-time energy).
pub fn identify_case(
    config: &P2AuthConfig,
    filtered: &[Vec<f64>],
    calibrated_times: &[usize],
    sample_rate: f64,
) -> CaseReport {
    let window = config.scale_window(config.energy_window, sample_rate);
    let num_channels = filtered.len();
    // Detrend once per channel; derive each channel's threshold. A
    // non-positive lambda disables detrending entirely (the ablation
    // switch) — note detrend(x, 0) would subtract the signal itself.
    let detrended: Vec<Vec<f64>> = if config.detrend_lambda > 0.0 {
        filtered
            .iter()
            .map(|c| detrend(c, config.detrend_lambda))
            .collect()
    } else {
        filtered.to_vec()
    };
    // Per-channel threshold: the paper's fraction of the mean
    // short-time energy, floored by a multiple of the *median* energy.
    // The median floor handles two failure modes of the bare 1/2-mean
    // rule: (a) noise-dominated channels, where every window sits near
    // the mean and the rule fires everywhere, and (b) the selection
    // bias of measuring at *calibrated* positions — calibration snaps
    // to the strongest local extremum, so even keystroke-free positions
    // read 2-3x the median energy. Keystroke bursts are 10-50x the
    // median, so a 4x floor separates cleanly.
    let thresholds: Vec<f64> = detrended
        .iter()
        .map(|c| {
            let energies = short_time_energy(c, window, window);
            if energies.is_empty() {
                return 0.0;
            }
            let mean = energies.iter().sum::<f64>() / energies.len() as f64;
            let median = quantile(&energies, 0.5);
            (config.energy_threshold_factor * mean).max(4.0 * median)
        })
        .collect();
    let present: Vec<bool> = calibrated_times
        .iter()
        .map(|&t| {
            let votes = detrended
                .iter()
                .zip(&thresholds)
                .filter(|(c, &thr)| energy_around(c, t, window) > thr)
                .count();
            2 * votes >= num_channels
        })
        .collect();
    let count = present.iter().filter(|&&p| p).count();
    let case = if count == calibrated_times.len() && !calibrated_times.is_empty() {
        InputCase::OneHanded
    } else {
        match count {
            3 => InputCase::TwoHandedThree,
            2 => InputCase::TwoHandedTwo,
            _ => InputCase::Insufficient,
        }
    };
    CaseReport { present, case }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a signal with a slow drift, a weak pulse train, and sharp
    /// keystroke transients at the given times.
    fn synth(n: usize, keystrokes: &[usize]) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                let drift = 0.002 * t;
                let pulse = 0.25 * (t * 2.0 * std::f64::consts::PI / 85.0).sin();
                let mut v = drift + pulse;
                for &k in keystrokes {
                    let d = (t - k as f64) / 5.0;
                    v += 2.0 * (-d * d).exp() * (0.9 * (t - k as f64)).sin();
                }
                v
            })
            .collect()
    }

    fn times() -> Vec<usize> {
        vec![100, 210, 320, 430]
    }

    #[test]
    fn all_keystrokes_one_handed() {
        let cfg = P2AuthConfig::default();
        let x = synth(550, &times());
        let rep = identify_case(&cfg, &[x], &times(), 100.0);
        assert_eq!(rep.case, InputCase::OneHanded);
        assert_eq!(rep.present_count(), 4);
    }

    #[test]
    fn three_of_four_two_handed() {
        let cfg = P2AuthConfig::default();
        let x = synth(550, &[100, 210, 430]); // keystroke at 320 missing
        let rep = identify_case(&cfg, &[x], &times(), 100.0);
        assert_eq!(rep.case, InputCase::TwoHandedThree);
        assert_eq!(rep.present, vec![true, true, false, true]);
    }

    #[test]
    fn two_of_four_two_handed() {
        let cfg = P2AuthConfig::default();
        let x = synth(550, &[210, 430]);
        let rep = identify_case(&cfg, &[x], &times(), 100.0);
        assert_eq!(rep.case, InputCase::TwoHandedTwo);
    }

    #[test]
    fn lone_keystroke_insufficient() {
        let cfg = P2AuthConfig::default();
        let x = synth(550, &[210]);
        let rep = identify_case(&cfg, &[x], &times(), 100.0);
        assert_eq!(rep.case, InputCase::Insufficient);
    }

    #[test]
    fn detrending_defeats_baseline_drift() {
        // The paper's motivation for Eq. (2): "non-linear baseline drift
        // ... can cause irregular energy variations that interfere with
        // the subsequent energy-based analysis". A strong ramp plus
        // keystrokes must still resolve to OneHanded, with exactly the
        // true keystrokes detected.
        let cfg = P2AuthConfig::default();
        let base = synth(550, &times());
        let drifted: Vec<f64> = base
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.08 * i as f64)
            .collect();
        let rep = identify_case(&cfg, &[drifted], &times(), 100.0);
        assert_eq!(rep.case, InputCase::OneHanded);
        assert_eq!(rep.present, vec![true; 4]);
    }

    #[test]
    fn channel_majority_vote() {
        let cfg = P2AuthConfig::default();
        let with = synth(550, &times());
        let without = synth(550, &[]);
        // 2 of 2 channels agree -> present; 1 of 2 -> majority (>= half).
        let rep = identify_case(&cfg, &[with.clone(), with.clone()], &times(), 100.0);
        assert_eq!(rep.case, InputCase::OneHanded);
        let rep = identify_case(&cfg, &[with, without], &times(), 100.0);
        // One channel still sees the keystrokes: majority rule keeps them.
        assert_eq!(rep.case, InputCase::OneHanded);
    }
}
