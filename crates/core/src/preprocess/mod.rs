//! PPG-sample preprocessing (paper §IV-B 1, Fig. 4 "Preprocessing
//! phase"): noise removal, fine-grained keystroke-time calibration and
//! PIN-input-case identification.

pub mod calibration;
pub mod case_id;
pub mod noise;
pub mod wear;

use crate::config::P2AuthConfig;
use crate::error::AuthError;
use crate::types::Recording;
pub use case_id::{CaseReport, InputCase};

/// The output of the preprocessing phase for one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Preprocessed {
    /// Median-filtered PPG channels.
    pub filtered: Vec<Vec<f64>>,
    /// Calibrated keystroke times (sample indices), one per reported
    /// keystroke.
    pub calibrated_times: Vec<usize>,
    /// Input-case identification result.
    pub case: CaseReport,
    /// Sampling rate of the signals (copied from the recording).
    pub sample_rate: f64,
}

/// Runs the full preprocessing chain on one recording.
///
/// # Errors
///
/// Returns [`AuthError::InvalidRecording`] if the recording fails
/// structural validation.
pub fn preprocess(config: &P2AuthConfig, rec: &Recording) -> Result<Preprocessed, AuthError> {
    let _span = p2auth_obs::span!("core.preprocess");
    rec.validate().map_err(|detail| {
        p2auth_obs::event!("core.preprocess", "invalid_recording");
        AuthError::InvalidRecording { detail }
    })?;
    p2auth_obs::counter!("core.preprocess.samples")
        .add(rec.ppg.iter().map(Vec::len).sum::<usize>() as u64);
    let filtered = {
        let _span = p2auth_obs::span!("core.preprocess.noise");
        noise::remove_noise(config, rec)
    };
    let calibrated_times = {
        let _span = p2auth_obs::span!("core.preprocess.calibrate");
        calibration::calibrate_times(config, &filtered, &rec.reported_key_times, rec.sample_rate)
    };
    p2auth_obs::counter!("core.calibration.keystrokes").add(calibrated_times.len() as u64);
    let case = {
        let _span = p2auth_obs::span!("core.preprocess.case_id");
        case_id::identify_case(config, &filtered, &calibrated_times, rec.sample_rate)
    };
    // Signal quality: the fraction of reported keystrokes whose PPG
    // response was actually detected.
    if !case.present.is_empty() {
        #[allow(clippy::cast_precision_loss)]
        p2auth_obs::gauge!("core.case_id.signal_quality")
            .set(case.present_count() as f64 / case.present.len() as f64);
    }
    Ok(Preprocessed {
        filtered,
        calibrated_times,
        case,
        sample_rate: rec.sample_rate,
    })
}
