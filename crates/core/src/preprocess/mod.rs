//! PPG-sample preprocessing (paper §IV-B 1, Fig. 4 "Preprocessing
//! phase"): noise removal, fine-grained keystroke-time calibration and
//! PIN-input-case identification.

pub mod calibration;
pub mod case_id;
pub mod noise;
pub mod wear;

use crate::config::P2AuthConfig;
use crate::error::AuthError;
use crate::types::Recording;
pub use case_id::{CaseReport, InputCase};

/// The output of the preprocessing phase for one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct Preprocessed {
    /// Median-filtered PPG channels.
    pub filtered: Vec<Vec<f64>>,
    /// Calibrated keystroke times (sample indices), one per reported
    /// keystroke.
    pub calibrated_times: Vec<usize>,
    /// Input-case identification result.
    pub case: CaseReport,
    /// Sampling rate of the signals (copied from the recording).
    pub sample_rate: f64,
}

/// Runs the full preprocessing chain on one recording.
///
/// # Errors
///
/// Returns [`AuthError::InvalidRecording`] if the recording fails
/// structural validation.
pub fn preprocess(config: &P2AuthConfig, rec: &Recording) -> Result<Preprocessed, AuthError> {
    rec.validate()
        .map_err(|detail| AuthError::InvalidRecording { detail })?;
    let filtered = noise::remove_noise(config, rec);
    let calibrated_times =
        calibration::calibrate_times(config, &filtered, &rec.reported_key_times, rec.sample_rate);
    let case = case_id::identify_case(config, &filtered, &calibrated_times, rec.sample_rate);
    Ok(Preprocessed {
        filtered,
        calibrated_times,
        case,
        sample_rate: rec.sample_rate,
    })
}
