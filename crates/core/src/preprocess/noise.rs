//! Noise removal (paper §IV-B 1.1): a median filter per channel,
//! "a non-linear filtering method that performs well at preserving
//! detailed information about the signals while filtering out the
//! noise".

use crate::config::P2AuthConfig;
use crate::types::Recording;
use p2auth_dsp::median::median_filter;

/// Median-filters every PPG channel of the recording. The window is
/// scaled from the 100 Hz reference to the recording's rate.
pub fn remove_noise(config: &P2AuthConfig, rec: &Recording) -> Vec<Vec<f64>> {
    let window = config.scale_window(config.median_window, rec.sample_rate);
    rec.ppg.iter().map(|c| median_filter(c, window)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelInfo, HandMode, Pin, Placement, UserId, Wavelength};

    fn rec_with(ppg: Vec<Vec<f64>>) -> Recording {
        let channels = ppg
            .iter()
            .map(|_| ChannelInfo {
                wavelength: Wavelength::Infrared,
                placement: Placement::Radial,
            })
            .collect();
        Recording {
            user: UserId(0),
            sample_rate: 100.0,
            ppg,
            channels,
            accel: None,
            pin_entered: Pin::new("1628").unwrap(),
            reported_key_times: vec![10, 20, 30, 40],
            true_key_times: vec![10, 20, 30, 40],
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn removes_impulses_on_all_channels() {
        let mut a = vec![0.0; 100];
        a[50] = 40.0;
        let mut b = vec![1.0; 100];
        b[60] = -40.0;
        let out = remove_noise(&P2AuthConfig::default(), &rec_with(vec![a, b]));
        assert!(out[0].iter().all(|v| v.abs() < 1e-9));
        assert!(out[1].iter().all(|v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn window_scales_with_rate() {
        // At 30 Hz the 5-sample window becomes 1 or 3; just check the
        // call path does not panic and preserves length.
        let mut rec = rec_with(vec![vec![0.5; 60]]);
        rec.sample_rate = 30.0;
        let out = remove_noise(&P2AuthConfig::default(), &rec);
        assert_eq!(out[0].len(), 60);
    }
}
