//! Watch-wear detection from heart-rate periodicity.
//!
//! The paper's usage model (§VI) authenticates "at the initial moment
//! of wearing the watch, after which the wear of the watch is detected
//! based on the heart rate status" — i.e. as long as a plausible pulse
//! is present, the session stays bound to the wearer; if the watch
//! comes off, the binding is dropped and the next use re-authenticates.
//!
//! This module implements that check: a signal counts as "worn" when
//! its autocorrelation shows a dominant periodicity inside the human
//! heart-rate band (40–180 bpm) with sufficient strength.

use p2auth_dsp::detrend::detrend;
use p2auth_dsp::stats::autocorrelation;

/// Configuration for [`detect_wear`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearConfig {
    /// Lowest plausible heart rate (Hz); 40 bpm default.
    pub min_rate_hz: f64,
    /// Highest plausible heart rate (Hz); 180 bpm default.
    pub max_rate_hz: f64,
    /// Minimum autocorrelation at the detected beat lag.
    pub min_periodicity: f64,
    /// Detrending strength applied before the periodicity test.
    pub detrend_lambda: f64,
}

impl Default for WearConfig {
    fn default() -> Self {
        Self {
            min_rate_hz: 40.0 / 60.0,
            max_rate_hz: 180.0 / 60.0,
            min_periodicity: 0.30,
            detrend_lambda: 300.0,
        }
    }
}

/// Result of a wear check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearStatus {
    /// Whether a plausible pulse was found.
    pub worn: bool,
    /// Estimated heart rate (Hz) when `worn` (best in-band lag).
    pub heart_rate_hz: Option<f64>,
    /// Autocorrelation strength at the detected lag.
    pub periodicity: f64,
}

/// Checks whether `ppg` (one channel, `rate` Hz) shows the cardiac
/// periodicity of a worn device.
///
/// The signal is detrended, then the autocorrelation is scanned over
/// lags corresponding to the configured heart-rate band; the strongest
/// in-band peak decides.
///
/// Returns `worn == false` for signals shorter than two beats at the
/// lowest configured rate.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite or the config
/// band is inverted.
pub fn detect_wear(ppg: &[f64], rate: f64, config: &WearConfig) -> WearStatus {
    assert!(rate > 0.0 && rate.is_finite(), "bad sample rate");
    assert!(
        config.min_rate_hz < config.max_rate_hz,
        "inverted heart-rate band"
    );
    let min_lag = (rate / config.max_rate_hz).floor().max(1.0) as usize;
    let max_lag = (rate / config.min_rate_hz).ceil() as usize;
    if ppg.len() < 2 * max_lag {
        return WearStatus {
            worn: false,
            heart_rate_hz: None,
            periodicity: 0.0,
        };
    }
    let det = detrend(ppg, config.detrend_lambda);
    let mut best = (0_usize, f64::NEG_INFINITY);
    for lag in min_lag..=max_lag {
        let ac = autocorrelation(&det, lag);
        if ac > best.1 {
            best = (lag, ac);
        }
    }
    let worn = best.1 >= config.min_periodicity;
    WearStatus {
        worn,
        heart_rate_hz: worn.then(|| rate / best.0 as f64),
        periodicity: best.1.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse_like(n: usize, rate: f64, hr_hz: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / rate;
                // Sharpened periodic pulse plus drift.
                let phase = (t * hr_hz).fract();
                let lobe = (-(phase - 0.15) * (phase - 0.15) / 0.004).exp();
                lobe + 0.3 * (0.2 * t).sin()
            })
            .collect()
    }

    #[test]
    fn detects_pulse_as_worn() {
        let x = pulse_like(800, 100.0, 1.2);
        let status = detect_wear(&x, 100.0, &WearConfig::default());
        assert!(status.worn, "periodicity {}", status.periodicity);
        let hr = status.heart_rate_hz.expect("worn implies rate");
        assert!((hr - 1.2).abs() < 0.2, "estimated HR {hr}");
    }

    #[test]
    fn white_noise_is_not_worn() {
        // Deterministic pseudo-noise (splitmix-style hash per index, so
        // there is no residual periodicity for the detector to find).
        let x: Vec<f64> = (0..800_u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((z >> 11) as f64 / (1_u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect();
        let status = detect_wear(&x, 100.0, &WearConfig::default());
        assert!(
            !status.worn,
            "noise flagged as worn ({})",
            status.periodicity
        );
    }

    #[test]
    fn flat_signal_is_not_worn() {
        let x = vec![0.7; 800];
        assert!(!detect_wear(&x, 100.0, &WearConfig::default()).worn);
    }

    #[test]
    fn too_short_signal_is_not_worn() {
        let x = pulse_like(50, 100.0, 1.2);
        assert!(!detect_wear(&x, 100.0, &WearConfig::default()).worn);
    }

    #[test]
    fn out_of_band_periodicity_rejected() {
        // A 0.3 Hz oscillation (18 bpm — not a heart rate).
        let x: Vec<f64> = (0..1200)
            .map(|i| (std::f64::consts::TAU * 0.3 * i as f64 / 100.0).sin())
            .collect();
        let status = detect_wear(&x, 100.0, &WearConfig::default());
        // The best in-band lag exists but must be weak relative to a
        // true pulse; allow either rejection or a weak estimate.
        if status.worn {
            let hr = status.heart_rate_hz.unwrap();
            assert!(hr >= 40.0 / 60.0, "reported out-of-band rate {hr}");
        }
    }

    #[test]
    fn simulated_idle_wrist_reads_as_worn() {
        use p2auth_sim::{Population, PopulationConfig, SessionConfig};
        let pop = Population::generate(&PopulationConfig {
            num_users: 3,
            seed: 12,
            ..Default::default()
        });
        let session = SessionConfig::default();
        for user in 0..3 {
            let idle = pop.record_idle(user, 8.0, &session, 1);
            let status = detect_wear(&idle[0], session.sample_rate, &WearConfig::default());
            assert!(
                status.worn,
                "user {user} idle wrist not detected as worn ({})",
                status.periodicity
            );
        }
    }
}
