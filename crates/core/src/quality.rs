//! Per-segment signal quality assessment (SQI).
//!
//! Real wrist-worn PPG fails in ways the link layer cannot see: a
//! saturated LED, a detached band, gross wrist motion during PIN entry.
//! This module scores every keystroke segment with cheap statistics the
//! pipeline already computes nearby, so the decision logic can weight,
//! exclude, or re-prompt instead of authenticating on garbage:
//!
//! * **Clipping fraction** — samples pinned at the segment extreme
//!   (LED/ADC saturation rails).
//! * **Flatline run** — longest run of unchanging samples (saturation
//!   or sample-and-hold dropouts).
//! * **Short-time-energy outlier** — the segment's detrend-residual
//!   energy against the attempt's median segment energy (gross motion
//!   bursts dwarf real keystroke artifacts).
//! * **Inter-channel correlation** — radial/ulnar channels see the same
//!   cardiovascular signal; a detached or noise-dominated channel
//!   decorrelates.
//! * **Perfusion amplitude** — peak-to-peak against the subject's
//!   enrolled range (detached bands collapse it, saturation inflates
//!   it).
//!
//! Every statistic has a *clean margin*: a segment inside all margins
//! scores exactly `1.0`, so on fault-free input quality weighting is
//! bit-for-bit invisible (the gating-invariance tests pin this).
//! Segments below [`crate::P2AuthConfig::sqi_floor`] are excluded from
//! voting entirely and surface as
//! [`crate::RejectReason::PoorSignal`] when too few remain.

use crate::config::P2AuthConfig;
use crate::enroll::{extract_for_auth, UserProfile};
use crate::error::AuthError;
use crate::preprocess;
use crate::types::Recording;
use p2auth_dsp::detrend::detrend;
use p2auth_dsp::stats::peak_to_peak;
use p2auth_rocket::MultiSeries;

/// Clipping fraction above which a segment is flagged as clipped. A
/// clean noisy segment touches its extreme a couple of samples out of
/// ~90; a railed one sits there for whole episodes.
const CLIP_FRAC_FLAG: f64 = 0.08;
/// Flatline fraction (longest unchanged run / segment length) above
/// which a segment is flagged.
const FLATLINE_FRAC_FLAG: f64 = 0.20;
/// Detrend-residual energy ratio (segment / attempt median) above which
/// a segment is flagged as a motion outlier. Clean keystroke coupling
/// varies the ratio by well under an order of magnitude.
const ENERGY_RATIO_FLAG: f64 = 10.0;
/// Minimum inter-channel correlation before a multi-channel segment is
/// flagged as decorrelated.
const CORR_FLAG: f64 = 0.25;
/// Allowed perfusion band relative to the enrolled `(lo, hi)` range:
/// `[PERFUSION_LO_FACTOR * lo, PERFUSION_HI_FACTOR * hi]`.
const PERFUSION_LO_FACTOR: f64 = 0.25;
/// See [`PERFUSION_LO_FACTOR`].
const PERFUSION_HI_FACTOR: f64 = 4.0;
/// Subscores never collapse below this, so one bad statistic cannot
/// zero the SQI outright (the flags carry the diagnosis).
const MIN_SUBSCORE: f64 = 0.05;

/// Which quality checks a segment failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QualityFlags {
    /// Too many samples pinned at the segment extreme.
    pub clipped: bool,
    /// Flatline run too long (saturation / dropout hold).
    pub flatline: bool,
    /// Detrend-residual energy is an outlier vs. the attempt median.
    pub energy_outlier: bool,
    /// Inter-channel correlation collapsed.
    pub decorrelated: bool,
    /// Perfusion amplitude outside the enrolled range.
    pub perfusion_out_of_range: bool,
}

impl QualityFlags {
    /// Whether any check failed.
    #[must_use]
    pub fn any(self) -> bool {
        self.clipped
            || self.flatline
            || self.energy_outlier
            || self.decorrelated
            || self.perfusion_out_of_range
    }

    /// Stable short names of the raised flags (empty when clean).
    #[must_use]
    pub fn labels(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.clipped {
            out.push("clipped");
        }
        if self.flatline {
            out.push("flatline");
        }
        if self.energy_outlier {
            out.push("energy_outlier");
        }
        if self.decorrelated {
            out.push("decorrelated");
        }
        if self.perfusion_out_of_range {
            out.push("perfusion");
        }
        out
    }
}

impl std::fmt::Display for QualityFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.any() {
            return f.write_str("clean");
        }
        f.write_str(&self.labels().join("+"))
    }
}

/// Quality verdict for one keystroke segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentQuality {
    /// Signal quality index in `[0, 1]`; exactly `1.0` for a segment
    /// inside every clean margin.
    pub sqi: f64,
    /// Which checks failed.
    pub flags: QualityFlags,
}

impl SegmentQuality {
    /// Whether the segment may vote under the given floor.
    #[must_use]
    pub fn usable(&self, floor: f64) -> bool {
        self.sqi >= floor
    }
}

/// Raw per-segment statistics, computed once during extraction and
/// scored later (scoring needs attempt-level context: the median
/// segment energy and the profile's enrolled perfusion range).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SegmentStats {
    /// Fraction of samples pinned at the per-channel extreme (max over
    /// channels).
    pub(crate) clip_frac: f64,
    /// Longest unchanged-sample run / segment length (max over
    /// channels).
    pub(crate) flatline_frac: f64,
    /// Mean squared detrend residual, averaged over channels.
    pub(crate) energy: f64,
    /// Minimum pairwise inter-channel correlation (1.0 for a single
    /// channel).
    pub(crate) min_corr: f64,
    /// Mean peak-to-peak amplitude across channels.
    pub(crate) perfusion: f64,
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < 2 {
        return 0.0;
    }
    let ma = a[..n].iter().sum::<f64>() / n as f64;
    let mb = b[..n].iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    let denom = (va * vb).sqrt();
    if denom < 1e-18 {
        // A flat channel carries no shared cardiovascular signal.
        0.0
    } else {
        cov / denom
    }
}

/// Longest run of consecutive near-equal samples.
fn longest_flat_run(x: &[f64], tol: f64) -> usize {
    let mut best = 1_usize;
    let mut run = 1_usize;
    for w in x.windows(2) {
        if (w[1] - w[0]).abs() <= tol {
            run += 1;
            best = best.max(run);
        } else {
            run = 1;
        }
    }
    best
}

/// Statistics of one raw (pre-normalization) segment.
pub(crate) fn segment_stats(seg: &MultiSeries, detrend_lambda: f64) -> SegmentStats {
    let n = seg.len().max(1);
    let mut clip_frac = 0.0_f64;
    let mut flat_frac = 0.0_f64;
    let mut energy_sum = 0.0_f64;
    let mut perfusion_sum = 0.0_f64;
    for c in seg.channels() {
        let mx = c.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mn = c.iter().copied().fold(f64::INFINITY, f64::min);
        let scale = (mx - mn).abs().max(mx.abs()).max(mn.abs()).max(1e-12);
        let tol = 1e-9 * scale;
        let pinned = c
            .iter()
            .filter(|v| (**v - mx).abs() <= tol || (**v - mn).abs() <= tol)
            .count();
        clip_frac = clip_frac.max(pinned as f64 / n as f64);
        flat_frac = flat_frac.max(longest_flat_run(c, tol) as f64 / n as f64);
        let residual = if detrend_lambda > 0.0 {
            detrend(c, detrend_lambda)
        } else {
            let mean = c.iter().sum::<f64>() / n as f64;
            c.iter().map(|v| v - mean).collect()
        };
        energy_sum += residual.iter().map(|v| v * v).sum::<f64>() / n as f64;
        perfusion_sum += peak_to_peak(c);
    }
    let channels = seg.num_channels().max(1) as f64;
    let mut min_corr = 1.0_f64;
    for i in 0..seg.num_channels() {
        for j in (i + 1)..seg.num_channels() {
            min_corr = min_corr.min(pearson(seg.channel(i), seg.channel(j)));
        }
    }
    SegmentStats {
        clip_frac,
        flatline_frac: flat_frac,
        energy: energy_sum / channels,
        min_corr,
        perfusion: perfusion_sum / channels,
    }
}

fn median(xs: &mut Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    xs[xs.len() / 2]
}

/// Scores every segment of one attempt. Clean segments (inside every
/// margin) score exactly 1.0 with no flags.
pub(crate) fn score_all(
    stats: &[SegmentStats],
    perfusion_range: Option<(f64, f64)>,
) -> Vec<SegmentQuality> {
    let mut energies: Vec<f64> = stats.iter().map(|s| s.energy).collect();
    let median_energy = median(&mut energies);
    stats
        .iter()
        .map(|s| score_one(s, median_energy, perfusion_range))
        .collect()
}

fn score_one(
    s: &SegmentStats,
    median_energy: f64,
    perfusion_range: Option<(f64, f64)>,
) -> SegmentQuality {
    let mut flags = QualityFlags::default();
    let mut sqi = 1.0_f64;

    if s.clip_frac > CLIP_FRAC_FLAG {
        flags.clipped = true;
        sqi *= (1.0 - s.clip_frac).max(MIN_SUBSCORE);
    }
    if s.flatline_frac > FLATLINE_FRAC_FLAG {
        flags.flatline = true;
        sqi *= (1.0 - s.flatline_frac).max(MIN_SUBSCORE);
    }
    let ratio = s.energy / (median_energy + 1e-12);
    if median_energy > 0.0 && ratio > ENERGY_RATIO_FLAG {
        flags.energy_outlier = true;
        sqi *= (ENERGY_RATIO_FLAG / ratio).clamp(MIN_SUBSCORE, 1.0);
    }
    if s.min_corr < CORR_FLAG {
        flags.decorrelated = true;
        sqi *= (s.min_corr.max(0.0) / CORR_FLAG).clamp(MIN_SUBSCORE, 1.0);
    }
    if let Some((lo, hi)) = perfusion_range {
        let lo_bound = PERFUSION_LO_FACTOR * lo;
        let hi_bound = PERFUSION_HI_FACTOR * hi.max(lo);
        if lo_bound > 0.0 && s.perfusion < lo_bound {
            flags.perfusion_out_of_range = true;
            sqi *= (s.perfusion / lo_bound).clamp(MIN_SUBSCORE, 1.0);
        } else if hi_bound > 0.0 && s.perfusion > hi_bound {
            flags.perfusion_out_of_range = true;
            sqi *= (hi_bound / s.perfusion).clamp(MIN_SUBSCORE, 1.0);
        }
    }
    SegmentQuality {
        sqi: sqi.clamp(0.0, 1.0),
        flags,
    }
}

/// Quality of one keystroke position within an attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeystrokeQuality {
    /// Keystroke index within the PIN entry.
    pub index: usize,
    /// The digit typed at this position.
    pub digit: u8,
    /// Whether case identification detected the keystroke at all.
    pub detected: bool,
    /// Segment quality (`None` when not detected).
    pub quality: Option<SegmentQuality>,
}

/// Whole-attempt quality summary, as consumed by the device-layer
/// session supervisor and the CLI `quality` command.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptQuality {
    /// One entry per PIN digit, in entry order.
    pub per_keystroke: Vec<KeystrokeQuality>,
    /// Keystrokes detected by case identification.
    pub detected: usize,
    /// Detected keystrokes at or above the SQI floor.
    pub usable: usize,
    /// Mean SQI over the detected keystrokes (1.0 when none detected).
    pub mean_sqi: f64,
}

/// Assesses the signal quality of one attempt without running any
/// classifier: preprocess, segment, and score each detected keystroke
/// against the profile's enrolled perfusion range. This is the cheap
/// path the session supervisor and degraded-mode policy use to decide
/// between deciding, re-prompting and aborting.
///
/// # Errors
///
/// Returns [`AuthError`] for malformed recordings or failed
/// segmentation — the same conditions as
/// [`authenticate`](crate::auth::authenticate).
pub fn assess_attempt(
    config: &P2AuthConfig,
    profile: &UserProfile,
    attempt: &Recording,
) -> Result<AttemptQuality, AuthError> {
    assess_impl(
        config,
        profile.sample_rate(),
        profile.perfusion_range(),
        attempt,
    )
}

/// [`assess_attempt`] against a prebuilt [`crate::ProfileArena`]: the
/// arena carries the enrolled sample rate and perfusion range, so the
/// verdict is identical to assessing against the source profile.
///
/// # Errors
///
/// Same conditions as [`assess_attempt`].
pub fn assess_attempt_arena(
    config: &P2AuthConfig,
    arena: &crate::ProfileArena,
    attempt: &Recording,
) -> Result<AttemptQuality, AuthError> {
    assess_impl(config, arena.sample_rate, arena.perfusion_range, attempt)
}

fn assess_impl(
    config: &P2AuthConfig,
    sample_rate: f64,
    perfusion_range: Option<(f64, f64)>,
    attempt: &Recording,
) -> Result<AttemptQuality, AuthError> {
    attempt
        .validate()
        .map_err(|detail| AuthError::InvalidRecording { detail })?;
    let resampled;
    let attempt = if (attempt.sample_rate - sample_rate).abs() > 1e-9 {
        resampled = attempt.resample(sample_rate);
        &resampled
    } else {
        attempt
    };
    let pre = preprocess::preprocess(config, attempt)?;
    let extracted = extract_for_auth(config, attempt, &pre)?;
    let quals = score_all(&extracted.seg_stats, perfusion_range);
    let digits = attempt.pin_entered.digits();
    let mut per_keystroke = Vec::with_capacity(pre.case.present.len());
    let mut qual_iter = quals.iter();
    for (i, &p) in pre.case.present.iter().enumerate() {
        let quality = if p { qual_iter.next().copied() } else { None };
        per_keystroke.push(KeystrokeQuality {
            index: i,
            digit: digits.get(i).copied().unwrap_or(0),
            detected: p,
            quality,
        });
    }
    let detected = quals.len();
    let usable = quals.iter().filter(|q| q.usable(config.sqi_floor)).count();
    let mean_sqi = if quals.is_empty() {
        1.0
    } else {
        quals.iter().map(|q| q.sqi).sum::<f64>() / quals.len() as f64
    };
    Ok(AttemptQuality {
        per_keystroke,
        detected,
        usable,
        mean_sqi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(channels: Vec<Vec<f64>>) -> MultiSeries {
        MultiSeries::new(channels).expect("well-formed")
    }

    fn clean_wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / 100.0;
                (std::f64::consts::TAU * 1.3 * t + phase).sin()
                    + 0.15 * (std::f64::consts::TAU * 7.0 * t).sin()
            })
            .collect()
    }

    #[test]
    fn clean_segment_scores_exactly_one() {
        let seg = series(vec![clean_wave(90, 0.0), clean_wave(90, 0.05)]);
        let stats = segment_stats(&seg, 50.0);
        let q = score_all(&[stats], Some((1.0, 3.0)))[0];
        assert_eq!(q.sqi, 1.0, "clean segment must score exactly 1.0");
        assert!(!q.flags.any(), "clean segment must raise no flags");
    }

    #[test]
    fn railed_segment_is_flagged_clipped_and_flat() {
        let mut a = clean_wave(90, 0.0);
        for v in a.iter_mut().take(60).skip(20) {
            *v = 2.5;
        }
        let seg = series(vec![a]);
        let stats = segment_stats(&seg, 50.0);
        assert!(stats.clip_frac > 0.3);
        let q = score_all(&[stats], None)[0];
        assert!(q.flags.clipped && q.flags.flatline);
        assert!(q.sqi < 0.6, "railed segment must score low, got {}", q.sqi);
    }

    #[test]
    fn held_samples_are_flagged_flatline() {
        let mut a = clean_wave(90, 0.0);
        let held = a[30];
        for v in a.iter_mut().take(55).skip(30) {
            *v = held;
        }
        let seg = series(vec![a]);
        let q = score_all(&[segment_stats(&seg, 50.0)], None)[0];
        assert!(q.flags.flatline);
        assert!(q.sqi < 1.0);
    }

    #[test]
    fn energy_outlier_needs_attempt_context() {
        let calm = segment_stats(&series(vec![clean_wave(90, 0.0)]), 50.0);
        let violent: Vec<f64> = clean_wave(90, 0.0)
            .iter()
            .enumerate()
            .map(|(i, v)| v + 20.0 * (i as f64 * 0.9).sin())
            .collect();
        let hot = segment_stats(&series(vec![violent]), 50.0);
        let quals = score_all(&[calm, calm, calm, hot], None);
        assert!(!quals[0].flags.energy_outlier);
        assert!(quals[3].flags.energy_outlier, "motion burst must flag");
        assert!(quals[3].sqi < quals[0].sqi);
    }

    #[test]
    fn decorrelated_channels_are_flagged() {
        let a = clean_wave(90, 0.0);
        let noise: Vec<f64> = (0..90)
            .map(|i| ((i * 7919 % 113) as f64 - 56.0) / 56.0)
            .collect();
        let q = score_all(&[segment_stats(&series(vec![a, noise]), 50.0)], None)[0];
        assert!(q.flags.decorrelated);
        assert!(q.sqi < 1.0);
    }

    #[test]
    fn perfusion_range_flags_collapse_and_inflation() {
        let tiny: Vec<f64> = clean_wave(90, 0.0).iter().map(|v| v * 0.01).collect();
        let q = score_all(
            &[segment_stats(&series(vec![tiny]), 50.0)],
            Some((2.0, 3.0)),
        )[0];
        assert!(q.flags.perfusion_out_of_range, "collapsed perfusion");
        let huge: Vec<f64> = clean_wave(90, 0.0).iter().map(|v| v * 50.0).collect();
        let q = score_all(
            &[segment_stats(&series(vec![huge]), 50.0)],
            Some((0.5, 1.0)),
        )[0];
        assert!(q.flags.perfusion_out_of_range, "inflated perfusion");
        // No enrolled range: the component is inert.
        let q = score_all(
            &[segment_stats(&series(vec![clean_wave(90, 0.0)]), 50.0)],
            None,
        )[0];
        assert!(!q.flags.perfusion_out_of_range);
    }

    #[test]
    fn flags_render_compactly() {
        assert_eq!(QualityFlags::default().to_string(), "clean");
        let f = QualityFlags {
            clipped: true,
            flatline: true,
            ..QualityFlags::default()
        };
        assert_eq!(f.to_string(), "clipped+flatline");
        assert_eq!(f.labels(), vec!["clipped", "flatline"]);
    }

    #[test]
    fn pearson_basics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&a, &flat), 0.0, "flat channel shares nothing");
    }
}
