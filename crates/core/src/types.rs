//! Shared data types: PINs, channels, recordings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error validating a [`Pin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinError {
    /// PIN length outside the supported 4–6 digits.
    BadLength {
        /// Offending length.
        len: usize,
    },
    /// PIN contained a non-digit character.
    NonDigit {
        /// Offending character.
        ch: char,
    },
}

impl fmt::Display for PinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinError::BadLength { len } => write!(f, "PIN must have 4-6 digits, got {len}"),
            PinError::NonDigit { ch } => write!(f, "PIN must contain only digits, got {ch:?}"),
        }
    }
}

impl std::error::Error for PinError {}

/// A numeric PIN of 4–6 digits.
///
/// The paper's experiments use four-digit PINs (1628, 3570, 5094, 6938,
/// 7412); longer PINs are supported because the pipeline segments per
/// keystroke.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pin {
    digits: Vec<u8>,
}

impl Pin {
    /// Parses a PIN from its decimal string form.
    ///
    /// # Errors
    ///
    /// Returns [`PinError`] for non-digit characters or lengths outside
    /// 4–6.
    pub fn new(s: &str) -> Result<Self, PinError> {
        if !(4..=6).contains(&s.chars().count()) {
            return Err(PinError::BadLength {
                len: s.chars().count(),
            });
        }
        let mut digits = Vec::with_capacity(s.len());
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(PinError::NonDigit { ch })?;
            digits.push(d as u8);
        }
        Ok(Self { digits })
    }

    /// The digits, most significant first.
    pub fn digits(&self) -> &[u8] {
        &self.digits
    }

    /// Number of digits.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// Always false (construction requires ≥ 4 digits).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.digits {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Pin {
    type Err = PinError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pin::new(s)
    }
}

/// How the user typed the PIN (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandMode {
    /// All keystrokes by the thumb of the hand wearing the watch.
    OneHanded,
    /// The phone held in one hand and typed with both thumbs; only the
    /// keystrokes of the watch-wearing hand show in the PPG.
    TwoHanded,
}

/// Identifier of a (simulated) user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user{}", self.0)
    }
}

/// LED wavelength of a PPG channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Wavelength {
    /// Infrared LED — deeper penetration, stronger artifact coupling.
    Infrared,
    /// Red LED — shallower, noisier, but complementary (paper Fig. 13b).
    Red,
    /// Green LED — common on commercial watches (Apple Watch).
    Green,
}

/// Physical placement of a PPG sensor module on the wrist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Inner wrist, radial-artery side (thumb side).
    Radial,
    /// Inner wrist, ulnar-artery side (little-finger side).
    Ulnar,
    /// Back of the wrist (the paper found this less stable, §VI).
    Dorsal,
}

/// Description of one PPG channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelInfo {
    /// LED wavelength.
    pub wavelength: Wavelength,
    /// Sensor placement.
    pub placement: Placement,
}

impl fmt::Display for ChannelInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}-{:?}", self.wavelength, self.placement)
    }
}

/// A 3-axis accelerometer track (the LIS2DH12 of the prototype,
/// sampled at 75 Hz — used only by the comparison method of Fig. 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelTrack {
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// The x/y/z axis signals, equal lengths.
    pub axes: [Vec<f64>; 3],
}

/// One PIN-entry acquisition: multichannel PPG, optional accelerometer,
/// the PIN the subject typed, and the keystroke timestamps as reported
/// by the smartphone (coarse, jittered by communication delay).
///
/// `true_key_times` carries the simulation ground truth; the
/// authentication pipeline never reads it — it exists so experiments
/// can measure calibration error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// Subject identity (ground truth, used only for evaluation).
    pub user: UserId,
    /// PPG sampling rate in Hz (100 on the prototype).
    pub sample_rate: f64,
    /// PPG channels: `channels × samples`, equal lengths.
    pub ppg: Vec<Vec<f64>>,
    /// Per-channel metadata, same order as `ppg`.
    pub channels: Vec<ChannelInfo>,
    /// Optional accelerometer track.
    pub accel: Option<AccelTrack>,
    /// The PIN the subject typed.
    pub pin_entered: Pin,
    /// Keystroke times (sample indices) as reported by the phone.
    pub reported_key_times: Vec<usize>,
    /// Ground-truth keystroke times (sample indices); evaluation only.
    pub true_key_times: Vec<usize>,
    /// For each keystroke, whether the watch-wearing hand pressed it.
    pub watch_hand: Vec<bool>,
    /// Input case used by the subject.
    pub hand_mode: HandMode,
}

impl Recording {
    /// Number of PPG samples per channel.
    pub fn num_samples(&self) -> usize {
        self.ppg.first().map_or(0, Vec::len)
    }

    /// Number of PPG channels.
    pub fn num_channels(&self) -> usize {
        self.ppg.len()
    }

    /// Duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.num_samples() as f64 / self.sample_rate
    }

    /// Checks structural invariants (equal channel lengths, metadata
    /// count, timestamp bounds). Returns a human-readable description of
    /// the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.ppg.is_empty() {
            return Err("no PPG channels".into());
        }
        let n = self.ppg[0].len();
        if n == 0 {
            return Err("empty PPG channel".into());
        }
        for (i, c) in self.ppg.iter().enumerate() {
            if c.len() != n {
                return Err(format!("channel {i} length {} != {n}", c.len()));
            }
        }
        if self.channels.len() != self.ppg.len() {
            return Err(format!(
                "{} channel descriptors for {} channels",
                self.channels.len(),
                self.ppg.len()
            ));
        }
        if self.reported_key_times.len() != self.pin_entered.len() {
            return Err(format!(
                "{} reported key times for a {}-digit PIN",
                self.reported_key_times.len(),
                self.pin_entered.len()
            ));
        }
        if self.watch_hand.len() != self.reported_key_times.len() {
            return Err("watch_hand length mismatch".into());
        }
        for &t in self.reported_key_times.iter().chain(&self.true_key_times) {
            if t >= n {
                return Err(format!("key time {t} beyond signal length {n}"));
            }
        }
        if !(self.sample_rate.is_finite() && self.sample_rate > 0.0) {
            return Err("non-positive sample rate".into());
        }
        // 1 MHz is far beyond any PPG front-end; huge rates would make
        // the rate-scaled window sizes overflow into nonsense.
        if self.sample_rate > 1e6 {
            return Err(format!("implausible sample rate {} Hz", self.sample_rate));
        }
        for (i, c) in self.ppg.iter().enumerate() {
            if let Some(j) = c.iter().position(|v| !v.is_finite()) {
                return Err(format!("non-finite sample {} at channel {i}[{j}]", c[j]));
            }
        }
        if let Some(a) = &self.accel {
            if !(a.sample_rate.is_finite() && a.sample_rate > 0.0) {
                return Err("non-positive accelerometer sample rate".into());
            }
            let an = a.axes[0].len();
            if a.axes.iter().any(|ax| ax.len() != an) {
                return Err("ragged accelerometer axes".into());
            }
        }
        Ok(())
    }

    /// Returns a copy restricted to the given channel indices.
    ///
    /// # Panics
    ///
    /// Panics if `idxs` is empty or any index is out of range.
    pub fn select_channels(&self, idxs: &[usize]) -> Recording {
        assert!(!idxs.is_empty(), "must keep at least one channel");
        let mut out = self.clone();
        out.ppg = idxs.iter().map(|&i| self.ppg[i].clone()).collect();
        out.channels = idxs.iter().map(|&i| self.channels[i]).collect();
        out
    }

    /// Returns a copy resampled to `rate` Hz (PPG and keystroke indices;
    /// the accelerometer track keeps its own rate).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn resample(&self, rate: f64) -> Recording {
        use p2auth_dsp::resample::{map_index, resample_linear};
        assert!(rate > 0.0 && rate.is_finite(), "bad target rate");
        let mut out = self.clone();
        out.ppg = self
            .ppg
            .iter()
            .map(|c| resample_linear(c, self.sample_rate, rate))
            .collect();
        let n = out.ppg[0].len();
        let map = |t: usize| map_index(t, self.sample_rate, rate).min(n.saturating_sub(1));
        out.reported_key_times = self.reported_key_times.iter().map(|&t| map(t)).collect();
        out.true_key_times = self.true_key_times.iter().map(|&t| map(t)).collect();
        out.sample_rate = rate;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_recording() -> Recording {
        Recording {
            user: UserId(0),
            sample_rate: 100.0,
            ppg: vec![vec![0.0; 500], vec![1.0; 500]],
            channels: vec![
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Radial,
                },
                ChannelInfo {
                    wavelength: Wavelength::Red,
                    placement: Placement::Ulnar,
                },
            ],
            accel: None,
            pin_entered: Pin::new("1628").unwrap(),
            reported_key_times: vec![100, 210, 320, 430],
            true_key_times: vec![103, 207, 323, 428],
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn pin_parsing() {
        assert!(Pin::new("1628").is_ok());
        assert!(Pin::new("123456").is_ok());
        assert!(matches!(
            Pin::new("123"),
            Err(PinError::BadLength { len: 3 })
        ));
        assert!(matches!(
            Pin::new("1234567"),
            Err(PinError::BadLength { .. })
        ));
        assert!(matches!(
            Pin::new("12a4"),
            Err(PinError::NonDigit { ch: 'a' })
        ));
        assert_eq!(Pin::new("5094").unwrap().to_string(), "5094");
        assert_eq!(Pin::new("1628").unwrap().digits(), &[1, 6, 2, 8]);
    }

    #[test]
    fn pin_equality() {
        assert_eq!(Pin::new("1628").unwrap(), "1628".parse().unwrap());
        assert_ne!(Pin::new("1628").unwrap(), Pin::new("1629").unwrap());
    }

    #[test]
    fn recording_validates() {
        assert_eq!(tiny_recording().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_ragged_channels() {
        let mut r = tiny_recording();
        r.ppg[1].pop();
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_time_out_of_range() {
        let mut r = tiny_recording();
        r.reported_key_times[0] = 10_000;
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_non_finite_samples() {
        let mut r = tiny_recording();
        r.ppg[1][37] = f64::NAN;
        assert!(r.validate().unwrap_err().contains("channel 1[37]"));
        let mut r = tiny_recording();
        r.ppg[0][0] = f64::INFINITY;
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_absurd_sample_rate() {
        let mut r = tiny_recording();
        r.sample_rate = 1e9;
        assert!(r.validate().is_err());
        r.sample_rate = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_accel_track() {
        let mut r = tiny_recording();
        r.accel = Some(AccelTrack {
            sample_rate: 75.0,
            axes: [vec![0.0; 10], vec![0.0; 10], vec![0.0; 9]],
        });
        assert!(r.validate().is_err());
        let mut r = tiny_recording();
        r.accel = Some(AccelTrack {
            sample_rate: 0.0,
            axes: [vec![0.0; 4], vec![0.0; 4], vec![0.0; 4]],
        });
        assert!(r.validate().is_err());
    }

    #[test]
    fn validation_catches_descriptor_mismatch() {
        let mut r = tiny_recording();
        r.channels.pop();
        assert!(r.validate().is_err());
    }

    #[test]
    fn channel_selection() {
        let r = tiny_recording();
        let s = r.select_channels(&[1]);
        assert_eq!(s.num_channels(), 1);
        assert_eq!(s.channels[0].wavelength, Wavelength::Red);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn resampling_maps_times() {
        let r = tiny_recording();
        let d = r.resample(50.0);
        assert_eq!(d.num_samples(), 250);
        assert_eq!(d.reported_key_times, vec![50, 105, 160, 215]);
        assert_eq!(d.validate(), Ok(()));
        assert!((d.duration_s() - r.duration_s()).abs() < 0.1);
    }
}
