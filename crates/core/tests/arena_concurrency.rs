//! ISSUE 8 regression: one `ProfileArena` shared read-only across a
//! worker pool must score bit-identically to serial.
//!
//! A fleet scheduler interns each profile's arena once and hands `&arena`
//! to whichever worker picks up a session for that user; only the
//! `SessionScratch` is per-worker. This suite hammers a single arena
//! from 8 scoped threads (each with its own scratch) and asserts every
//! thread's decisions — verdict, case, reason, votes and the raw f64
//! score — equal the serial baseline exactly. Any interior mutation in
//! the fused tables, or scratch state bleeding between attempts, shows
//! up as a diverging score.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, Recording, SessionScratch};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

const WORKERS: usize = 8;

fn setup() -> (P2Auth, p2auth_core::UserProfile, Pin, Vec<Recording>) {
    let pop = Population::generate(&PopulationConfig {
        num_users: 6,
        seed: 814,
        ..Default::default()
    });
    let pin = Pin::new("1628").unwrap();
    let session = SessionConfig::default();
    let sys = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<Recording> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<Recording> = (0..12)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 5),
                &pin,
                HandMode::OneHanded,
                &session,
                1000 + i,
            )
        })
        .collect();
    let profile = sys.enroll(&pin, &enroll, &third).expect("enrollment");
    // Probe mix: legitimate attempts and other users' attempts, so both
    // accept and reject paths run concurrently.
    let probes: Vec<Recording> = (0..10)
        .map(|i| {
            pop.record_entry(
                (i as usize) % 3,
                &pin,
                HandMode::OneHanded,
                &session,
                500 + i,
            )
        })
        .collect();
    (sys, profile, pin, probes)
}

#[test]
fn eight_workers_sharing_one_arena_score_bit_identically_to_serial() {
    let (sys, profile, pin, probes) = setup();
    let arena = sys.arena(&profile);

    // Serial baseline: one worker, one scratch, every probe in order.
    let mut scratch = SessionScratch::new();
    let serial: Vec<_> = probes
        .iter()
        .map(|p| sys.authenticate_arena(&arena, &mut scratch, &pin, p))
        .collect();
    assert!(serial.iter().any(|d| d.as_ref().is_ok_and(|d| d.accepted)));
    assert!(serial.iter().any(|d| d.as_ref().is_ok_and(|d| !d.accepted)));

    // 8 workers share `&arena`; each owns its scratch and scores the
    // full probe set several times over (scratch reuse across attempts
    // is exactly the pooled-worker pattern).
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let arena = &arena;
                let sys = &sys;
                let probes = &probes;
                let pin = &pin;
                s.spawn(move || {
                    let mut scratch = SessionScratch::new();
                    let mut rounds = Vec::new();
                    for round in 0..3 {
                        // Stagger the starting probe per worker/round so
                        // threads are rarely on the same probe at once.
                        let off = (w + round) % probes.len();
                        let decisions: Vec<_> = (0..probes.len())
                            .map(|i| {
                                let p = &probes[(off + i) % probes.len()];
                                sys.authenticate_arena(arena, &mut scratch, pin, p)
                            })
                            .collect();
                        rounds.push((off, decisions));
                    }
                    rounds
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            for (off, decisions) in h.join().expect("worker panicked") {
                for (i, got) in decisions.iter().enumerate() {
                    let probe_idx = (off + i) % probes.len();
                    let want = &serial[probe_idx];
                    match (want, got) {
                        (Ok(a), Ok(b)) => {
                            assert_eq!(a, b, "worker {w} probe {probe_idx}: decision diverged");
                            assert!(
                                a.score.to_bits() == b.score.to_bits(),
                                "worker {w} probe {probe_idx}: score bits diverged"
                            );
                        }
                        (Err(_), Err(_)) => {}
                        _ => panic!("worker {w} probe {probe_idx}: Ok/Err diverged"),
                    }
                }
            }
        }
    });
}

#[test]
fn moving_scratch_between_threads_preserves_scores() {
    // A pool that hands a worker's scratch to another worker (work
    // stealing, pool resize) must not change decisions: scratch is
    // scribble space, never carried state.
    let (sys, profile, pin, probes) = setup();
    let arena = sys.arena(&profile);

    let mut scratch = SessionScratch::new();
    let baseline: Vec<_> = probes
        .iter()
        .map(|p| sys.authenticate_arena(&arena, &mut scratch, &pin, p))
        .collect();

    // Same scratch object crosses a thread boundary between probes.
    let mut moved = SessionScratch::new();
    let mut got = Vec::new();
    for p in &probes {
        let (d, back) = std::thread::scope(|s| {
            let arena = &arena;
            let sys = &sys;
            let pin = &pin;
            s.spawn(move || {
                let d = sys.authenticate_arena(arena, &mut moved, pin, p);
                (d, moved)
            })
            .join()
            .expect("worker panicked")
        });
        moved = back;
        got.push(d);
    }
    for (i, (want, have)) in baseline.iter().zip(&got).enumerate() {
        match (want, have) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "probe {i} diverged after scratch moved threads"),
            (Err(_), Err(_)) => {}
            _ => panic!("probe {i}: Ok/Err diverged"),
        }
    }
}
