//! End-to-end pipeline tests on simulated cohorts: enrollment,
//! legitimate authentication, and both attack models.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, PinPolicy, RejectReason};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn population(n: usize, seed: u64) -> Population {
    Population::generate(&PopulationConfig {
        num_users: n,
        seed,
        ..Default::default()
    })
}

struct Setup {
    pop: Population,
    pin: Pin,
    session: SessionConfig,
}

impl Setup {
    fn new(seed: u64) -> Self {
        Self {
            pop: population(10, seed),
            pin: Pin::new("1628").unwrap(),
            session: SessionConfig::default(),
        }
    }

    fn enroll_recs(&self, user: usize, mode: HandMode, n: usize) -> Vec<p2auth_core::Recording> {
        (0..n)
            .map(|i| {
                self.pop
                    .record_entry(user, &self.pin, mode, &self.session, i as u64)
            })
            .collect()
    }

    /// Third-party pool: everyone except the victim and the attacker
    /// identities 1-3 used by the tests — mirroring the paper's split
    /// into legitimate user / attackers / third parties.
    fn third_party(&self, exclude: usize, n: usize, mode: HandMode) -> Vec<p2auth_core::Recording> {
        let mut out = Vec::new();
        let mut i = 0_u64;
        while out.len() < n {
            let u = (i as usize) % self.pop.num_users();
            i += 1;
            if u == exclude || (1..=3).contains(&u) {
                continue;
            }
            out.push(
                self.pop
                    .record_entry(u, &self.pin, mode, &self.session, 1000 + i),
            );
        }
        out
    }
}

#[test]
fn one_handed_enroll_and_authenticate() {
    let s = Setup::new(48);
    // Full default configuration: this test checks the headline
    // accuracy, so do not trade features for speed here.
    let sys = P2Auth::new(P2AuthConfig::default());
    let enroll = s.enroll_recs(0, HandMode::OneHanded, 9);
    let third = s.third_party(0, 30, HandMode::OneHanded);
    let profile = sys
        .enroll(&s.pin, &enroll, &third)
        .expect("enrollment succeeds");
    assert!(profile.has_full_model());

    // Legitimate attempts accepted.
    let mut accepted = 0;
    let trials = 10;
    for n in 0..trials {
        let attempt = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 500 + n);
        let d = sys.authenticate(&profile, &s.pin, &attempt).unwrap();
        if d.accepted {
            accepted += 1;
        }
    }
    assert!(
        accepted >= 8,
        "only {accepted}/{trials} legitimate attempts accepted"
    );

    // Emulating attacks rejected.
    let mut rejected = 0;
    for n in 0..trials {
        let attack = s.pop.record_emulating_attack(
            1 + (n as usize % 3),
            0,
            &s.pin,
            HandMode::OneHanded,
            &s.session,
            n,
        );
        let d = sys.authenticate(&profile, &s.pin, &attack).unwrap();
        if !d.accepted {
            rejected += 1;
        }
    }
    assert!(
        rejected >= 8,
        "only {rejected}/{trials} emulating attacks rejected"
    );
}

#[test]
fn wrong_pin_rejected_immediately() {
    let s = Setup::new(42);
    let sys = P2Auth::new(P2AuthConfig::fast());
    let profile = sys
        .enroll(
            &s.pin,
            &s.enroll_recs(0, HandMode::OneHanded, 8),
            &s.third_party(0, 30, HandMode::OneHanded),
        )
        .unwrap();
    let wrong = Pin::new("9999").unwrap();
    let attempt = s
        .pop
        .record_entry(0, &wrong, HandMode::OneHanded, &s.session, 7);
    let d = sys.authenticate(&profile, &wrong, &attempt).unwrap();
    assert!(!d.accepted);
    assert_eq!(d.reason, Some(RejectReason::WrongPin));
}

#[test]
fn two_handed_flow() {
    let s = Setup::new(43);
    let sys = P2Auth::new(P2AuthConfig::fast());
    // Enroll with a mix of one- and two-handed recordings so per-key
    // models exist.
    let mut enroll = s.enroll_recs(0, HandMode::OneHanded, 6);
    enroll.extend(s.enroll_recs(0, HandMode::TwoHanded, 6));
    let mut third = s.third_party(0, 30, HandMode::OneHanded);
    third.extend(s.third_party(0, 12, HandMode::TwoHanded));
    let profile = sys.enroll(&s.pin, &enroll, &third).unwrap();
    assert!(!profile.enrolled_keys().is_empty());

    let mut accepted = 0;
    let trials = 10;
    for n in 0..trials {
        let attempt = s
            .pop
            .record_entry(0, &s.pin, HandMode::TwoHanded, &s.session, 700 + n);
        let d = sys.authenticate(&profile, &s.pin, &attempt).unwrap();
        if d.accepted {
            accepted += 1;
        }
    }
    assert!(
        accepted >= 5,
        "only {accepted}/{trials} two-handed attempts accepted"
    );

    let mut rejected = 0;
    for n in 0..trials {
        let attack =
            s.pop
                .record_emulating_attack(2, 0, &s.pin, HandMode::TwoHanded, &s.session, 50 + n);
        let d = sys.authenticate(&profile, &s.pin, &attack).unwrap();
        if !d.accepted {
            rejected += 1;
        }
    }
    assert!(
        rejected >= 8,
        "only {rejected}/{trials} two-handed attacks rejected"
    );
}

#[test]
fn no_pin_flow() {
    let s = Setup::new(44);
    let mut cfg = P2AuthConfig::fast();
    cfg.pin_policy = PinPolicy::NoPinAllowed;
    let sys = P2Auth::new(cfg);
    let enroll = s.enroll_recs(0, HandMode::OneHanded, 9);
    let third = s.third_party(0, 30, HandMode::OneHanded);
    let profile = sys.enroll_no_pin(&enroll, &third).unwrap();
    assert!(profile.pin().is_none());
    assert!(!profile.enrolled_keys().is_empty());

    let mut accepted = 0;
    for n in 0..8_u64 {
        let attempt = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 300 + n);
        let d = sys.authenticate_no_pin(&profile, &attempt).unwrap();
        if d.accepted {
            accepted += 1;
        }
    }
    assert!(accepted >= 4, "only {accepted}/8 no-PIN attempts accepted");

    let mut rejected = 0;
    for n in 0..8_u64 {
        let attack =
            s.pop
                .record_emulating_attack(3, 0, &s.pin, HandMode::OneHanded, &s.session, 80 + n);
        let d = sys.authenticate_no_pin(&profile, &attack).unwrap();
        if !d.accepted {
            rejected += 1;
        }
    }
    assert!(rejected >= 6, "only {rejected}/8 no-PIN attacks rejected");
}

#[test]
fn pin_required_policy_blocks_no_pin_attempts() {
    let s = Setup::new(45);
    let sys = P2Auth::new(P2AuthConfig::fast());
    let profile = sys
        .enroll(
            &s.pin,
            &s.enroll_recs(0, HandMode::OneHanded, 8),
            &s.third_party(0, 30, HandMode::OneHanded),
        )
        .unwrap();
    let attempt = s
        .pop
        .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 9);
    let d = sys.authenticate_no_pin(&profile, &attempt).unwrap();
    assert!(!d.accepted);
    assert_eq!(d.reason, Some(RejectReason::PinRequired));
}

#[test]
fn case_identification_on_simulated_entries() {
    use p2auth_core::preprocess::preprocess;
    let s = Setup::new(46);
    let cfg = P2AuthConfig::fast();
    let mut one_ok = 0;
    let mut two_ok = 0;
    let trials = 10;
    for n in 0..trials {
        let one = s
            .pop
            .record_entry(1, &s.pin, HandMode::OneHanded, &s.session, n);
        let pre = preprocess(&cfg, &one).unwrap();
        if pre.case.case == p2auth_core::InputCase::OneHanded {
            one_ok += 1;
        }
        let two = s
            .pop
            .record_entry(1, &s.pin, HandMode::TwoHanded, &s.session, n);
        let pre = preprocess(&cfg, &two).unwrap();
        let expected = two.watch_hand.iter().filter(|&&b| b).count();
        if pre.case.present_count() == expected {
            two_ok += 1;
        }
    }
    assert!(one_ok >= 8, "one-handed case identified {one_ok}/{trials}");
    assert!(
        two_ok >= 7,
        "two-handed keystroke count right {two_ok}/{trials}"
    );
}

#[test]
fn calibration_is_more_consistent_than_reported_times() {
    // The calibrated time locks onto the artifact's dominant extremum.
    // Its *absolute* offset from the touch follows the subject's
    // neuromuscular latency; what the pipeline needs is *consistency*:
    // the same key must calibrate to the same artifact landmark every
    // repetition, tighter than the ±10-sample communication jitter of
    // the reported times.
    use p2auth_core::preprocess::preprocess;
    let s = Setup::new(47);
    let cfg = P2AuthConfig::fast();
    let trials = 12_u64;
    let mut cal_offsets: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut rep_offsets: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for n in 0..trials {
        let rec = s
            .pop
            .record_entry(2, &s.pin, HandMode::OneHanded, &s.session, n);
        let pre = preprocess(&cfg, &rec).unwrap();
        for (k, ((&c, &r), &t)) in pre
            .calibrated_times
            .iter()
            .zip(&rec.reported_key_times)
            .zip(&rec.true_key_times)
            .enumerate()
        {
            cal_offsets[k].push(c as f64 - t as f64);
            rep_offsets[k].push(r as f64 - t as f64);
        }
    }
    let std = |v: &[f64]| -> f64 {
        let m = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let cal_std: f64 = cal_offsets.iter().map(|v| std(v)).sum::<f64>() / 4.0;
    let rep_std: f64 = rep_offsets.iter().map(|v| std(v)).sum::<f64>() / 4.0;
    assert!(
        cal_std < rep_std,
        "per-key calibration scatter ({cal_std:.1}) should beat reported scatter ({rep_std:.1})"
    );
}
