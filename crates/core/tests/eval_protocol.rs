//! Tests for the evaluation-protocol helpers (`p2auth_core::eval`).

use p2auth_core::eval::{
    evaluate_profile, evaluate_profile_no_pin, run_protocol, split_enroll_test, EvalOutcome,
};
use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, PinPolicy};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn cohort() -> (Population, Pin, SessionConfig) {
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        seed: 61,
        ..Default::default()
    });
    (pop, Pin::new("3570").unwrap(), SessionConfig::default())
}

#[test]
fn run_protocol_end_to_end() {
    let (pop, pin, session) = cohort();
    let cfg = P2AuthConfig::fast();
    let all: Vec<_> = (0..14)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let (enroll, legit) = split_enroll_test(&all, 8);
    let third: Vec<_> = (0..24)
        .map(|i| {
            pop.record_entry(
                4 + (i as usize % 4),
                &pin,
                HandMode::OneHanded,
                &session,
                500 + i,
            )
        })
        .collect();
    let attacks: Vec<_> = (0..6)
        .map(|i| pop.record_emulating_attack(1, 0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let outcome = run_protocol(&cfg, &pin, enroll, &third, legit, &attacks).unwrap();
    assert_eq!(outcome.legit.total(), 6);
    assert_eq!(outcome.attacks.total(), 6);
    assert!(outcome.accuracy().unwrap() >= 0.5);
    assert!(outcome.true_rejection_rate().unwrap() >= 0.5);
}

#[test]
fn evaluate_profile_counts_match_inputs() {
    let (pop, pin, session) = cohort();
    let cfg = P2AuthConfig::fast();
    let system = P2Auth::new(cfg.clone());
    let enroll: Vec<_> = (0..8)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..16)
        .map(|i| {
            pop.record_entry(
                4 + (i as usize % 4),
                &pin,
                HandMode::OneHanded,
                &session,
                700 + i,
            )
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third).unwrap();
    let legit: Vec<_> = (0..3)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 100 + i))
        .collect();
    let attacks: Vec<_> = (0..5)
        .map(|i| pop.record_entry(2, &pin, HandMode::OneHanded, &session, 200 + i))
        .collect();
    let outcome = evaluate_profile(&cfg, &profile, &pin, &legit, &attacks).unwrap();
    assert_eq!(outcome.legit.total(), 3);
    assert_eq!(outcome.attacks.total(), 5);
}

#[test]
fn no_pin_evaluation() {
    let (pop, pin, session) = cohort();
    let cfg = P2AuthConfig {
        pin_policy: PinPolicy::NoPinAllowed,
        ..P2AuthConfig::fast()
    };
    let system = P2Auth::new(cfg.clone());
    let enroll: Vec<_> = (0..9)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..16)
        .map(|i| {
            pop.record_entry(
                4 + (i as usize % 4),
                &pin,
                HandMode::OneHanded,
                &session,
                800 + i,
            )
        })
        .collect();
    let profile = system.enroll_no_pin(&enroll, &third).unwrap();
    let legit: Vec<_> = (0..4)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 300 + i))
        .collect();
    let attacks: Vec<_> = (0..4)
        .map(|i| pop.record_emulating_attack(5, 0, &pin, HandMode::OneHanded, &session, 20 + i))
        .collect();
    let outcome = evaluate_profile_no_pin(&cfg, &profile, &legit, &attacks).unwrap();
    assert_eq!(outcome.legit.total() + outcome.attacks.total(), 8);
}

#[test]
fn outcomes_merge() {
    let mut a = EvalOutcome::default();
    a.legit.record(true, true);
    let mut b = EvalOutcome::default();
    b.attacks.record(false, false);
    b.legit.record(false, true);
    a.merge(&b);
    assert_eq!(a.legit.total(), 2);
    assert_eq!(a.attacks.total(), 1);
    assert_eq!(a.accuracy(), Some(0.5));
    assert_eq!(a.true_rejection_rate(), Some(1.0));
}

#[test]
#[should_panic(expected = "bad split point")]
fn split_rejects_degenerate_points() {
    let (pop, pin, session) = cohort();
    let recs: Vec<_> = (0..3)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let _ = split_enroll_test(&recs, 3);
}
