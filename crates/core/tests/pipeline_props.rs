//! Property tests over the pipeline's invariants.

use p2auth_core::enroll::fusion::{fuse, fuse_aligned};
use p2auth_core::enroll::segmentation::{full_waveform, segment};
use p2auth_core::preprocess::case_id;
use p2auth_core::P2AuthConfig;
use p2auth_rocket::MultiSeries;
use proptest::prelude::*;

fn arb_signal(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0_f64..5.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn segments_always_have_requested_length(
        x in arb_signal(300),
        center in 0_usize..300,
        window in 1_usize..150,
    ) {
        let s = segment(&[x], center, window).expect("valid input");
        prop_assert_eq!(s.len(), window);
        prop_assert_eq!(s.num_channels(), 1);
    }

    #[test]
    fn segment_values_come_from_the_signal(
        x in arb_signal(200),
        center in 0_usize..200,
    ) {
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let s = segment(&[x], center, 90).expect("valid input");
        for &v in s.channel(0) {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn full_waveform_fixed_length(
        x in arb_signal(400),
        t0 in 50_usize..150,
        gap in 50_usize..90,
        target in 16_usize..512,
    ) {
        let times = vec![t0, t0 + gap, t0 + 2 * gap];
        let fw = full_waveform(&[x], &times, 20, target).expect("valid input");
        prop_assert_eq!(fw.len(), target);
    }

    #[test]
    fn fusion_is_linear(
        a in arb_signal(60),
        b in arb_signal(60),
        scale in -3.0_f64..3.0,
    ) {
        let sa = MultiSeries::univariate(a.clone());
        let sb = MultiSeries::univariate(b.clone());
        let f = fuse(&[sa, sb]).expect("same shape");
        for i in 0..60 {
            prop_assert!((f.channel(0)[i] - (a[i] + b[i])).abs() < 1e-12);
        }
        // Scaling both inputs scales the fusion.
        let sa2 = MultiSeries::univariate(a.iter().map(|v| scale * v).collect());
        let sb2 = MultiSeries::univariate(b.iter().map(|v| scale * v).collect());
        let f2 = fuse(&[sa2, sb2]).expect("same shape");
        for i in 0..60 {
            prop_assert!((f2.channel(0)[i] - scale * f.channel(0)[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn aligned_fusion_never_below_plain_self_correlation(
        a in arb_signal(80),
    ) {
        // Fusing a signal with itself: alignment must pick shift 0 (or
        // an equivalent), so aligned == plain.
        let s = MultiSeries::univariate(a);
        let plain = fuse(&[s.clone(), s.clone()]).expect("shape");
        let aligned = fuse_aligned(&[s.clone(), s], 8).expect("shape");
        for i in 0..80 {
            prop_assert!((plain.channel(0)[i] - aligned.channel(0)[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn window_scaling_monotone_in_rate(
        base in 1_usize..200,
        r1 in 20.0_f64..200.0,
        r2 in 20.0_f64..200.0,
    ) {
        let cfg = P2AuthConfig::default();
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(cfg.scale_window(base, lo) <= cfg.scale_window(base, hi) + 1);
        prop_assert!(cfg.scale_window(base, hi) >= 1);
    }

    #[test]
    fn case_identification_is_deterministic(
        x in arb_signal(500),
        times in prop::collection::vec(0_usize..500, 4),
    ) {
        let cfg = P2AuthConfig::default();
        let a = case_id::identify_case(&cfg, std::slice::from_ref(&x), &times, 100.0);
        let b = case_id::identify_case(&cfg, std::slice::from_ref(&x), &times, 100.0);
        prop_assert_eq!(a, b);
    }
}
