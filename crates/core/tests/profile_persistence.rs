//! A deployed system stores enrolled profiles on the device and
//! reloads them across sessions; these tests check that a serialized
//! profile round-trips and keeps making identical decisions.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, UserProfile};
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

fn enrolled() -> (P2Auth, UserProfile, Pin, Population, SessionConfig) {
    let pop = Population::generate(&PopulationConfig {
        num_users: 8,
        seed: 77,
        ..Default::default()
    });
    let pin = Pin::new("1628").unwrap();
    let session = SessionConfig::default();
    let system = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<_> = (0..8)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<_> = (0..20)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 7),
                &pin,
                HandMode::OneHanded,
                &session,
                100 + i,
            )
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third).unwrap();
    (system, profile, pin, pop, session)
}

#[test]
fn profile_round_trips_through_json() {
    let (system, profile, pin, pop, session) = enrolled();
    let json = serde_json::to_string(&profile).expect("serialize");
    let restored: UserProfile = serde_json::from_str(&json).expect("deserialize");

    assert_eq!(restored.pin(), profile.pin());
    assert_eq!(restored.enrolled_keys(), profile.enrolled_keys());
    assert_eq!(restored.has_full_model(), profile.has_full_model());

    // Decisions must be bit-identical.
    for n in 0..5_u64 {
        let attempt = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 900 + n);
        let d1 = system.authenticate(&profile, &pin, &attempt).unwrap();
        let d2 = system.authenticate(&restored, &pin, &attempt).unwrap();
        assert_eq!(d1, d2, "restored profile must decide identically");
    }
    let attack = pop.record_emulating_attack(2, 0, &pin, HandMode::OneHanded, &session, 3);
    let d1 = system.authenticate(&profile, &pin, &attack).unwrap();
    let d2 = system.authenticate(&restored, &pin, &attack).unwrap();
    assert_eq!(d1, d2);
}

#[test]
fn serialized_profile_is_reasonably_sized() {
    let (_, profile, _, _, _) = enrolled();
    let json = serde_json::to_vec(&profile).expect("serialize");
    // Sanity bound: a profile (a few linear models + rocket metadata)
    // must stay small enough for watch-class storage.
    assert!(
        json.len() < 4 * 1024 * 1024,
        "profile unexpectedly large: {} bytes",
        json.len()
    );
}

#[test]
fn recordings_serialize_too() {
    let pop = Population::generate(&PopulationConfig {
        num_users: 2,
        seed: 5,
        ..Default::default()
    });
    let pin = Pin::new("5094").unwrap();
    let rec = pop.record_entry(0, &pin, HandMode::TwoHanded, &SessionConfig::default(), 1);
    let json = serde_json::to_string(&rec).expect("serialize");
    let restored: p2auth_core::Recording = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(restored, rec);
}
