//! Acceptance tests for SQI gating: on clean input, enabling the gate
//! must not change a single decision; on faulted input, the gate must
//! surface [`RejectReason::PoorSignal`] instead of a spurious verdict.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, RejectReason};
use p2auth_sim::{
    inject_sensor_faults, Population, PopulationConfig, SensorFaultConfig, SessionConfig,
};

struct Setup {
    pop: Population,
    pin: Pin,
    session: SessionConfig,
}

impl Setup {
    fn new(seed: u64) -> Self {
        Self {
            pop: Population::generate(&PopulationConfig {
                num_users: 6,
                seed,
                ..Default::default()
            }),
            pin: Pin::new("1628").unwrap(),
            session: SessionConfig::default(),
        }
    }

    fn enroll(&self, sys: &P2Auth) -> p2auth_core::UserProfile {
        let enroll: Vec<_> = (0..7)
            .map(|i| {
                self.pop
                    .record_entry(0, &self.pin, HandMode::OneHanded, &self.session, i)
            })
            .collect();
        let third: Vec<_> = (0..18)
            .map(|i| {
                self.pop.record_entry(
                    1 + (i as usize % 4),
                    &self.pin,
                    HandMode::OneHanded,
                    &self.session,
                    200 + i,
                )
            })
            .collect();
        sys.enroll(&self.pin, &enroll, &third).unwrap()
    }
}

/// The headline invariant: on clean sessions, gating enabled vs
/// disabled produces *identical* decisions — same verdict, same votes,
/// same score — because every clean segment scores exactly 1.0 and the
/// weighted rule then reduces to the paper's counting rule.
#[test]
fn gating_is_invisible_on_clean_sessions() {
    let s = Setup::new(91);
    let mut gated_cfg = P2AuthConfig::fast();
    gated_cfg.sqi_gating = true;
    let mut plain_cfg = gated_cfg.clone();
    plain_cfg.sqi_gating = false;
    let gated = P2Auth::new(gated_cfg);
    let plain = P2Auth::new(plain_cfg);
    // Same config apart from the gate → identical profiles; enroll once.
    let profile = s.enroll(&gated);

    for n in 0..6_u64 {
        let legit = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 500 + n);
        let dg = gated.authenticate(&profile, &s.pin, &legit).unwrap();
        let dp = plain.authenticate(&profile, &s.pin, &legit).unwrap();
        assert_eq!(dg, dp, "clean legit session {n}: gate must be invisible");

        let attack = s.pop.record_emulating_attack(
            1 + (n as usize % 3),
            0,
            &s.pin,
            HandMode::OneHanded,
            &s.session,
            n,
        );
        let dg = gated.authenticate(&profile, &s.pin, &attack).unwrap();
        let dp = plain.authenticate(&profile, &s.pin, &attack).unwrap();
        assert_eq!(dg, dp, "clean attack session {n}: gate must be invisible");
        // And the votes really were unweighted.
        for v in &dg.keystroke_votes {
            assert_eq!(v.weight, 1.0, "clean segments carry unit weight");
        }
    }
}

/// Saturation-railed sessions: with gating on, the unusable segments
/// are excluded and the decision reports `PoorSignal` (re-promptable)
/// rather than a biometric verdict from clipped-flat waveforms.
#[test]
fn railed_sessions_reject_as_poor_signal() {
    let s = Setup::new(92);
    let sys = P2Auth::new(P2AuthConfig::fast());
    let profile = s.enroll(&sys);
    let faults = SensorFaultConfig {
        saturation_rate_hz: 1.2,
        ..SensorFaultConfig::default()
    };
    let mut poor_signal = 0;
    let trials = 6_u64;
    for n in 0..trials {
        let legit = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 700 + n);
        let (bad, stats) = inject_sensor_faults(&legit, &faults, n);
        assert!(stats.saturation_episodes > 0, "trial {n} must rail");
        let d = sys.authenticate(&profile, &s.pin, &bad).unwrap();
        if d.reason == Some(RejectReason::PoorSignal) {
            poor_signal += 1;
        }
    }
    assert!(
        poor_signal >= trials / 2,
        "only {poor_signal}/{trials} railed sessions surfaced PoorSignal"
    );
}

/// Quality assessment agrees with the gate: sessions the authenticator
/// calls `PoorSignal` also assess below the usable-keystroke minimum,
/// so a supervisor can re-prompt *before* wasting a decision.
#[test]
fn assessment_predicts_the_gate() {
    let s = Setup::new(93);
    let sys = P2Auth::new(P2AuthConfig::fast());
    let profile = s.enroll(&sys);
    let legit = s
        .pop
        .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 800);
    let q = sys.assess_quality(&profile, &legit).unwrap();
    assert_eq!(q.detected, 4, "all four keystrokes of a clean entry");
    assert_eq!(q.usable, 4);
    assert!((q.mean_sqi - 1.0).abs() < 1e-12, "clean SQI is exactly 1");
    for k in &q.per_keystroke {
        let sq = k.quality.as_ref().expect("detected keystrokes scored");
        assert!(!sq.flags.any(), "clean keystroke {} unflagged", k.index);
    }

    let faults = SensorFaultConfig {
        saturation_rate_hz: 1.2,
        ..SensorFaultConfig::default()
    };
    let (bad, _) = inject_sensor_faults(&legit, &faults, 3);
    let qb = sys.assess_quality(&profile, &bad).unwrap();
    assert!(
        qb.usable < q.usable,
        "railed session must lose usable keystrokes ({} vs {})",
        qb.usable,
        q.usable
    );
    assert!(
        qb.mean_sqi < 0.9,
        "railed mean SQI {} too high",
        qb.mean_sqi
    );
}
