//! An authenticating host: the deployed composition of the acquisition
//! chain and the pipeline. Frames stream in (in arrival order); when a
//! session completes, the attempt is authenticated against the enrolled
//! profile and a decision is emitted — what the paper's PC-side
//! prototype does online.

use crate::frame::Frame;
use crate::host::{AssembleError, HostAssembler};
use p2auth_core::{AuthDecision, AuthError, P2Auth, Pin, UserProfile};

/// Error from the authenticating host.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamAuthError {
    /// Frame decoding / session assembly failed.
    Assemble(AssembleError),
    /// The assembled attempt could not be evaluated.
    Auth(AuthError),
}

impl std::fmt::Display for StreamAuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamAuthError::Assemble(e) => write!(f, "assembly failed: {e}"),
            StreamAuthError::Auth(e) => write!(f, "authentication failed: {e}"),
        }
    }
}

impl std::error::Error for StreamAuthError {}

impl From<AssembleError> for StreamAuthError {
    fn from(e: AssembleError) -> Self {
        StreamAuthError::Assemble(e)
    }
}

impl From<AuthError> for StreamAuthError {
    fn from(e: AuthError) -> Self {
        StreamAuthError::Auth(e)
    }
}

/// Streams acquisition frames and authenticates each completed session.
///
/// Create with an enrolled profile, feed frames with
/// [`AuthenticatingHost::feed`], and receive an [`AuthDecision`] when a
/// `SessionEnd` frame closes an entry. The host resets itself after
/// each session, so one instance serves a whole unlock stream.
#[derive(Debug)]
pub struct AuthenticatingHost {
    system: P2Auth,
    profile: UserProfile,
    claimed_pin: Option<Pin>,
    assembler: HostAssembler,
    sessions_completed: usize,
}

impl AuthenticatingHost {
    /// Creates a host for `profile`. `claimed_pin` of `None` selects
    /// the no-PIN flow.
    pub fn new(system: P2Auth, profile: UserProfile, claimed_pin: Option<Pin>) -> Self {
        Self {
            system,
            profile,
            claimed_pin,
            assembler: HostAssembler::new(),
            sessions_completed: 0,
        }
    }

    /// Feeds one encoded frame (in arrival order). Returns the decision
    /// when this frame completed a session.
    ///
    /// # Errors
    ///
    /// Returns [`StreamAuthError`] on malformed frames, incomplete
    /// sessions or evaluation failures; the host resets and can accept
    /// the next session either way.
    pub fn feed_bytes(&mut self, bytes: &[u8]) -> Result<Option<AuthDecision>, StreamAuthError> {
        let result = self.assembler.feed_bytes(bytes);
        self.handle(result)
    }

    /// Feeds one decoded frame (in arrival order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AuthenticatingHost::feed_bytes`].
    pub fn feed(&mut self, frame: Frame) -> Result<Option<AuthDecision>, StreamAuthError> {
        let result = self.assembler.feed(frame);
        self.handle(result)
    }

    fn handle(
        &mut self,
        result: Result<Option<p2auth_core::Recording>, AssembleError>,
    ) -> Result<Option<AuthDecision>, StreamAuthError> {
        match result {
            Ok(None) => Ok(None),
            Ok(Some(recording)) => {
                self.assembler = HostAssembler::new();
                self.sessions_completed += 1;
                let decision = match &self.claimed_pin {
                    Some(pin) => self.system.authenticate(&self.profile, pin, &recording)?,
                    None => self.system.authenticate_no_pin(&self.profile, &recording)?,
                };
                Ok(Some(decision))
            }
            Err(e) => {
                self.assembler = HostAssembler::new();
                Err(e.into())
            }
        }
    }

    /// Number of sessions authenticated so far.
    pub fn sessions_completed(&self) -> usize {
        self.sessions_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::device::WearableDevice;
    use crate::link::{Link, LinkConfig};
    use p2auth_core::{HandMode, P2AuthConfig};
    use p2auth_sim::{Population, PopulationConfig, SessionConfig};

    fn setup() -> (Population, Pin, SessionConfig, P2Auth, UserProfile) {
        let pop = Population::generate(&PopulationConfig {
            num_users: 8,
            seed: 501,
            ..Default::default()
        });
        let pin = Pin::new("1628").unwrap();
        let session = SessionConfig::default();
        let system = P2Auth::new(P2AuthConfig::default());
        // Enroll from *streamed* recordings — in deployment the host
        // only ever sees what came over the link.
        let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 4,
            ..LinkConfig::default()
        });
        let mut stream = |rec: &p2auth_core::Recording| {
            crate::host::transmit(rec, &device, &mut data, &mut keys).expect("transmit")
        };
        let enroll: Vec<_> = (0..9)
            .map(|i| stream(&pop.record_entry(0, &pin, HandMode::OneHanded, &session, i)))
            .collect();
        let third: Vec<_> = (0..32)
            .map(|i| {
                stream(&pop.record_entry(
                    1 + (i as usize % 7),
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    300 + i,
                ))
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third).unwrap();
        (pop, pin, session, system, profile)
    }

    fn stream_frames(
        host: &mut AuthenticatingHost,
        rec: &p2auth_core::Recording,
    ) -> Option<AuthDecision> {
        let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 3,
            ..LinkConfig::default()
        });
        data.start_session();
        keys.start_session();
        let mut inbox: Vec<(f64, Frame)> = device
            .packetize(rec)
            .into_iter()
            .map(|tf| {
                let arrival = match tf.frame {
                    Frame::Key { .. } => keys.deliver(tf.send_time_s),
                    _ => data.deliver(tf.send_time_s),
                };
                (arrival, tf.frame)
            })
            .collect();
        inbox.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut decision = None;
        for (_, frame) in inbox {
            if let Some(d) = host.feed(frame).expect("stream ok") {
                decision = Some(d);
            }
        }
        decision
    }

    #[test]
    fn streams_sessions_to_decisions() {
        let (pop, pin, session, system, profile) = setup();
        let mut host = AuthenticatingHost::new(system, profile, Some(pin.clone()));
        // Alternating legitimate sessions and attacks on the same host.
        let mut legit_ok = 0;
        let mut attacks_rejected = 0;
        let trials = 4_u64;
        for n in 0..trials {
            let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 900 + n);
            if stream_frames(&mut host, &legit)
                .expect("decision emitted")
                .accepted
            {
                legit_ok += 1;
            }
            let attacker = 2 + (n as usize % 3);
            let attack =
                pop.record_emulating_attack(attacker, 0, &pin, HandMode::OneHanded, &session, n);
            if !stream_frames(&mut host, &attack)
                .expect("decision emitted")
                .accepted
            {
                attacks_rejected += 1;
            }
        }
        assert!(legit_ok >= 3, "streamed legit accepted {legit_ok}/{trials}");
        assert!(
            attacks_rejected >= 3,
            "streamed attacks rejected {attacks_rejected}/{trials}"
        );
        assert_eq!(host.sessions_completed() as u64, 2 * trials);
    }

    #[test]
    fn garbage_frame_is_an_error_not_a_decision() {
        let (_, pin, _, system, profile) = setup();
        let mut host = AuthenticatingHost::new(system, profile, Some(pin));
        assert!(host.feed_bytes(&[1, 2, 3]).is_err());
        assert_eq!(host.sessions_completed(), 0);
    }
}
