//! An authenticating host: the deployed composition of the acquisition
//! chain and the pipeline. Frames stream in (in arrival order); when a
//! session completes, the attempt is authenticated against the enrolled
//! profile and a decision is emitted — what the paper's PC-side
//! prototype does online.

use crate::frame::{resync_offset, Frame};
use crate::host::{AssembleError, HostAssembler, LinkQuality};
use p2auth_core::{
    AttemptQuality, AuthDecision, AuthError, P2Auth, Pin, ProfileArena, Recording, SessionScratch,
    UserProfile,
};

/// Error from the authenticating host.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamAuthError {
    /// Frame decoding / session assembly failed.
    Assemble(AssembleError),
    /// The assembled attempt could not be evaluated.
    Auth(AuthError),
}

impl std::fmt::Display for StreamAuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamAuthError::Assemble(e) => write!(f, "assembly failed: {e}"),
            StreamAuthError::Auth(e) => write!(f, "authentication failed: {e}"),
        }
    }
}

impl std::error::Error for StreamAuthError {}

impl From<AssembleError> for StreamAuthError {
    fn from(e: AssembleError) -> Self {
        StreamAuthError::Assemble(e)
    }
}

impl From<AuthError> for StreamAuthError {
    fn from(e: AuthError) -> Self {
        StreamAuthError::Auth(e)
    }
}

/// Outcome of one streamed session under the degraded-mode policy.
///
/// Unlike the strict [`AuthenticatingHost::feed_bytes`] path, faults
/// are not errors here: a session that lost data still produces a
/// typed outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOutcome {
    /// Full coverage: the normal two-factor decision.
    Decision(AuthDecision),
    /// Coverage fell below the configured threshold; the decision came
    /// from the degraded fallback policy (e.g. PIN-only).
    Degraded {
        /// The fallback decision.
        decision: AuthDecision,
        /// PPG block coverage of the session (0.0–1.0).
        coverage: f64,
        /// Missing PPG blocks that had to be gap-filled — the reason
        /// the session was degraded.
        gap_blocks: usize,
    },
    /// The session could not be evaluated at all.
    Abort {
        /// Human-readable cause.
        reason: String,
        /// PPG block coverage at the time of the abort.
        coverage: f64,
        /// Missing PPG blocks at the time of the abort.
        gap_blocks: usize,
    },
}

impl SessionOutcome {
    /// The decision, unless the session aborted.
    pub fn decision(&self) -> Option<&AuthDecision> {
        match self {
            SessionOutcome::Decision(d) | SessionOutcome::Degraded { decision: d, .. } => Some(d),
            SessionOutcome::Abort { .. } => None,
        }
    }

    /// Whether the user was accepted (aborted sessions never accept).
    pub fn accepted(&self) -> bool {
        self.decision().is_some_and(|d| d.accepted)
    }
}

/// Applies the coverage-gated decision policy to one assembled session:
/// at or above the configured `min_ppg_coverage` the normal two-factor
/// path runs; below it, the degraded fallback
/// (`P2AuthConfig::degraded_fallback`) decides — and the outcome
/// records *why* (the coverage and gap-block counts from
/// [`LinkQuality`]). Evaluation errors become
/// [`SessionOutcome::Abort`], never a panic — this is the deployed
/// path fed by a faulty link.
pub fn decide_session(
    system: &P2Auth,
    profile: &UserProfile,
    claimed_pin: Option<&Pin>,
    recording: &Recording,
    quality: LinkQuality,
) -> SessionOutcome {
    decide_session_impl(
        system,
        quality,
        || match claimed_pin {
            Some(pin) => system.authenticate(profile, pin, recording),
            None => system.authenticate_no_pin(profile, recording),
        },
        || system.assess_quality(profile, recording),
        || system.authenticate_degraded(profile, claimed_pin, recording),
    )
}

/// [`decide_session`] against a prebuilt [`ProfileArena`]: the same
/// coverage-gated policy (identical counters, events and precedence
/// rules) routed through the fused transform-and-score hot path.
/// Decisions are bit-identical to [`decide_session`] on the source
/// profile; the caller's [`SessionScratch`] is reused across sessions
/// so the steady state allocates nothing in the rocket/ml layers.
pub fn decide_session_arena(
    system: &P2Auth,
    arena: &ProfileArena,
    scratch: &mut SessionScratch,
    claimed_pin: Option<&Pin>,
    recording: &Recording,
    quality: LinkQuality,
) -> SessionOutcome {
    decide_session_impl(
        system,
        quality,
        || match claimed_pin {
            Some(pin) => system.authenticate_arena(arena, scratch, pin, recording),
            None => system.authenticate_arena_no_pin(arena, scratch, recording),
        },
        || system.assess_quality_arena(arena, recording),
        || system.authenticate_degraded_arena(arena, claimed_pin, recording),
    )
}

/// Shared body of [`decide_session`] / [`decide_session_arena`]: the
/// policy is written once, so the arena path cannot drift from the
/// direct path in gating, precedence, or telemetry.
fn decide_session_impl(
    system: &P2Auth,
    quality: LinkQuality,
    authenticate: impl FnOnce() -> Result<AuthDecision, AuthError>,
    assess: impl FnOnce() -> Result<AttemptQuality, AuthError>,
    degraded: impl FnOnce() -> Result<AuthDecision, AuthError>,
) -> SessionOutcome {
    let abort = |e: String| {
        p2auth_obs::counter!("device.session.aborts").incr();
        p2auth_obs::event!(
            "device.session",
            "abort",
            coverage = quality.coverage,
            gap_blocks = quality.gap_blocks,
            reason = e.clone(),
        );
        SessionOutcome::Abort {
            reason: e,
            coverage: quality.coverage,
            gap_blocks: quality.gap_blocks,
        }
    };
    if quality.coverage >= system.config().min_ppg_coverage {
        match authenticate() {
            Ok(d) => SessionOutcome::Decision(d),
            Err(e) => abort(e.to_string()),
        }
    } else {
        p2auth_obs::counter!("device.session.degraded_entries").incr();
        p2auth_obs::event!(
            "device.session",
            "degraded",
            coverage = quality.coverage,
            gap_blocks = quality.gap_blocks,
            expected_blocks = quality.expected_blocks,
            received_blocks = quality.received_blocks,
        );
        // Precedence: link-degraded AND SQI-gated takes the stricter
        // path. The PIN-only fallback exists for sessions whose
        // *transport* lost data; if the samples that did arrive show
        // the sensor itself was bad (keystrokes visible but below the
        // SQI floor), falling back would let a single knowledge factor
        // decide on two independently broken channels — reject with
        // the quality verdict instead.
        let cfg = system.config();
        if cfg.sqi_gating {
            if let Ok(q) = assess() {
                if q.detected >= cfg.sqi_min_keystrokes && q.usable < cfg.sqi_min_keystrokes {
                    p2auth_obs::counter!("device.session.degraded_poor_signal").incr();
                    p2auth_obs::event!(
                        "device.session",
                        "degraded_poor_signal",
                        coverage = quality.coverage,
                        detected = q.detected,
                        usable = q.usable,
                        mean_sqi = q.mean_sqi,
                    );
                    return SessionOutcome::Degraded {
                        decision: AuthDecision {
                            accepted: false,
                            case: p2auth_core::InputCase::Insufficient,
                            reason: Some(p2auth_core::RejectReason::PoorSignal),
                            keystroke_votes: Vec::new(),
                            score: 0.0,
                        },
                        coverage: quality.coverage,
                        gap_blocks: quality.gap_blocks,
                    };
                }
            }
        }
        match degraded() {
            Ok(d) => SessionOutcome::Degraded {
                decision: d,
                coverage: quality.coverage,
                gap_blocks: quality.gap_blocks,
            },
            Err(e) => abort(e.to_string()),
        }
    }
}

/// Streams acquisition frames and authenticates each completed session.
///
/// Create with an enrolled profile, feed frames with
/// [`AuthenticatingHost::feed`], and receive an [`AuthDecision`] when a
/// `SessionEnd` frame closes an entry. The host resets itself after
/// each session, so one instance serves a whole unlock stream.
#[derive(Debug)]
pub struct AuthenticatingHost {
    system: P2Auth,
    claimed_pin: Option<Pin>,
    /// The profile's models folded into the fused-scorer constant
    /// tables once at construction; every session decision routes
    /// through it (bit-identical to deciding on the profile directly).
    arena: ProfileArena,
    /// Conv/score workspace reused across sessions, so steady-state
    /// decisions allocate nothing in the rocket/ml layers.
    scratch: SessionScratch,
    assembler: HostAssembler,
    stream_buf: Vec<u8>,
    sessions_completed: usize,
}

impl AuthenticatingHost {
    /// Creates a host for `profile`. `claimed_pin` of `None` selects
    /// the no-PIN flow. The profile is folded into a [`ProfileArena`]
    /// here; the host keeps only the arena.
    pub fn new(system: P2Auth, profile: UserProfile, claimed_pin: Option<Pin>) -> Self {
        let arena = system.arena(&profile);
        Self {
            system,
            claimed_pin,
            arena,
            scratch: SessionScratch::new(),
            assembler: HostAssembler::new(),
            stream_buf: Vec::new(),
            sessions_completed: 0,
        }
    }

    /// Feeds a raw byte chunk from the link — any framing, any
    /// alignment, possibly corrupted. Complete frames are extracted
    /// and absorbed; garbage is skipped by resynchronizing on the next
    /// frame magic; a `SessionEnd` closes the session with degraded
    /// assembly and the coverage-gated decision policy. Returns the
    /// outcomes of all sessions completed within this chunk (usually
    /// zero or one).
    ///
    /// This is the graceful-degradation counterpart of
    /// [`AuthenticatingHost::feed_bytes`]: it never errors and never
    /// panics on hostile input, at the cost of deferring all
    /// trouble reporting to the typed [`SessionOutcome`].
    pub fn feed_stream(&mut self, chunk: &[u8]) -> Vec<SessionOutcome> {
        self.stream_buf.extend_from_slice(chunk);
        let mut outcomes = Vec::new();
        let mut pos = 0_usize;
        while pos < self.stream_buf.len() {
            match Frame::decode(&self.stream_buf[pos..]) {
                Ok((frame, used)) => {
                    pos += used;
                    if let Some(result) = self.assembler.feed_lossy(frame) {
                        let quality_at_end = self.assembler.quality();
                        self.assembler = HostAssembler::new();
                        match result {
                            Ok((recording, quality)) => {
                                self.sessions_completed += 1;
                                outcomes.push(decide_session_arena(
                                    &self.system,
                                    &self.arena,
                                    &mut self.scratch,
                                    self.claimed_pin.as_ref(),
                                    &recording,
                                    quality,
                                ));
                            }
                            Err(e) => {
                                p2auth_obs::counter!("device.session.aborts").incr();
                                p2auth_obs::event!(
                                    "device.session",
                                    "abort",
                                    coverage = quality_at_end.coverage,
                                    gap_blocks = quality_at_end.gap_blocks,
                                    reason = e.to_string(),
                                );
                                outcomes.push(SessionOutcome::Abort {
                                    reason: e.to_string(),
                                    coverage: quality_at_end.coverage,
                                    gap_blocks: quality_at_end.gap_blocks,
                                });
                            }
                        }
                    }
                }
                Err(e) if e.needs_more_data() => break,
                Err(_) => {
                    // Garbage: skip to the next candidate frame start.
                    let skipped = resync_offset(&self.stream_buf[pos..]);
                    p2auth_obs::counter!("device.host.resyncs").incr();
                    p2auth_obs::event!("device.host", "resync", skipped = skipped);
                    pos += skipped;
                }
            }
        }
        self.stream_buf.drain(..pos);
        outcomes
    }

    /// Feeds one encoded frame (in arrival order). Returns the decision
    /// when this frame completed a session.
    ///
    /// # Errors
    ///
    /// Returns [`StreamAuthError`] on malformed frames, incomplete
    /// sessions or evaluation failures; the host resets and can accept
    /// the next session either way.
    pub fn feed_bytes(&mut self, bytes: &[u8]) -> Result<Option<AuthDecision>, StreamAuthError> {
        let result = self.assembler.feed_bytes(bytes);
        self.handle(result)
    }

    /// Feeds one decoded frame (in arrival order).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AuthenticatingHost::feed_bytes`].
    pub fn feed(&mut self, frame: Frame) -> Result<Option<AuthDecision>, StreamAuthError> {
        let result = self.assembler.feed(frame);
        self.handle(result)
    }

    fn handle(
        &mut self,
        result: Result<Option<p2auth_core::Recording>, AssembleError>,
    ) -> Result<Option<AuthDecision>, StreamAuthError> {
        match result {
            Ok(None) => Ok(None),
            Ok(Some(recording)) => {
                self.assembler = HostAssembler::new();
                self.sessions_completed += 1;
                let decision = match &self.claimed_pin {
                    Some(pin) => self.system.authenticate_arena(
                        &self.arena,
                        &mut self.scratch,
                        pin,
                        &recording,
                    )?,
                    None => self.system.authenticate_arena_no_pin(
                        &self.arena,
                        &mut self.scratch,
                        &recording,
                    )?,
                };
                Ok(Some(decision))
            }
            Err(e) => {
                self.assembler = HostAssembler::new();
                Err(e.into())
            }
        }
    }

    /// Number of sessions authenticated so far.
    pub fn sessions_completed(&self) -> usize {
        self.sessions_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::device::WearableDevice;
    use crate::link::{Link, LinkConfig};
    use p2auth_core::{HandMode, P2AuthConfig};
    use p2auth_sim::{Population, PopulationConfig, SessionConfig};

    fn setup() -> (Population, Pin, SessionConfig, P2Auth, UserProfile) {
        let pop = Population::generate(&PopulationConfig {
            num_users: 8,
            seed: 501,
            ..Default::default()
        });
        let pin = Pin::new("1628").unwrap();
        let session = SessionConfig::default();
        let system = P2Auth::new(P2AuthConfig::default());
        // Enroll from *streamed* recordings — in deployment the host
        // only ever sees what came over the link.
        let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 4,
            ..LinkConfig::default()
        });
        let mut stream = |rec: &p2auth_core::Recording| {
            crate::host::transmit(rec, &device, &mut data, &mut keys).expect("transmit")
        };
        let enroll: Vec<_> = (0..9)
            .map(|i| stream(&pop.record_entry(0, &pin, HandMode::OneHanded, &session, i)))
            .collect();
        let third: Vec<_> = (0..32)
            .map(|i| {
                stream(&pop.record_entry(
                    1 + (i as usize % 7),
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    300 + i,
                ))
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third).unwrap();
        (pop, pin, session, system, profile)
    }

    fn stream_frames(
        host: &mut AuthenticatingHost,
        rec: &p2auth_core::Recording,
    ) -> Option<AuthDecision> {
        let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 3,
            ..LinkConfig::default()
        });
        data.start_session();
        keys.start_session();
        let mut inbox: Vec<(f64, Frame)> = device
            .packetize(rec)
            .into_iter()
            .map(|tf| {
                let arrival = match tf.frame {
                    Frame::Key { .. } => keys.deliver(tf.send_time_s),
                    _ => data.deliver(tf.send_time_s),
                };
                (arrival, tf.frame)
            })
            .collect();
        inbox.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut decision = None;
        for (_, frame) in inbox {
            if let Some(d) = host.feed(frame).expect("stream ok") {
                decision = Some(d);
            }
        }
        decision
    }

    #[test]
    fn streams_sessions_to_decisions() {
        let (pop, pin, session, system, profile) = setup();
        let mut host = AuthenticatingHost::new(system, profile, Some(pin.clone()));
        // Alternating legitimate sessions and attacks on the same host.
        let mut legit_ok = 0;
        let mut attacks_rejected = 0;
        let trials = 4_u64;
        for n in 0..trials {
            let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 900 + n);
            if stream_frames(&mut host, &legit)
                .expect("decision emitted")
                .accepted
            {
                legit_ok += 1;
            }
            let attacker = 2 + (n as usize % 3);
            let attack =
                pop.record_emulating_attack(attacker, 0, &pin, HandMode::OneHanded, &session, n);
            if !stream_frames(&mut host, &attack)
                .expect("decision emitted")
                .accepted
            {
                attacks_rejected += 1;
            }
        }
        assert!(legit_ok >= 3, "streamed legit accepted {legit_ok}/{trials}");
        assert!(
            attacks_rejected >= 3,
            "streamed attacks rejected {attacks_rejected}/{trials}"
        );
        assert_eq!(host.sessions_completed() as u64, 2 * trials);
    }

    #[test]
    fn garbage_frame_is_an_error_not_a_decision() {
        let (_, pin, _, system, profile) = setup();
        let mut host = AuthenticatingHost::new(system, profile, Some(pin));
        assert!(host.feed_bytes(&[1, 2, 3]).is_err());
        assert_eq!(host.sessions_completed(), 0);
    }

    /// A cheaper enrollment for the streaming-path tests, which assert
    /// plumbing (resync, coverage gating), not accuracy.
    fn light_setup() -> (Population, Pin, SessionConfig, P2Auth, UserProfile) {
        let pop = Population::generate(&PopulationConfig {
            num_users: 4,
            seed: 733,
            ..Default::default()
        });
        let pin = Pin::new("1628").unwrap();
        let session = SessionConfig::default();
        let system = P2Auth::new(P2AuthConfig::fast());
        let enroll: Vec<_> = (0..6)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 40 + i))
            .collect();
        let third: Vec<_> = (0..12)
            .map(|i| {
                pop.record_entry(
                    1 + (i as usize % 3),
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    70 + i,
                )
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third).unwrap();
        (pop, pin, session, system, profile)
    }

    #[test]
    fn feed_stream_resyncs_after_garbage() {
        let (pop, pin, session, system, profile) = light_setup();
        let mut host = AuthenticatingHost::new(system, profile, Some(pin.clone()));
        let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 990);
        let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
        // Leading garbage (with a fake magic byte) plus junk between
        // frames; frames themselves are intact.
        let mut wire = vec![0x00, 0xA5, 0x17];
        for (i, tf) in device.packetize(&legit).into_iter().enumerate() {
            wire.extend_from_slice(&tf.frame.encode());
            if i % 7 == 0 {
                wire.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
            }
        }
        // Arbitrary chunking must not matter.
        let mut outcomes = Vec::new();
        for chunk in wire.chunks(13) {
            outcomes.extend(host.feed_stream(chunk));
        }
        assert_eq!(outcomes.len(), 1, "exactly one session completed");
        assert!(
            matches!(outcomes[0], SessionOutcome::Decision(_)),
            "full coverage takes the normal path, got {:?}",
            outcomes[0]
        );
        assert_eq!(host.sessions_completed(), 1);
    }

    #[test]
    fn lossy_stream_falls_back_to_pin_only() {
        let (pop, pin, session, system, profile) = light_setup();
        let mut host = AuthenticatingHost::new(system.clone(), profile.clone(), Some(pin.clone()));
        let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 991);
        let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
        // Drop every third PPG frame: coverage ~2/3, below the 0.9
        // threshold, with key events intact.
        let mut wire = Vec::new();
        let mut ppg_seen = 0_usize;
        let mut dropped = 0_usize;
        for tf in device.packetize(&legit) {
            if matches!(tf.frame, Frame::Ppg { .. }) {
                ppg_seen += 1;
                if ppg_seen % 3 == 0 {
                    dropped += 1;
                    continue;
                }
            }
            wire.extend_from_slice(&tf.frame.encode());
        }
        assert!(dropped > 0);
        let outcomes = host.feed_stream(&wire);
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0] {
            SessionOutcome::Degraded {
                decision,
                coverage,
                gap_blocks,
            } => {
                assert!(
                    *coverage < 0.9,
                    "coverage {coverage} should gate biometrics"
                );
                assert!(*gap_blocks > 0, "dropped frames must surface as gaps");
                assert!(
                    decision.accepted,
                    "correct PIN accepted under PIN-only fallback"
                );
                assert_eq!(decision.score, 0.0, "no biometric score in degraded mode");
            }
            other => panic!("expected a degraded outcome, got {other:?}"),
        }
        // The wrong PIN must still be rejected in degraded mode.
        let mut host2 = AuthenticatingHost::new(system, profile, Some(Pin::new("9999").unwrap()));
        let outcomes2 = host2.feed_stream(&wire);
        assert_eq!(outcomes2.len(), 1);
        assert!(!outcomes2[0].accepted(), "wrong claimed PIN rejected");
    }

    /// The arena session path is the deployed hot path; it must agree
    /// with the direct path bit-for-bit across the policy's branches:
    /// full coverage (normal two-factor), lossy link (PIN-only
    /// fallback), and a wrong claimed PIN.
    #[test]
    fn arena_session_path_matches_direct_path() {
        let (pop, pin, session, system, profile) = light_setup();
        let arena = system.arena(&profile);
        let mut scratch = SessionScratch::new();
        let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 995);
        let wrong = Pin::new("9999").unwrap();
        let full = LinkQuality {
            coverage: 1.0,
            expected_blocks: 20,
            received_blocks: 20,
            gap_blocks: 0,
        };
        let lossy = LinkQuality {
            coverage: 0.5,
            expected_blocks: 20,
            received_blocks: 10,
            gap_blocks: 10,
        };
        for (claimed, quality) in [
            (Some(&pin), full),
            (Some(&wrong), full),
            (None, full),
            (Some(&pin), lossy),
            (Some(&wrong), lossy),
        ] {
            let direct = decide_session(&system, &profile, claimed, &legit, quality);
            let fused =
                decide_session_arena(&system, &arena, &mut scratch, claimed, &legit, quality);
            assert_eq!(fused, direct, "claimed={claimed:?} quality={quality:?}");
        }
    }

    /// Precedence regression: a session that is link-degraded AND
    /// SQI-gated must take the stricter path (PoorSignal reject), while
    /// a clean-signal session with the same link loss still falls back
    /// to PIN-only.
    #[test]
    fn degraded_and_sqi_gated_takes_the_stricter_path() {
        use p2auth_core::RejectReason;
        use p2auth_sim::{inject_sensor_faults, SensorFaultConfig};

        let (pop, pin, session, system, profile) = light_setup();
        let legit = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 992);
        let lossy = crate::host::LinkQuality {
            coverage: 0.5,
            expected_blocks: 20,
            received_blocks: 10,
            gap_blocks: 10,
        };
        // Clean sensor + lossy link: PIN-only fallback accepts.
        match decide_session(&system, &profile, Some(&pin), &legit, lossy) {
            SessionOutcome::Degraded { decision, .. } => {
                assert!(decision.accepted, "clean signal keeps the PIN-only path");
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        // Heavy saturation + the same lossy link: keystrokes are still
        // detected but their segments clip flat, so the stricter path
        // wins over the PIN-only fallback.
        let faults = SensorFaultConfig {
            saturation_rate_hz: 1.0,
            ..SensorFaultConfig::default()
        };
        let (bad, stats) = inject_sensor_faults(&legit, &faults, 1);
        assert!(stats.saturation_episodes > 0);
        match decide_session(&system, &profile, Some(&pin), &bad, lossy) {
            SessionOutcome::Degraded { decision, .. } => {
                assert!(!decision.accepted, "junk signal must not reach PIN-only");
                assert_eq!(
                    decision.reason,
                    Some(RejectReason::PoorSignal),
                    "the rejection must carry the quality verdict"
                );
            }
            other => panic!("expected a degraded poor-signal reject, got {other:?}"),
        }
    }
}
