//! Virtual clocks with offset and drift.
//!
//! The phone, the wearable and the host each keep their own clock. The
//! wearable's cheap oscillator drifts; the phone's offset is unknown to
//! the host. Timestamps crossing device boundaries therefore cannot be
//! compared exactly — the source of the coarse keystroke times the
//! calibration module corrects.

/// A virtual clock: maps true (simulation) time to this device's local
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VirtualClock {
    /// Local time at true time zero (seconds).
    pub offset_s: f64,
    /// Rate error in parts per million (positive runs fast).
    pub drift_ppm: f64,
}

impl VirtualClock {
    /// An ideal clock (zero offset, zero drift).
    pub fn ideal() -> Self {
        Self {
            offset_s: 0.0,
            drift_ppm: 0.0,
        }
    }

    /// Creates a clock with the given offset and drift.
    pub fn new(offset_s: f64, drift_ppm: f64) -> Self {
        Self {
            offset_s,
            drift_ppm,
        }
    }

    /// Local reading at true time `t_true` seconds.
    pub fn local(&self, t_true: f64) -> f64 {
        self.offset_s + t_true * (1.0 + self.drift_ppm * 1e-6)
    }

    /// Inverse mapping: true time for a local reading.
    pub fn true_time(&self, t_local: f64) -> f64 {
        (t_local - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_identity() {
        let c = VirtualClock::ideal();
        assert_eq!(c.local(12.5), 12.5);
    }

    #[test]
    fn offset_and_drift_apply() {
        let c = VirtualClock::new(3.0, 100.0); // fast by 100 ppm
        let local = c.local(1000.0);
        assert!((local - 1003.1).abs() < 1e-9);
    }

    #[test]
    fn round_trip() {
        let c = VirtualClock::new(-1.5, -40.0);
        for t in [0.0, 1.0, 777.7] {
            assert!((c.true_time(c.local(t)) - t).abs() < 1e-9);
        }
    }
}
