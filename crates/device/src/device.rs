//! The wearable side: turning an acquired recording into a timestamped
//! packet stream.

use crate::clock::VirtualClock;
use crate::frame::Frame;
use p2auth_core::types::{HandMode, Recording};

/// A frame together with the (true) time the device put it on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedFrame {
    /// True send time in seconds from session start.
    pub send_time_s: f64,
    /// The packet.
    pub frame: Frame,
}

/// The virtual wearable: chunks sensor data into frames and timestamps
/// keystroke events on the phone's (offset) clock.
#[derive(Debug, Clone)]
pub struct WearableDevice {
    /// The phone's clock relative to true time (key events are stamped
    /// with it, so the host cannot compare them exactly to the sample
    /// stream).
    pub phone_clock: VirtualClock,
    /// Samples per PPG/accel frame.
    pub chunk: usize,
}

impl WearableDevice {
    /// A device with the given phone-clock offset/drift and the default
    /// 10-sample chunking (100 ms of PPG at 100 Hz). Small blocks keep
    /// the host's sample-counting key placement within the calibration
    /// search window of the pipeline.
    pub fn new(phone_clock: VirtualClock) -> Self {
        Self {
            phone_clock,
            chunk: 10,
        }
    }

    /// Serializes a recording into the frame sequence the prototype
    /// would emit, in send order. Sample blocks are sent when their
    /// last sample has been acquired; key events are sent at the touch
    /// time, timestamped on the phone clock.
    ///
    /// # Panics
    ///
    /// Panics if the recording fails validation.
    pub fn packetize(&self, rec: &Recording) -> Vec<TimedFrame> {
        rec.validate().expect("recording must be valid");
        let rate = rec.sample_rate;
        let mut frames = Vec::new();
        frames.push(TimedFrame {
            send_time_s: 0.0,
            frame: Frame::SessionStart {
                user: rec.user.0,
                sample_rate: rate as f32,
                channels: rec.channels.clone(),
                accel_rate: rec.accel.as_ref().map_or(0.0, |a| a.sample_rate as f32),
            },
        });
        // PPG blocks.
        for (ch, data) in rec.ppg.iter().enumerate() {
            for (seq, block) in data.chunks(self.chunk).enumerate() {
                let end_index = seq * self.chunk + block.len();
                frames.push(TimedFrame {
                    send_time_s: end_index as f64 / rate,
                    frame: Frame::Ppg {
                        channel: ch as u8,
                        seq: seq as u32,
                        samples: block.iter().map(|&v| v as f32).collect(),
                    },
                });
            }
        }
        // Accelerometer blocks.
        if let Some(acc) = &rec.accel {
            for (axis, data) in acc.axes.iter().enumerate() {
                for (seq, block) in data.chunks(self.chunk).enumerate() {
                    let end_index = seq * self.chunk + block.len();
                    frames.push(TimedFrame {
                        send_time_s: end_index as f64 / acc.sample_rate,
                        frame: Frame::Accel {
                            axis: axis as u8,
                            seq: seq as u32,
                            samples: block.iter().map(|&v| v as f32).collect(),
                        },
                    });
                }
            }
        }
        // Key events at touch time, stamped on the phone clock.
        let digits = rec.pin_entered.digits();
        for (i, &t) in rec.true_key_times.iter().enumerate() {
            let t_true = t as f64 / rate;
            frames.push(TimedFrame {
                send_time_s: t_true,
                frame: Frame::Key {
                    index: i as u8,
                    digit: digits[i],
                    t_phone_us: (self.phone_clock.local(t_true) * 1e6).max(0.0) as u64,
                },
            });
        }
        // Session end (after the last sample).
        let t_end = rec.num_samples() as f64 / rate + 0.01;
        frames.push(TimedFrame {
            send_time_s: t_end,
            frame: Frame::SessionEnd {
                true_key_times: rec.true_key_times.iter().map(|&t| t as u32).collect(),
                watch_hand: rec.watch_hand.clone(),
                one_handed: rec.hand_mode == HandMode::OneHanded,
            },
        });
        frames.sort_by(|a, b| {
            a.send_time_s
                .partial_cmp(&b.send_time_s)
                .expect("finite times")
        });
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2auth_core::types::{ChannelInfo, Pin, Placement, UserId, Wavelength};

    fn rec() -> Recording {
        Recording {
            user: UserId(2),
            sample_rate: 100.0,
            ppg: vec![vec![0.25; 230]; 2],
            channels: vec![
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Radial
                };
                2
            ],
            accel: None,
            pin_entered: Pin::new("1628").unwrap(),
            reported_key_times: vec![30, 80, 130, 180],
            true_key_times: vec![28, 82, 131, 178],
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn packet_stream_structure() {
        let dev = WearableDevice::new(VirtualClock::ideal());
        let frames = dev.packetize(&rec());
        assert!(matches!(
            frames.first().unwrap().frame,
            Frame::SessionStart { .. }
        ));
        assert!(matches!(
            frames.last().unwrap().frame,
            Frame::SessionEnd { .. }
        ));
        let ppg_count = frames
            .iter()
            .filter(|f| matches!(f.frame, Frame::Ppg { .. }))
            .count();
        // 230 samples / 10-chunk = 23 blocks per channel, 2 channels.
        assert_eq!(ppg_count, 46);
        let keys = frames
            .iter()
            .filter(|f| matches!(f.frame, Frame::Key { .. }))
            .count();
        assert_eq!(keys, 4);
    }

    #[test]
    fn send_times_monotone() {
        let dev = WearableDevice::new(VirtualClock::ideal());
        let frames = dev.packetize(&rec());
        for w in frames.windows(2) {
            assert!(w[0].send_time_s <= w[1].send_time_s);
        }
    }

    #[test]
    fn phone_clock_offsets_key_timestamps() {
        let dev = WearableDevice::new(VirtualClock::new(5.0, 0.0));
        let frames = dev.packetize(&rec());
        let key_ts: Vec<u64> = frames
            .iter()
            .filter_map(|f| match f.frame {
                Frame::Key { t_phone_us, .. } => Some(t_phone_us),
                _ => None,
            })
            .collect();
        // First touch at 0.28 s true -> 5.28 s phone.
        assert!((key_ts[0] as f64 / 1e6 - 5.28).abs() < 1e-6);
    }
}
