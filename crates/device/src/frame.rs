//! Wire format of the acquisition link.
//!
//! Every packet is framed as:
//!
//! ```text
//! +------+------+-------------+---------------+-----------+
//! | 0xA5 | kind | len (u16 BE)| payload (len) | crc32 (BE)|
//! +------+------+-------------+---------------+-----------+
//! ```
//!
//! The CRC covers kind, length and payload. Numeric fields are
//! big-endian; samples travel as `f32`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use p2auth_core::types::{ChannelInfo, Placement, Wavelength};
use std::fmt;

/// Frame sync byte.
pub const MAGIC: u8 = 0xA5;

/// Maximum payload size (bounds allocation on decode).
pub const MAX_PAYLOAD: usize = 16 * 1024;

/// A packet of the acquisition protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session metadata, sent first.
    SessionStart {
        /// Subject identity (evaluation bookkeeping).
        user: u32,
        /// PPG sampling rate (Hz).
        sample_rate: f32,
        /// Channel descriptors.
        channels: Vec<ChannelInfo>,
        /// Accelerometer rate (Hz); 0 when absent.
        accel_rate: f32,
    },
    /// A block of PPG samples from one channel.
    Ppg {
        /// Channel index.
        channel: u8,
        /// Sequence number of this block within the channel.
        seq: u32,
        /// Samples.
        samples: Vec<f32>,
    },
    /// A block of accelerometer samples for one axis.
    Accel {
        /// Axis index (0 = x, 1 = y, 2 = z).
        axis: u8,
        /// Sequence number of this block within the axis.
        seq: u32,
        /// Samples.
        samples: Vec<f32>,
    },
    /// A keystroke event from the phone.
    Key {
        /// Keystroke ordinal within the entry.
        index: u8,
        /// Digit typed.
        digit: u8,
        /// Phone-clock timestamp (µs).
        t_phone_us: u64,
    },
    /// End of session, carrying the simulation ground truth the
    /// evaluation needs (a real deployment would omit this block).
    SessionEnd {
        /// Ground-truth keystroke sample indices.
        true_key_times: Vec<u32>,
        /// Which keystrokes the watch hand performed.
        watch_hand: Vec<bool>,
        /// Whether the entry was one-handed.
        one_handed: bool,
    },
}

/// Error decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes for a complete frame.
    Truncated,
    /// The first byte was not [`MAGIC`].
    BadMagic {
        /// The byte found.
        found: u8,
    },
    /// Unknown frame kind.
    UnknownKind {
        /// The kind byte found.
        kind: u8,
    },
    /// CRC mismatch.
    BadCrc,
    /// Payload malformed for its kind.
    BadPayload {
        /// Human-readable description.
        detail: String,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// Declared length.
        len: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic { found } => write!(f, "bad magic byte {found:#04x}"),
            FrameError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            FrameError::BadCrc => write!(f, "crc mismatch"),
            FrameError::BadPayload { detail } => write!(f, "bad payload: {detail}"),
            FrameError::Oversized { len } => write!(f, "payload length {len} exceeds maximum"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// Whether the decoder merely needs more bytes (`true`: the buffer
    /// ends inside what may still become a valid frame) or the stream
    /// is damaged at the current position and the reader must
    /// resynchronize by skipping ahead (`false`). Every [`FrameError`]
    /// is recoverable one way or the other — decoding never panics and
    /// never leaves the reader without a next step.
    pub fn needs_more_data(&self) -> bool {
        matches!(self, FrameError::Truncated)
    }
}

/// Distance to skip so that the next decode attempt starts at the next
/// candidate frame boundary: the index of the first [`MAGIC`] byte at
/// offset ≥ 1, or `buf.len()` when none remains (discard everything and
/// wait for fresh bytes). Returns 0 only for an empty buffer.
///
/// CRC protection makes a false boundary inside garbage overwhelmingly
/// likely to fail its own decode, after which the reader skips here
/// again — so repeated `decode` / `resync_offset` always reaches the
/// next genuine frame.
pub fn resync_offset(buf: &[u8]) -> usize {
    buf.iter()
        .skip(1)
        .position(|&b| b == MAGIC)
        .map_or(buf.len(), |i| i + 1)
}

const KIND_START: u8 = 1;
const KIND_PPG: u8 = 2;
const KIND_ACCEL: u8 = 3;
const KIND_KEY: u8 = 4;
const KIND_END: u8 = 5;

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::SessionStart { .. } => KIND_START,
            Frame::Ppg { .. } => KIND_PPG,
            Frame::Accel { .. } => KIND_ACCEL,
            Frame::Key { .. } => KIND_KEY,
            Frame::SessionEnd { .. } => KIND_END,
        }
    }

    /// Stable machine-readable name of the frame kind, used in
    /// telemetry events and logs.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::SessionStart { .. } => "session_start",
            Frame::Ppg { .. } => "ppg",
            Frame::Accel { .. } => "accel",
            Frame::Key { .. } => "key",
            Frame::SessionEnd { .. } => "session_end",
        }
    }

    /// Encodes the frame to bytes.
    ///
    /// # Panics
    ///
    /// Panics if the payload would exceed [`MAX_PAYLOAD`] (the device
    /// chunks sample blocks well below it).
    pub fn encode(&self) -> Bytes {
        let payload = self.encode_payload();
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload too large: {}",
            payload.len()
        );
        let mut out = BytesMut::with_capacity(payload.len() + 8);
        out.put_u8(MAGIC);
        out.put_u8(self.kind());
        out.put_u16(payload.len() as u16);
        out.extend_from_slice(&payload);
        let crc = crc32(&out[1..]);
        out.put_u32(crc);
        out.freeze()
    }

    fn encode_payload(&self) -> BytesMut {
        let mut p = BytesMut::new();
        match self {
            Frame::SessionStart {
                user,
                sample_rate,
                channels,
                accel_rate,
            } => {
                p.put_u32(*user);
                p.put_f32(*sample_rate);
                p.put_f32(*accel_rate);
                p.put_u8(channels.len() as u8);
                for c in channels {
                    p.put_u8(wavelength_code(c.wavelength));
                    p.put_u8(placement_code(c.placement));
                }
            }
            Frame::Ppg {
                channel,
                seq,
                samples,
            } => {
                p.put_u8(*channel);
                p.put_u32(*seq);
                p.put_u16(samples.len() as u16);
                for s in samples {
                    p.put_f32(*s);
                }
            }
            Frame::Accel { axis, seq, samples } => {
                p.put_u8(*axis);
                p.put_u32(*seq);
                p.put_u16(samples.len() as u16);
                for s in samples {
                    p.put_f32(*s);
                }
            }
            Frame::Key {
                index,
                digit,
                t_phone_us,
            } => {
                p.put_u8(*index);
                p.put_u8(*digit);
                p.put_u64(*t_phone_us);
            }
            Frame::SessionEnd {
                true_key_times,
                watch_hand,
                one_handed,
            } => {
                p.put_u8(true_key_times.len() as u8);
                for t in true_key_times {
                    p.put_u32(*t);
                }
                p.put_u8(watch_hand.len() as u8);
                for w in watch_hand {
                    p.put_u8(u8::from(*w));
                }
                p.put_u8(u8::from(*one_handed));
            }
        }
        p
    }

    /// Decodes one frame from the front of `buf`, returning the frame
    /// and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] on truncation, bad magic/kind/CRC or a
    /// malformed payload.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < 8 {
            return Err(FrameError::Truncated);
        }
        if buf[0] != MAGIC {
            return Err(FrameError::BadMagic { found: buf[0] });
        }
        let kind = buf[1];
        let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized { len });
        }
        let total = 4 + len + 4;
        if buf.len() < total {
            return Err(FrameError::Truncated);
        }
        let crc_stored = u32::from_be_bytes([
            buf[total - 4],
            buf[total - 3],
            buf[total - 2],
            buf[total - 1],
        ]);
        if crc32(&buf[1..total - 4]) != crc_stored {
            return Err(FrameError::BadCrc);
        }
        let mut p = &buf[4..4 + len];
        let frame = Self::decode_payload(kind, &mut p)?;
        if !p.is_empty() {
            return Err(FrameError::BadPayload {
                detail: format!("{} trailing bytes", p.len()),
            });
        }
        Ok((frame, total))
    }

    fn decode_payload(kind: u8, p: &mut &[u8]) -> Result<Frame, FrameError> {
        let need = |p: &&[u8], n: usize| -> Result<(), FrameError> {
            if p.len() < n {
                Err(FrameError::BadPayload {
                    detail: format!("need {n} bytes, have {}", p.len()),
                })
            } else {
                Ok(())
            }
        };
        match kind {
            KIND_START => {
                need(p, 13)?;
                let user = p.get_u32();
                let sample_rate = p.get_f32();
                let accel_rate = p.get_f32();
                let n = p.get_u8() as usize;
                need(p, 2 * n)?;
                let mut channels = Vec::with_capacity(n);
                for _ in 0..n {
                    let w = wavelength_from(p.get_u8())?;
                    let pl = placement_from(p.get_u8())?;
                    channels.push(ChannelInfo {
                        wavelength: w,
                        placement: pl,
                    });
                }
                Ok(Frame::SessionStart {
                    user,
                    sample_rate,
                    channels,
                    accel_rate,
                })
            }
            KIND_PPG | KIND_ACCEL => {
                need(p, 7)?;
                let idx = p.get_u8();
                let seq = p.get_u32();
                let n = p.get_u16() as usize;
                need(p, 4 * n)?;
                let samples = (0..n).map(|_| p.get_f32()).collect();
                if kind == KIND_PPG {
                    Ok(Frame::Ppg {
                        channel: idx,
                        seq,
                        samples,
                    })
                } else {
                    Ok(Frame::Accel {
                        axis: idx,
                        seq,
                        samples,
                    })
                }
            }
            KIND_KEY => {
                need(p, 10)?;
                let index = p.get_u8();
                let digit = p.get_u8();
                if digit > 9 {
                    return Err(FrameError::BadPayload {
                        detail: format!("digit {digit}"),
                    });
                }
                let t_phone_us = p.get_u64();
                Ok(Frame::Key {
                    index,
                    digit,
                    t_phone_us,
                })
            }
            KIND_END => {
                need(p, 1)?;
                let nt = p.get_u8() as usize;
                need(p, 4 * nt + 1)?;
                let true_key_times = (0..nt).map(|_| p.get_u32()).collect();
                let nw = p.get_u8() as usize;
                need(p, nw + 1)?;
                let watch_hand = (0..nw).map(|_| p.get_u8() != 0).collect();
                let one_handed = p.get_u8() != 0;
                Ok(Frame::SessionEnd {
                    true_key_times,
                    watch_hand,
                    one_handed,
                })
            }
            other => Err(FrameError::UnknownKind { kind: other }),
        }
    }
}

fn wavelength_code(w: Wavelength) -> u8 {
    match w {
        Wavelength::Infrared => 0,
        Wavelength::Red => 1,
        Wavelength::Green => 2,
    }
}

fn wavelength_from(b: u8) -> Result<Wavelength, FrameError> {
    match b {
        0 => Ok(Wavelength::Infrared),
        1 => Ok(Wavelength::Red),
        2 => Ok(Wavelength::Green),
        _ => Err(FrameError::BadPayload {
            detail: format!("wavelength code {b}"),
        }),
    }
}

fn placement_code(p: Placement) -> u8 {
    match p {
        Placement::Radial => 0,
        Placement::Ulnar => 1,
        Placement::Dorsal => 2,
    }
}

fn placement_from(b: u8) -> Result<Placement, FrameError> {
    match b {
        0 => Ok(Placement::Radial),
        1 => Ok(Placement::Ulnar),
        2 => Ok(Placement::Dorsal),
        _ => Err(FrameError::BadPayload {
            detail: format!("placement code {b}"),
        }),
    }
}

/// CRC-32 (IEEE 802.3, reflected), computed bitwise — packets are small.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffff_u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::SessionStart {
                user: 3,
                sample_rate: 100.0,
                channels: vec![
                    ChannelInfo {
                        wavelength: Wavelength::Infrared,
                        placement: Placement::Radial,
                    },
                    ChannelInfo {
                        wavelength: Wavelength::Red,
                        placement: Placement::Ulnar,
                    },
                ],
                accel_rate: 75.0,
            },
            Frame::Ppg {
                channel: 1,
                seq: 42,
                samples: vec![0.5, -1.25, 3.75],
            },
            Frame::Accel {
                axis: 2,
                seq: 7,
                samples: vec![9.81, 9.79],
            },
            Frame::Key {
                index: 0,
                digit: 6,
                t_phone_us: 1_234_567,
            },
            Frame::SessionEnd {
                true_key_times: vec![120, 230, 340, 450],
                watch_hand: vec![true, false, true, true],
                one_handed: false,
            },
        ]
    }

    #[test]
    fn round_trip_all_kinds() {
        for f in sample_frames() {
            let bytes = f.encode();
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(decoded, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn concatenated_frames_decode_in_sequence() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            buf.extend_from_slice(&f.encode());
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < buf.len() {
            let (f, used) = Frame::decode(&buf[offset..]).unwrap();
            decoded.push(f);
            offset += used;
        }
        assert_eq!(decoded, frames);
    }

    #[test]
    fn corruption_detected() {
        let f = Frame::Key {
            index: 1,
            digit: 2,
            t_phone_us: 99,
        };
        let mut bytes = f.encode().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadCrc) | Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let f = Frame::Key {
            index: 1,
            digit: 2,
            t_phone_us: 99,
        };
        let mut bytes = f.encode().to_vec();
        bytes[0] = 0x00;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadMagic { found: 0 })
        ));
    }

    #[test]
    fn truncation_detected() {
        let f = Frame::Ppg {
            channel: 0,
            seq: 0,
            samples: vec![1.0; 8],
        };
        let bytes = f.encode();
        for cut in [0, 3, bytes.len() - 1] {
            assert_eq!(
                Frame::decode(&bytes[..cut]).unwrap_err(),
                FrameError::Truncated
            );
        }
    }

    #[test]
    fn invalid_digit_rejected() {
        // Hand-craft a Key frame with digit 11.
        let f = Frame::Key {
            index: 0,
            digit: 9,
            t_phone_us: 5,
        };
        let mut bytes = f.encode().to_vec();
        bytes[5] = 11; // digit byte within payload
                       // Recompute CRC so only the payload check fires.
        let len = bytes.len();
        let crc = crc32(&bytes[1..len - 4]);
        bytes[len - 4..].copy_from_slice(&crc.to_be_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadPayload { .. })
        ));
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn error_recoverability_classification() {
        assert!(FrameError::Truncated.needs_more_data());
        assert!(!FrameError::BadMagic { found: 0 }.needs_more_data());
        assert!(!FrameError::BadCrc.needs_more_data());
        assert!(!FrameError::Oversized { len: 70_000 }.needs_more_data());
    }

    #[test]
    fn resync_skips_to_next_magic() {
        assert_eq!(resync_offset(&[]), 0);
        assert_eq!(resync_offset(&[0x00, 0x01, MAGIC, 0x02]), 2);
        // The magic at offset 0 is the position being abandoned; only
        // later occurrences count.
        assert_eq!(resync_offset(&[MAGIC, 0x01, MAGIC]), 2);
        assert_eq!(resync_offset(&[0x00, 0x01, 0x02]), 3);
    }

    #[test]
    fn garbage_prefix_recovered_by_resync() {
        let frame = Frame::Key {
            index: 2,
            digit: 7,
            t_phone_us: 42,
        };
        let mut buf = vec![0x13, MAGIC, 0x00, 0xff, 0x7a];
        buf.extend_from_slice(&frame.encode());
        let mut offset = 0;
        let mut decoded = None;
        while offset < buf.len() {
            match Frame::decode(&buf[offset..]) {
                Ok((f, _)) => {
                    decoded = Some(f);
                    break;
                }
                Err(e) => {
                    assert!(!e.needs_more_data() || offset > 0, "whole buffer present");
                    let skip = resync_offset(&buf[offset..]);
                    assert!(skip >= 1);
                    offset += skip;
                }
            }
        }
        assert_eq!(decoded, Some(frame));
    }
}
