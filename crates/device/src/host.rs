//! The host (PC) side: reassembling the packet stream into a
//! [`Recording`].
//!
//! The host cannot compare the phone's key-event timestamps to the PPG
//! stream directly (unknown clock offset), so it does what the
//! prototype does: it pins each key event to **however many PPG samples
//! have arrived when the event arrives**. The resulting
//! `reported_key_times` carry the full link-induced error — buffering,
//! base latency and jitter — which is precisely what the pipeline's
//! fine-grained calibration module (paper §IV-B 1.2) exists to correct.

use crate::device::{TimedFrame, WearableDevice};
use crate::frame::{Frame, FrameError};
use crate::link::Link;
use p2auth_core::types::{AccelTrack, ChannelInfo, HandMode, Pin, Recording, UserId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Incrementally reassembles one acquisition session.
#[derive(Debug, Default)]
pub struct HostAssembler {
    user: Option<u32>,
    sample_rate: Option<f64>,
    accel_rate: Option<f64>,
    channels: Vec<ChannelInfo>,
    ppg_blocks: BTreeMap<(u8, u32), Vec<f64>>,
    accel_blocks: BTreeMap<(u8, u32), Vec<f64>>,
    keys: Vec<KeyArrival>,
    end: Option<(Vec<u32>, Vec<bool>, bool)>,
}

#[derive(Debug, Clone)]
struct KeyArrival {
    index: u8,
    digit: u8,
    samples_seen: usize,
}

/// Link-quality summary of one assembled session: how much of the
/// expected PPG stream actually arrived. `expected_blocks` is estimated
/// from the per-channel sequence high-water mark (the same estimate
/// [`HostAssembler::coverage`] uses), so tail loss that truncates the
/// high-water mark itself is invisible here too.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Fraction of expected PPG blocks received (0.0–1.0).
    pub coverage: f64,
    /// PPG blocks expected from the sequence high-water mark.
    pub expected_blocks: usize,
    /// PPG blocks actually received.
    pub received_blocks: usize,
    /// Missing blocks that had to be gap-filled.
    pub gap_blocks: usize,
}

impl std::fmt::Display for LinkQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coverage {:.3} ({}/{} blocks, {} gaps)",
            self.coverage, self.received_blocks, self.expected_blocks, self.gap_blocks
        )
    }
}

/// Error assembling a session.
#[derive(Debug, Clone, PartialEq)]
pub enum AssembleError {
    /// A frame failed to decode.
    Frame(FrameError),
    /// The stream ended without the frames needed for a recording.
    Incomplete {
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::Frame(e) => write!(f, "frame error: {e}"),
            AssembleError::Incomplete { detail } => write!(f, "incomplete session: {detail}"),
        }
    }
}

impl std::error::Error for AssembleError {}

impl From<FrameError> for AssembleError {
    fn from(e: FrameError) -> Self {
        AssembleError::Frame(e)
    }
}

impl HostAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one encoded frame (in arrival order). Returns the finished
    /// recording when the `SessionEnd` frame arrives.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError`] on decode failures or if the session is
    /// structurally incomplete at `SessionEnd`.
    pub fn feed_bytes(&mut self, bytes: &[u8]) -> Result<Option<Recording>, AssembleError> {
        let (frame, _) = Frame::decode(bytes)?;
        self.feed(frame)
    }

    /// Feeds one decoded frame (in arrival order).
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError::Incomplete`] if `SessionEnd` arrives
    /// before the session can be assembled.
    pub fn feed(&mut self, frame: Frame) -> Result<Option<Recording>, AssembleError> {
        p2auth_obs::counter!("device.host.frames").incr();
        match &frame {
            Frame::Ppg { channel, seq, .. } => {
                p2auth_obs::event!(
                    "device.host",
                    "frame",
                    kind = "ppg",
                    ch = *channel,
                    seq = *seq
                );
            }
            Frame::Key { index, digit, .. } => {
                p2auth_obs::event!(
                    "device.host",
                    "frame",
                    kind = "key",
                    index = *index,
                    digit = *digit,
                );
            }
            other => {
                p2auth_obs::event!("device.host", "frame", kind = other.kind_name());
            }
        }
        match frame {
            Frame::SessionStart {
                user,
                sample_rate,
                channels,
                accel_rate,
            } => {
                self.user = Some(user);
                self.sample_rate = Some(sample_rate as f64);
                self.accel_rate = if accel_rate > 0.0 {
                    Some(accel_rate as f64)
                } else {
                    None
                };
                self.channels = channels;
                Ok(None)
            }
            Frame::Ppg {
                channel,
                seq,
                samples,
            } => {
                self.ppg_blocks
                    .insert((channel, seq), samples.iter().map(|&v| v as f64).collect());
                Ok(None)
            }
            Frame::Accel { axis, seq, samples } => {
                self.accel_blocks
                    .insert((axis, seq), samples.iter().map(|&v| v as f64).collect());
                Ok(None)
            }
            Frame::Key { index, digit, .. } => {
                // Pin the event to the PPG samples received so far on
                // channel 0 — the host's only way to place it on the
                // sample axis without a synchronized clock.
                let samples_seen: usize = self
                    .ppg_blocks
                    .iter()
                    .filter(|((ch, _), _)| *ch == 0)
                    .map(|(_, b)| b.len())
                    .sum();
                self.keys.push(KeyArrival {
                    index,
                    digit,
                    samples_seen,
                });
                Ok(None)
            }
            Frame::SessionEnd {
                true_key_times,
                watch_hand,
                one_handed,
            } => {
                self.end = Some((true_key_times, watch_hand, one_handed));
                self.assemble().map(Some)
            }
        }
    }

    /// Fraction of expected PPG blocks received so far, estimated from
    /// the highest block sequence number observed on any channel
    /// (channels carry equal-length signals, so the global high-water
    /// mark is the best available estimate of blocks per channel).
    /// 1.0 on a complete stream, decreasing as blocks go missing; 0.0
    /// before any PPG block has arrived. Tail loss that truncates the
    /// high-water mark itself is invisible here — the retransmission
    /// layer closes that hole with its end-of-stream marker.
    pub fn coverage(&self) -> f64 {
        self.quality().coverage
    }

    /// The full link-quality summary behind
    /// [`HostAssembler::coverage`]: expected/received/missing PPG block
    /// counts alongside the coverage fraction.
    pub fn quality(&self) -> LinkQuality {
        let Some(max_seq) = self.ppg_blocks.keys().map(|&(_, s)| s).max() else {
            return LinkQuality {
                coverage: 0.0,
                expected_blocks: 0,
                received_blocks: 0,
                gap_blocks: 0,
            };
        };
        let channels = self.channels.len().max(1);
        let expected = (max_seq as usize + 1) * channels;
        let received = self.ppg_blocks.len();
        LinkQuality {
            coverage: (received as f64 / expected as f64).min(1.0),
            expected_blocks: expected,
            received_blocks: received,
            gap_blocks: expected.saturating_sub(received),
        }
    }

    /// Fault-tolerant variant of [`HostAssembler::feed`]: `SessionEnd`
    /// closes the session with [`HostAssembler::assemble_degraded`]
    /// (gap filling + quality reporting) instead of strict assembly.
    /// All other frames are absorbed exactly as
    /// [`HostAssembler::feed`] absorbs them and return `None`.
    pub fn feed_lossy(
        &mut self,
        frame: Frame,
    ) -> Option<Result<(Recording, LinkQuality), AssembleError>> {
        if let Frame::SessionEnd {
            true_key_times,
            watch_hand,
            one_handed,
        } = frame
        {
            p2auth_obs::counter!("device.host.frames").incr();
            p2auth_obs::event!("device.host", "frame", kind = "session_end");
            self.end = Some((true_key_times, watch_hand, one_handed));
            Some(self.assemble_degraded())
        } else {
            let fed = self.feed(frame);
            debug_assert!(fed.is_ok(), "only SessionEnd can fail mid-stream");
            None
        }
    }

    /// Best-effort assembly for fault-degraded sessions. Missing PPG
    /// blocks are filled by holding the last received sample (a flat,
    /// artifact-free stretch), channels are padded to a common length,
    /// and key/ground-truth indices are clamped into range; the accel
    /// track is concatenated from whatever arrived. On a complete
    /// session this produces exactly what strict assembly produces.
    /// Returns the recording together with the [`LinkQuality`]
    /// (coverage and gap counts) that went into it.
    ///
    /// # Errors
    ///
    /// Returns [`AssembleError::Incomplete`] when no amount of gap
    /// filling yields a valid recording: missing `SessionStart`, no
    /// PPG data at all, lost key events (the typed PIN cannot be
    /// reconstructed), or no `SessionEnd` recorded.
    pub fn assemble_degraded(&mut self) -> Result<(Recording, LinkQuality), AssembleError> {
        let _span = p2auth_obs::span!("device.host.assemble");
        let quality = self.quality();
        p2auth_obs::gauge!("device.host.coverage").set(quality.coverage);
        if quality.gap_blocks > 0 {
            p2auth_obs::counter!("device.host.gap_blocks").add(quality.gap_blocks as u64);
            p2auth_obs::event!(
                "device.host",
                "gap_fill",
                gaps = quality.gap_blocks,
                expected = quality.expected_blocks,
                coverage = quality.coverage,
            );
        }
        let user = self.user.ok_or_else(|| AssembleError::Incomplete {
            detail: "missing SessionStart".into(),
        })?;
        let rate = self.sample_rate.expect("set with user");
        if self.channels.is_empty() {
            return Err(AssembleError::Incomplete {
                detail: "no channels declared".into(),
            });
        }
        let num_channels = self.channels.len();
        if let Some(&(ch, _)) = self
            .ppg_blocks
            .keys()
            .find(|&&(ch, _)| ch as usize >= num_channels)
        {
            return Err(AssembleError::Incomplete {
                detail: format!("channel {ch} undeclared"),
            });
        }
        // Infer the device's chunking from the largest block seen (all
        // blocks but a channel's last are full-sized).
        let chunk = self.ppg_blocks.values().map(Vec::len).max().unwrap_or(0);
        if chunk == 0 {
            return Err(AssembleError::Incomplete {
                detail: "no PPG blocks received".into(),
            });
        }
        let max_seq = self
            .ppg_blocks
            .keys()
            .map(|&(_, s)| s)
            .max()
            .expect("non-empty block map");
        let mut ppg: Vec<Vec<f64>> = Vec::with_capacity(num_channels);
        for ch in 0..num_channels {
            let mut data: Vec<f64> = Vec::with_capacity((max_seq as usize + 1) * chunk);
            let mut hold = 0.0;
            for seq in 0..=max_seq {
                match self.ppg_blocks.get(&(ch as u8, seq)) {
                    Some(block) => {
                        data.extend_from_slice(block);
                        if let Some(&v) = block.last() {
                            hold = v;
                        }
                    }
                    None => data.resize(data.len() + chunk, hold),
                }
            }
            ppg.push(data);
        }
        let n = ppg.iter().map(Vec::len).max().expect("channels exist");
        for ch in &mut ppg {
            let hold = ch.last().copied().unwrap_or(0.0);
            ch.resize(n, hold);
        }
        let accel = self.accel_rate.map(|ar| {
            let mut axes = [Vec::new(), Vec::new(), Vec::new()];
            for ((axis, _seq), block) in &self.accel_blocks {
                if (*axis as usize) < 3 {
                    axes[*axis as usize].extend_from_slice(block);
                }
            }
            AccelTrack {
                sample_rate: ar,
                axes,
            }
        });
        self.keys.sort_by_key(|k| k.index);
        let digits: String = self
            .keys
            .iter()
            .map(|k| char::from(b'0' + k.digit))
            .collect();
        let pin = Pin::new(&digits).map_err(|e| AssembleError::Incomplete {
            detail: format!("bad PIN from key events: {e}"),
        })?;
        let reported_key_times: Vec<usize> = self
            .keys
            .iter()
            .map(|k| k.samples_seen.min(n - 1))
            .collect();
        let (true_times, watch_hand, one_handed) =
            self.end.clone().ok_or_else(|| AssembleError::Incomplete {
                detail: "no SessionEnd recorded".into(),
            })?;
        let rec = Recording {
            user: UserId(user),
            sample_rate: rate,
            ppg,
            channels: self.channels.clone(),
            accel,
            pin_entered: pin,
            reported_key_times,
            true_key_times: true_times
                .iter()
                .map(|&t| (t as usize).min(n - 1))
                .collect(),
            watch_hand,
            hand_mode: if one_handed {
                HandMode::OneHanded
            } else {
                HandMode::TwoHanded
            },
        };
        rec.validate()
            .map_err(|detail| AssembleError::Incomplete { detail })?;
        Ok((rec, quality))
    }

    fn assemble(&mut self) -> Result<Recording, AssembleError> {
        let _span = p2auth_obs::span!("device.host.assemble");
        let user = self.user.ok_or_else(|| AssembleError::Incomplete {
            detail: "missing SessionStart".into(),
        })?;
        let rate = self.sample_rate.expect("set with user");
        if self.channels.is_empty() {
            return Err(AssembleError::Incomplete {
                detail: "no channels declared".into(),
            });
        }
        // Concatenate per-channel blocks in sequence order.
        let num_channels = self.channels.len();
        let mut ppg: Vec<Vec<f64>> = vec![Vec::new(); num_channels];
        for ((ch, _seq), block) in &self.ppg_blocks {
            let ch = *ch as usize;
            if ch >= num_channels {
                return Err(AssembleError::Incomplete {
                    detail: format!("channel {ch} undeclared"),
                });
            }
            ppg[ch].extend_from_slice(block);
        }
        let n = ppg[0].len();
        if n == 0 || ppg.iter().any(|c| c.len() != n) {
            return Err(AssembleError::Incomplete {
                detail: "missing PPG blocks".into(),
            });
        }
        let accel = self.accel_rate.map(|ar| {
            let mut axes = [Vec::new(), Vec::new(), Vec::new()];
            for ((axis, _seq), block) in &self.accel_blocks {
                if (*axis as usize) < 3 {
                    axes[*axis as usize].extend_from_slice(block);
                }
            }
            AccelTrack {
                sample_rate: ar,
                axes,
            }
        });
        // Keys in entry order; reported time = samples seen at arrival.
        self.keys.sort_by_key(|k| k.index);
        let digits: String = self
            .keys
            .iter()
            .map(|k| char::from(b'0' + k.digit))
            .collect();
        let pin = Pin::new(&digits).map_err(|e| AssembleError::Incomplete {
            detail: format!("bad PIN from key events: {e}"),
        })?;
        let reported_key_times: Vec<usize> = self
            .keys
            .iter()
            .map(|k| k.samples_seen.min(n - 1))
            .collect();
        let (true_times, watch_hand, one_handed) =
            self.end.clone().expect("assemble called after SessionEnd");
        let rec = Recording {
            user: UserId(user),
            sample_rate: rate,
            ppg,
            channels: self.channels.clone(),
            accel,
            pin_entered: pin,
            reported_key_times,
            true_key_times: true_times.iter().map(|&t| t as usize).collect(),
            watch_hand,
            hand_mode: if one_handed {
                HandMode::OneHanded
            } else {
                HandMode::TwoHanded
            },
        };
        rec.validate()
            .map_err(|detail| AssembleError::Incomplete { detail })?;
        Ok(rec)
    }
}

/// Streams a recording through `device` and `link` (virtual time) and
/// reassembles it on the host. The key events travel over `key_link`,
/// which models the phone's separate wireless path.
///
/// # Errors
///
/// Returns [`AssembleError`] if reassembly fails (it cannot for
/// well-formed simulator recordings).
pub fn transmit(
    rec: &Recording,
    device: &WearableDevice,
    data_link: &mut Link,
    key_link: &mut Link,
) -> Result<Recording, AssembleError> {
    // Each transmit is one acquisition session: session time restarts
    // at zero, so the links' FIFO state must too.
    data_link.start_session();
    key_link.start_session();
    let frames = device.packetize(rec);
    let mut inbox: Vec<(f64, TimedFrame)> = frames
        .into_iter()
        .map(|tf| {
            let arrival = match tf.frame {
                Frame::Key { .. } => key_link.deliver(tf.send_time_s),
                _ => data_link.deliver(tf.send_time_s),
            };
            (arrival, tf)
        })
        .collect();
    inbox.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite arrivals"));
    let mut host = HostAssembler::new();
    let mut done = None;
    for (_, tf) in inbox {
        if let Some(rec) = host.feed(tf.frame)? {
            done = Some(rec);
        }
    }
    done.ok_or(AssembleError::Incomplete {
        detail: "no SessionEnd".into(),
    })
}

/// Threaded variant of [`transmit`]: the two sensor modules of the
/// prototype stream concurrently (channels 0–1 on one thread, the rest
/// plus accel on the other) into a shared assembler; key events travel
/// on the calling thread. Demonstrates that assembly tolerates
/// interleaved arrival from independent producers.
///
/// # Errors
///
/// Returns [`AssembleError`] if reassembly fails.
pub fn transmit_threaded(
    rec: &Recording,
    device: &WearableDevice,
) -> Result<Recording, AssembleError> {
    let frames = device.packetize(rec);
    let host = Arc::new(Mutex::new(HostAssembler::new()));
    let (mut module_a, mut rest): (Vec<TimedFrame>, Vec<TimedFrame>) =
        frames.into_iter().partition(|tf| match tf.frame {
            Frame::Ppg { channel, .. } => channel < 2,
            _ => false,
        });
    // Keys and session control must respect global order relative to
    // data for the sample-counting heuristic; feed SessionStart first,
    // then run the two module streams concurrently, then keys + end.
    let start_idx = rest
        .iter()
        .position(|tf| matches!(tf.frame, Frame::SessionStart { .. }))
        .expect("packetize always emits SessionStart");
    let start = rest.remove(start_idx);
    host.lock().feed(start.frame)?;
    let end_idx = rest
        .iter()
        .position(|tf| matches!(tf.frame, Frame::SessionEnd { .. }))
        .expect("packetize always emits SessionEnd");
    let end = rest.remove(end_idx);
    let (keys, module_b): (Vec<TimedFrame>, Vec<TimedFrame>) = rest
        .into_iter()
        .partition(|tf| matches!(tf.frame, Frame::Key { .. }));

    let err = crossbeam::thread::scope(|scope| {
        let h1 = Arc::clone(&host);
        let a = scope.spawn(move |_| -> Result<(), AssembleError> {
            for tf in module_a.drain(..) {
                h1.lock().feed(tf.frame)?;
            }
            Ok(())
        });
        let h2 = Arc::clone(&host);
        let mut module_b = module_b;
        let b = scope.spawn(move |_| -> Result<(), AssembleError> {
            for tf in module_b.drain(..) {
                h2.lock().feed(tf.frame)?;
            }
            Ok(())
        });
        let ra = a.join().expect("module A thread");
        let rb = b.join().expect("module B thread");
        ra.and(rb)
    })
    .expect("scope");
    err?;
    for tf in keys {
        host.lock().feed(tf.frame)?;
    }
    let out = host.lock().feed(end.frame)?;
    out.ok_or(AssembleError::Incomplete {
        detail: "no SessionEnd".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::link::LinkConfig;
    use p2auth_core::types::{Placement, Wavelength};

    fn rec() -> Recording {
        // A deterministic synthetic recording (no simulator dependency
        // at this layer).
        let n = 600;
        let mk = |phase: f64| -> Vec<f64> {
            (0..n).map(|i| ((i as f64) * 0.07 + phase).sin()).collect()
        };
        Recording {
            user: UserId(5),
            sample_rate: 100.0,
            ppg: vec![mk(0.0), mk(0.5), mk(1.0), mk(1.5)],
            channels: vec![
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Radial,
                },
                ChannelInfo {
                    wavelength: Wavelength::Red,
                    placement: Placement::Radial,
                },
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Ulnar,
                },
                ChannelInfo {
                    wavelength: Wavelength::Red,
                    placement: Placement::Ulnar,
                },
            ],
            accel: Some(AccelTrack {
                sample_rate: 75.0,
                axes: [vec![0.1; 450], vec![0.2; 450], vec![9.8; 450]],
            }),
            pin_entered: Pin::new("1628").unwrap(),
            reported_key_times: vec![120, 230, 340, 450],
            true_key_times: vec![118, 232, 338, 452],
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn round_trip_preserves_signal() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::new(2.0, 50.0));
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 99,
            ..LinkConfig::default()
        });
        let rebuilt = transmit(&original, &dev, &mut data, &mut keys).unwrap();
        assert_eq!(rebuilt.user, original.user);
        assert_eq!(rebuilt.pin_entered, original.pin_entered);
        assert_eq!(rebuilt.num_channels(), 4);
        assert_eq!(rebuilt.num_samples(), original.num_samples());
        // f32 transport: samples equal to float precision.
        for (a, b) in rebuilt.ppg[2].iter().zip(&original.ppg[2]) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(rebuilt.true_key_times, original.true_key_times);
        assert_eq!(rebuilt.hand_mode, HandMode::OneHanded);
        assert_eq!(rebuilt.validate(), Ok(()));
    }

    #[test]
    fn reported_times_carry_link_jitter() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::new(-3.0, -80.0));
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 7,
            ..LinkConfig::default()
        });
        let rebuilt = transmit(&original, &dev, &mut data, &mut keys).unwrap();
        // Reported times land near the true times, but not exactly —
        // this is the coarse-timestamp problem calibration solves.
        let mut total_err = 0_i64;
        for (r, t) in rebuilt
            .reported_key_times
            .iter()
            .zip(&rebuilt.true_key_times)
        {
            // Error budget: one 10-sample chunk of buffering plus the
            // delay gap between the data and key links (≤ ~10 samples).
            let err = (*r as i64 - *t as i64).abs();
            assert!(err <= 22, "reported {r} too far from true {t}");
            total_err += err;
        }
        assert!(total_err > 0, "link should perturb at least one timestamp");
    }

    #[test]
    fn links_can_be_reused_across_sessions() {
        // Regression: the FIFO high-water mark must reset per session,
        // otherwise session N+1's key events "arrive" before its data
        // and all reported times collapse to zero.
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::ideal());
        let mut data = Link::new(LinkConfig::default());
        let mut keys = Link::new(LinkConfig {
            seed: 5,
            ..LinkConfig::default()
        });
        for _ in 0..3 {
            let rebuilt = transmit(&original, &dev, &mut data, &mut keys).unwrap();
            for (r, t) in rebuilt
                .reported_key_times
                .iter()
                .zip(&rebuilt.true_key_times)
            {
                assert!(
                    (*r as i64 - *t as i64).abs() <= 22,
                    "reported {r} too far from true {t} on a reused link"
                );
            }
        }
    }

    #[test]
    fn threaded_transmission_matches_signal() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::ideal());
        let rebuilt = transmit_threaded(&original, &dev).unwrap();
        assert_eq!(rebuilt.num_samples(), original.num_samples());
        for ch in 0..4 {
            for (a, b) in rebuilt.ppg[ch].iter().zip(&original.ppg[ch]) {
                assert!((a - b).abs() < 1e-6);
            }
        }
        assert_eq!(rebuilt.validate(), Ok(()));
    }

    #[test]
    fn missing_session_start_is_error() {
        let mut host = HostAssembler::new();
        let r = host.feed(Frame::SessionEnd {
            true_key_times: vec![],
            watch_hand: vec![],
            one_handed: true,
        });
        assert!(matches!(r, Err(AssembleError::Incomplete { .. })));
    }

    #[test]
    fn feed_bytes_decodes() {
        let mut host = HostAssembler::new();
        let f = Frame::SessionStart {
            user: 1,
            sample_rate: 100.0,
            channels: vec![ChannelInfo {
                wavelength: Wavelength::Infrared,
                placement: Placement::Radial,
            }],
            accel_rate: 0.0,
        };
        assert!(host.feed_bytes(&f.encode()).unwrap().is_none());
        assert!(host.feed_bytes(&[0x00, 0x01]).is_err());
    }
}
