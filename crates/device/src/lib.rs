//! Virtual wearable acquisition link.
//!
//! The P²Auth prototype streams PPG data from two MAX30101 modules to a
//! PC over two paths (an EVK evaluation board and an STM32 + USB-TTL
//! bridge), while the smartphone reports keystroke timestamps over a
//! separate link with "dynamically changing communication delay" —
//! which is exactly why the pipeline needs fine-grained keystroke-time
//! calibration (paper §IV-B 1.2).
//!
//! This crate reproduces that distributed acquisition chain in
//! software:
//!
//! * [`frame`] — the wire format: framed, CRC-protected packets for
//!   session control, PPG blocks, accelerometer blocks and key events,
//! * [`clock`] — virtual clocks with offset and drift,
//! * [`link`] — a virtual-time link model with base latency, jitter and
//!   FIFO delivery,
//! * [`device`] — the wearable side: turns a simulated
//!   [`p2auth_sim::Recording`](p2auth_core::types::Recording) into a
//!   timestamped packet stream,
//! * [`host`] — the PC side: reassembles packets into a `Recording`
//!   whose *reported* keystroke times carry the real link-induced error
//!   (the key events are pinned to whatever PPG sample happened to
//!   arrive last),
//! * [`reliable`] — sequence numbers + NACK retransmission over a
//!   faulty channel ([`link::FaultyLink`]: drops, corruption,
//!   duplication, reordering, burst loss, clock drift — all seeded).
//!
//! The round trip `Recording → packets → link → Recording` is exercised
//! by the integration tests and the `streaming_acquisition` example;
//! the fault model and recovery protocol are documented in `DESIGN.md`
//! ("Link fault model & recovery").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth_host;
pub mod clock;
pub mod device;
pub mod frame;
pub mod host;
pub mod link;
pub mod reliable;
pub mod supervisor;

pub use auth_host::{decide_session, decide_session_arena, AuthenticatingHost, SessionOutcome};
pub use device::WearableDevice;
pub use frame::{resync_offset, Frame, FrameError};
pub use host::{HostAssembler, LinkQuality};
pub use link::{FaultConfig, FaultStats, FaultyLink, Link, LinkConfig};
pub use reliable::{transmit_reliable, Packet, ReliableConfig, TransferStats};
pub use supervisor::{
    run_supervised, run_supervised_observed, NoopObserver, SessionObserver, SessionSupervisor,
    SupervisedOutcome, SupervisorConfig, SupervisorEvent, SupervisorState,
};
