//! Virtual-time link model.
//!
//! Packets experience a base latency plus uniform jitter, with FIFO
//! delivery (a later send never arrives before an earlier one on the
//! same link, as on a TCP/serial stream). The paper's prototype has two
//! such paths — the EVK board and the STM32 + USB-TTL bridge — plus the
//! phone's wireless link for key events, each with its own delay
//! characteristics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay characteristics of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed propagation/processing latency (seconds).
    pub base_delay_s: f64,
    /// Maximum additional uniform jitter (seconds).
    pub jitter_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            base_delay_s: 0.015,
            jitter_s: 0.08,
            seed: 0xcab1e,
        }
    }
}

/// A FIFO link with random per-packet delay.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: StdRng,
    last_arrival: f64,
}

impl Link {
    /// Creates a link.
    pub fn new(config: LinkConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            last_arrival: f64::NEG_INFINITY,
        }
    }

    /// Returns the arrival time of a packet sent at `t_send` seconds.
    /// Arrivals are monotone (FIFO).
    ///
    /// # Panics
    ///
    /// Panics if `t_send` is not finite.
    pub fn deliver(&mut self, t_send: f64) -> f64 {
        assert!(t_send.is_finite(), "non-finite send time");
        let jitter = if self.config.jitter_s > 0.0 {
            self.rng.gen_range(0.0..self.config.jitter_s)
        } else {
            0.0
        };
        let arrival = (t_send + self.config.base_delay_s + jitter).max(self.last_arrival);
        self.last_arrival = arrival;
        arrival
    }

    /// The configuration of this link.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Starts a new acquisition session: send times restart from zero,
    /// so the FIFO high-water mark is cleared. The jitter RNG keeps its
    /// state, so successive sessions see different delays.
    pub fn start_session(&mut self) {
        self.last_arrival = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_within_bounds() {
        let mut l = Link::new(LinkConfig {
            base_delay_s: 0.01,
            jitter_s: 0.05,
            seed: 1,
        });
        for i in 0..100 {
            let t = i as f64 * 0.1;
            let a = l.deliver(t);
            assert!(a >= t + 0.01 && a <= t + 0.061, "arrival {a} for send {t}");
        }
    }

    #[test]
    fn fifo_ordering() {
        let mut l = Link::new(LinkConfig {
            base_delay_s: 0.0,
            jitter_s: 0.2,
            seed: 2,
        });
        let mut prev = f64::NEG_INFINITY;
        for i in 0..200 {
            // Sends in bursts: same nominal time.
            let a = l.deliver((i / 10) as f64 * 0.01);
            assert!(a >= prev, "arrival went backwards");
            prev = a;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Link::new(LinkConfig::default());
        let mut b = Link::new(LinkConfig::default());
        for i in 0..20 {
            assert_eq!(a.deliver(i as f64), b.deliver(i as f64));
        }
    }

    #[test]
    fn zero_jitter_is_pure_latency() {
        let mut l = Link::new(LinkConfig {
            base_delay_s: 0.03,
            jitter_s: 0.0,
            seed: 3,
        });
        assert!((l.deliver(1.0) - 1.03).abs() < 1e-12);
    }
}
