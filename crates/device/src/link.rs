//! Virtual-time link model.
//!
//! Packets experience a base latency plus uniform jitter, with FIFO
//! delivery (a later send never arrives before an earlier one on the
//! same link, as on a TCP/serial stream). The paper's prototype has two
//! such paths — the EVK board and the STM32 + USB-TTL bridge — plus the
//! phone's wireless link for key events, each with its own delay
//! characteristics.
//!
//! [`FaultyLink`] layers a seeded fault model on top of [`Link`]: frame
//! drops (independent and Gilbert–Elliott bursts), per-byte corruption,
//! duplication, reordering and slow receiver-clock drift. With the
//! all-zero [`FaultConfig::default`] it is byte- and time-identical to
//! the plain link, which is what lets the recovery layer be tested
//! against an unchanged perfect-channel baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delay characteristics of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Fixed propagation/processing latency (seconds).
    pub base_delay_s: f64,
    /// Maximum additional uniform jitter (seconds).
    pub jitter_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            base_delay_s: 0.015,
            jitter_s: 0.08,
            seed: 0xcab1e,
        }
    }
}

/// A FIFO link with random per-packet delay.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: StdRng,
    last_arrival: f64,
}

impl Link {
    /// Creates a link.
    pub fn new(config: LinkConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            last_arrival: f64::NEG_INFINITY,
        }
    }

    /// Returns the arrival time of a packet sent at `t_send` seconds.
    /// Arrivals are monotone (FIFO).
    ///
    /// # Panics
    ///
    /// Panics if `t_send` is not finite.
    pub fn deliver(&mut self, t_send: f64) -> f64 {
        assert!(t_send.is_finite(), "non-finite send time");
        let jitter = if self.config.jitter_s > 0.0 {
            self.rng.gen_range(0.0..self.config.jitter_s)
        } else {
            0.0
        };
        let arrival = (t_send + self.config.base_delay_s + jitter).max(self.last_arrival);
        self.last_arrival = arrival;
        arrival
    }

    /// The configuration of this link.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Starts a new acquisition session: send times restart from zero,
    /// so the FIFO high-water mark is cleared. The jitter RNG keeps its
    /// state, so successive sessions see different delays.
    pub fn start_session(&mut self) {
        self.last_arrival = f64::NEG_INFINITY;
    }
}

/// Fault-injection parameters layered on top of a [`Link`].
///
/// All probabilities are per-frame (per-byte for corruption). The fault
/// randomness comes from a dedicated RNG seeded with
/// [`FaultConfig::seed`] — independent of the link's jitter RNG — so a
/// given `(LinkConfig, FaultConfig)` pair replays the exact same fault
/// pattern for the same traffic. The all-zero default injects nothing:
/// a [`FaultyLink`] with `FaultConfig::default()` delivers every frame
/// byte-identically at the exact times the inner [`Link`] alone would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Independent per-frame loss probability.
    pub drop_rate: f64,
    /// Per-byte corruption probability (one random bit is flipped).
    pub corrupt_rate: f64,
    /// Per-frame duplication probability; the copy takes its own
    /// independent trip through the link.
    pub dup_rate: f64,
    /// Per-frame probability of the frame being held back past frames
    /// sent after it (reordering; deliberately breaks the FIFO
    /// property of the inner link).
    pub reorder_rate: f64,
    /// How long a reordered frame is held back (seconds).
    pub reorder_delay_s: f64,
    /// Per-frame probability of entering the burst-loss (bad) state of
    /// the Gilbert–Elliott model.
    pub burst_enter: f64,
    /// Per-frame probability of leaving the burst-loss state.
    pub burst_exit: f64,
    /// Additional loss probability while in the burst-loss state.
    pub burst_loss: f64,
    /// Slow receiver-clock drift in parts per million, scaling arrival
    /// timestamps — on top of the static offset modeled by
    /// [`crate::clock::VirtualClock`].
    pub drift_ppm: f64,
    /// Seed of the fault RNG.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            drop_rate: 0.0,
            corrupt_rate: 0.0,
            dup_rate: 0.0,
            reorder_rate: 0.0,
            reorder_delay_s: 0.25,
            burst_enter: 0.0,
            burst_exit: 0.3,
            burst_loss: 0.9,
            drift_ppm: 0.0,
            seed: 0xfa_0175,
        }
    }
}

impl FaultConfig {
    /// A channel that independently loses `rate` of its frames.
    pub fn lossy(rate: f64, seed: u64) -> Self {
        Self {
            drop_rate: rate,
            seed,
            ..Self::default()
        }
    }

    /// Whether any fault process is active.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.dup_rate > 0.0
            || self.reorder_rate > 0.0
            || self.burst_enter > 0.0
            || self.drift_ppm != 0.0
    }
}

/// Cumulative counters of what a [`FaultyLink`] did to its traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames offered to the link.
    pub frames_sent: usize,
    /// Frames dropped (independent or burst loss).
    pub frames_dropped: usize,
    /// Bytes that had a bit flipped.
    pub bytes_corrupted: usize,
    /// Frames delivered twice.
    pub frames_duplicated: usize,
    /// Frames held back past later traffic.
    pub frames_reordered: usize,
}

/// A [`Link`] wrapped in the seeded fault model of [`FaultConfig`].
///
/// The wrapper owns the delivery decision: [`FaultyLink::send`] takes
/// the frame bytes and returns zero or more `(arrival_time, bytes)`
/// deliveries — zero when the frame is lost, two when duplicated,
/// possibly corrupted copies otherwise.
#[derive(Debug, Clone)]
pub struct FaultyLink {
    link: Link,
    faults: FaultConfig,
    rng: StdRng,
    in_burst: bool,
    stats: FaultStats,
}

impl FaultyLink {
    /// Creates a faulty link from delay and fault characteristics.
    pub fn new(link: LinkConfig, faults: FaultConfig) -> Self {
        Self {
            link: Link::new(link),
            faults,
            rng: StdRng::seed_from_u64(faults.seed),
            in_burst: false,
            stats: FaultStats::default(),
        }
    }

    /// A fault-free wrapper: behaves exactly like `Link::new(link)`.
    pub fn perfect(link: LinkConfig) -> Self {
        Self::new(link, FaultConfig::default())
    }

    /// A reverse-direction companion (for NACK/acknowledgement paths):
    /// same delay and fault characteristics, independent RNG streams.
    pub fn reverse(&self) -> Self {
        let mut link = *self.link.config();
        link.seed ^= 0x5eed_5eed;
        let mut faults = self.faults;
        faults.seed ^= 0x5eed_5eed;
        Self::new(link, faults)
    }

    /// Sends `bytes` at `t_send`, returning each delivery as
    /// `(arrival_time, bytes)`. Loss yields an empty vector;
    /// duplication yields two entries.
    ///
    /// # Panics
    ///
    /// Panics if `t_send` is not finite.
    pub fn send(&mut self, t_send: f64, bytes: &[u8]) -> Vec<(f64, Vec<u8>)> {
        self.stats.frames_sent += 1;
        p2auth_obs::counter!("device.link.frames_sent").incr();
        // Gilbert–Elliott state transition, once per offered frame.
        if self.faults.burst_enter > 0.0 {
            let p = if self.in_burst {
                self.faults.burst_exit
            } else {
                self.faults.burst_enter
            };
            if self.rng.gen::<f64>() < p {
                self.in_burst = !self.in_burst;
            }
        }
        let mut loss = self.faults.drop_rate;
        if self.in_burst {
            loss += self.faults.burst_loss;
        }
        if loss > 0.0 && self.rng.gen::<f64>() < loss {
            self.stats.frames_dropped += 1;
            p2auth_obs::counter!("device.link.frames_dropped").incr();
            p2auth_obs::event!("device.link", "drop", burst = self.in_burst);
            return Vec::new();
        }
        let copies = if self.faults.dup_rate > 0.0 && self.rng.gen::<f64>() < self.faults.dup_rate {
            self.stats.frames_duplicated += 1;
            p2auth_obs::counter!("device.link.frames_duplicated").incr();
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut arrival = self.link.deliver(t_send);
            if self.faults.reorder_rate > 0.0 && self.rng.gen::<f64>() < self.faults.reorder_rate {
                // Held back *after* the FIFO stage, so later frames can
                // overtake this one.
                self.stats.frames_reordered += 1;
                p2auth_obs::counter!("device.link.frames_reordered").incr();
                arrival += self.faults.reorder_delay_s;
            }
            if self.faults.drift_ppm != 0.0 {
                arrival *= 1.0 + self.faults.drift_ppm * 1e-6;
            }
            let mut payload = bytes.to_vec();
            if self.faults.corrupt_rate > 0.0 {
                let before = self.stats.bytes_corrupted;
                for b in &mut payload {
                    if self.rng.gen::<f64>() < self.faults.corrupt_rate {
                        *b ^= 1 << self.rng.gen_range(0_u8..8);
                        self.stats.bytes_corrupted += 1;
                    }
                }
                let flipped = self.stats.bytes_corrupted - before;
                if flipped > 0 {
                    p2auth_obs::counter!("device.link.bytes_corrupted").add(flipped as u64);
                }
            }
            out.push((arrival, payload));
        }
        out
    }

    /// Starts a new acquisition session: clears the FIFO high-water
    /// mark and the burst state. Both RNGs keep their state, so
    /// successive sessions see different delays and fault patterns.
    pub fn start_session(&mut self) {
        self.link.start_session();
        self.in_burst = false;
    }

    /// The delay configuration of the inner link.
    pub fn link_config(&self) -> &LinkConfig {
        self.link.config()
    }

    /// The fault configuration.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.faults
    }

    /// Cumulative fault counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_within_bounds() {
        let mut l = Link::new(LinkConfig {
            base_delay_s: 0.01,
            jitter_s: 0.05,
            seed: 1,
        });
        for i in 0..100 {
            let t = i as f64 * 0.1;
            let a = l.deliver(t);
            assert!(a >= t + 0.01 && a <= t + 0.061, "arrival {a} for send {t}");
        }
    }

    #[test]
    fn fifo_ordering() {
        let mut l = Link::new(LinkConfig {
            base_delay_s: 0.0,
            jitter_s: 0.2,
            seed: 2,
        });
        let mut prev = f64::NEG_INFINITY;
        for i in 0..200 {
            // Sends in bursts: same nominal time.
            let a = l.deliver((i / 10) as f64 * 0.01);
            assert!(a >= prev, "arrival went backwards");
            prev = a;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Link::new(LinkConfig::default());
        let mut b = Link::new(LinkConfig::default());
        for i in 0..20 {
            assert_eq!(a.deliver(i as f64), b.deliver(i as f64));
        }
    }

    #[test]
    fn zero_jitter_is_pure_latency() {
        let mut l = Link::new(LinkConfig {
            base_delay_s: 0.03,
            jitter_s: 0.0,
            seed: 3,
        });
        assert!((l.deliver(1.0) - 1.03).abs() < 1e-12);
    }

    #[test]
    fn zero_faults_match_plain_link_exactly() {
        let cfg = LinkConfig::default();
        let mut plain = Link::new(cfg);
        let mut faulty = FaultyLink::perfect(cfg);
        let payload = [0xA5, 1, 2, 3];
        for i in 0..200 {
            let t = i as f64 * 0.01;
            let deliveries = faulty.send(t, &payload);
            assert_eq!(deliveries.len(), 1, "perfect channel never drops");
            let (arrival, bytes) = &deliveries[0];
            assert_eq!(*arrival, plain.deliver(t), "times must be identical");
            assert_eq!(bytes.as_slice(), &payload[..], "bytes must be identical");
        }
        assert!(!faulty.fault_config().is_active());
        assert_eq!(faulty.stats().frames_dropped, 0);
        assert_eq!(faulty.stats().bytes_corrupted, 0);
    }

    #[test]
    fn drop_rate_drops_roughly_that_fraction() {
        let mut l = FaultyLink::new(LinkConfig::default(), FaultConfig::lossy(0.2, 7));
        let mut delivered = 0;
        let n = 2000;
        for i in 0..n {
            delivered += l.send(i as f64 * 0.01, &[1, 2, 3]).len();
        }
        let rate = 1.0 - delivered as f64 / n as f64;
        assert!(
            (rate - 0.2).abs() < 0.04,
            "observed loss {rate} far from configured 0.2"
        );
        assert_eq!(l.stats().frames_sent, n);
        assert_eq!(l.stats().frames_dropped, n - delivered);
    }

    #[test]
    fn corruption_flips_bits_but_keeps_length() {
        let faults = FaultConfig {
            corrupt_rate: 0.5,
            seed: 11,
            ..FaultConfig::default()
        };
        let mut l = FaultyLink::new(LinkConfig::default(), faults);
        let payload: Vec<u8> = (0..64).collect();
        let mut changed = 0;
        for i in 0..50 {
            for (_, bytes) in l.send(i as f64, &payload) {
                assert_eq!(bytes.len(), payload.len());
                changed += bytes.iter().zip(&payload).filter(|(a, b)| a != b).count();
            }
        }
        assert!(changed > 0, "corruption rate 0.5 must flip something");
        assert_eq!(l.stats().bytes_corrupted, changed);
    }

    #[test]
    fn duplication_delivers_two_copies() {
        let faults = FaultConfig {
            dup_rate: 1.0,
            seed: 13,
            ..FaultConfig::default()
        };
        let mut l = FaultyLink::new(LinkConfig::default(), faults);
        let deliveries = l.send(0.0, &[9, 9]);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(l.stats().frames_duplicated, 1);
    }

    #[test]
    fn reordering_breaks_fifo() {
        let faults = FaultConfig {
            reorder_rate: 0.3,
            reorder_delay_s: 1.0,
            seed: 17,
            ..FaultConfig::default()
        };
        let mut l = FaultyLink::new(LinkConfig::default(), faults);
        let mut arrivals = Vec::new();
        for i in 0..100 {
            for (t, _) in l.send(i as f64 * 0.05, &[0]) {
                arrivals.push(t);
            }
        }
        let out_of_order = arrivals.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(out_of_order > 0, "reordering must violate FIFO");
        assert!(l.stats().frames_reordered > 0);
    }

    #[test]
    fn burst_loss_clusters_drops() {
        let faults = FaultConfig {
            burst_enter: 0.05,
            burst_exit: 0.2,
            burst_loss: 1.0,
            seed: 19,
            ..FaultConfig::default()
        };
        let mut l = FaultyLink::new(LinkConfig::default(), faults);
        let lost: Vec<bool> = (0..2000)
            .map(|i| l.send(i as f64 * 0.01, &[0]).is_empty())
            .collect();
        let total = lost.iter().filter(|&&x| x).count();
        assert!(total > 50, "burst model should lose a visible fraction");
        // Consecutive-loss pairs must be far more common than under
        // independent loss at the same total rate.
        let pairs = lost.windows(2).filter(|w| w[0] && w[1]).count();
        let p = total as f64 / lost.len() as f64;
        let independent_pairs = p * p * (lost.len() - 1) as f64;
        assert!(
            pairs as f64 > 3.0 * independent_pairs,
            "losses do not cluster: {pairs} pairs vs {independent_pairs:.1} expected"
        );
    }

    #[test]
    fn faulty_link_replays_deterministically() {
        let faults = FaultConfig {
            drop_rate: 0.1,
            corrupt_rate: 0.01,
            dup_rate: 0.05,
            reorder_rate: 0.05,
            seed: 23,
            ..FaultConfig::default()
        };
        let mut a = FaultyLink::new(LinkConfig::default(), faults);
        let mut b = FaultyLink::new(LinkConfig::default(), faults);
        for i in 0..300 {
            let payload = [i as u8, (i >> 8) as u8, 0xA5];
            assert_eq!(
                a.send(i as f64 * 0.01, &payload),
                b.send(i as f64 * 0.01, &payload)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn reverse_link_is_independent_but_deterministic() {
        let l = FaultyLink::new(LinkConfig::default(), FaultConfig::lossy(0.1, 29));
        let mut r1 = l.reverse();
        let mut r2 = l.reverse();
        assert_ne!(r1.fault_config().seed, l.fault_config().seed);
        for i in 0..50 {
            assert_eq!(r1.send(i as f64, &[1]), r2.send(i as f64, &[1]));
        }
    }

    #[test]
    fn drift_scales_arrival_times() {
        let faults = FaultConfig {
            drift_ppm: 1000.0,
            seed: 31,
            ..FaultConfig::default()
        };
        let link = LinkConfig {
            base_delay_s: 0.0,
            jitter_s: 0.0,
            seed: 1,
        };
        let mut l = FaultyLink::new(link, faults);
        let (arrival, _) = l.send(100.0, &[0])[0];
        assert!((arrival - 100.0 * 1.001).abs() < 1e-9);
    }
}
