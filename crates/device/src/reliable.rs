//! Reliable transport over a [`FaultyLink`]: sequence numbers +
//! NACK-based retransmission on top of the CRC framing.
//!
//! The acquisition protocol of [`crate::frame`] is fire-and-forget; a
//! single dropped frame loses a PPG block (or worse, a key event) for
//! good. This module wraps every frame in an ARQ envelope carrying a
//! per-channel sequence number and runs a virtual-time event loop in
//! which the host detects sequence gaps and NACKs them over a reverse
//! link, and the device retransmits from its send buffer with bounded
//! retries. End-of-stream is announced with redundant `Fin` packets so
//! tail loss is also detected. Everything — fault draws, jitter,
//! backoff schedule — is deterministic from the link seeds, so a whole
//! degraded session can be replayed bit-for-bit.
//!
//! The protocol state machine is documented in `DESIGN.md`
//! ("Link fault model & recovery").

use crate::device::WearableDevice;
use crate::frame::{crc32, Frame, FrameError, MAX_PAYLOAD};
use crate::host::{AssembleError, HostAssembler, LinkQuality};
use crate::link::FaultyLink;
use p2auth_core::types::Recording;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

/// Leading byte of every ARQ envelope (distinct from the frame magic
/// so raw-frame and ARQ streams cannot be confused).
pub const ARQ_MAGIC: u8 = 0xC3;

const TYPE_DATA: u8 = 1;
const TYPE_NACK: u8 = 2;
const TYPE_FIN: u8 = 3;

/// One ARQ envelope.
///
/// Wire format: `[0xC3][type u8][seq u32 BE][len u16 BE][body][crc32 BE]`
/// where the CRC covers type, seq, len and body. `Data` carries an
/// encoded [`Frame`] as body; `Nack` and `Fin` have empty bodies and
/// reuse the seq field for the requested sequence number and the total
/// packet count respectively.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A data packet: frame `seq` of its channel.
    Data {
        /// Per-channel sequence number, starting at 0.
        seq: u32,
        /// The encoded inner [`Frame`].
        frame: Vec<u8>,
    },
    /// Host → device: "retransmit packet `seq`".
    Nack {
        /// The missing sequence number.
        seq: u32,
    },
    /// Device → host: "the channel carries `total` packets in all".
    Fin {
        /// Total number of data packets on this channel.
        total: u32,
    },
}

impl Packet {
    /// Encodes the envelope (magic, header, body, CRC).
    pub fn encode(&self) -> Vec<u8> {
        let (ty, seq, body): (u8, u32, &[u8]) = match self {
            Packet::Data { seq, frame } => (TYPE_DATA, *seq, frame.as_slice()),
            Packet::Nack { seq } => (TYPE_NACK, *seq, &[]),
            Packet::Fin { total } => (TYPE_FIN, *total, &[]),
        };
        assert!(body.len() <= u16::MAX as usize, "ARQ body too large");
        let mut out = Vec::with_capacity(body.len() + 12);
        out.push(ARQ_MAGIC);
        out.push(ty);
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
        out.extend_from_slice(body);
        let crc = crc32(&out[1..]);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Decodes one envelope from the front of `buf`, returning the
    /// packet and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] mirroring [`Frame::decode`]'s
    /// classification: [`FrameError::Truncated`] when more bytes may
    /// complete the packet, and a non-recoverable variant otherwise.
    pub fn decode(buf: &[u8]) -> Result<(Packet, usize), FrameError> {
        if buf.len() < 12 {
            return Err(FrameError::Truncated);
        }
        if buf[0] != ARQ_MAGIC {
            return Err(FrameError::BadMagic { found: buf[0] });
        }
        let ty = buf[1];
        let seq = u32::from_be_bytes([buf[2], buf[3], buf[4], buf[5]]);
        let len = u16::from_be_bytes([buf[6], buf[7]]) as usize;
        // Inner frames are bounded by MAX_PAYLOAD plus framing overhead.
        if len > MAX_PAYLOAD + 16 {
            return Err(FrameError::Oversized { len });
        }
        let total = 8 + len + 4;
        if buf.len() < total {
            return Err(FrameError::Truncated);
        }
        let stored = u32::from_be_bytes([
            buf[total - 4],
            buf[total - 3],
            buf[total - 2],
            buf[total - 1],
        ]);
        if crc32(&buf[1..total - 4]) != stored {
            return Err(FrameError::BadCrc);
        }
        let body = &buf[8..8 + len];
        let pkt = match ty {
            TYPE_DATA => Packet::Data {
                seq,
                frame: body.to_vec(),
            },
            TYPE_NACK | TYPE_FIN if !body.is_empty() => {
                return Err(FrameError::BadPayload {
                    detail: format!("{} body bytes on control packet", body.len()),
                });
            }
            TYPE_NACK => Packet::Nack { seq },
            TYPE_FIN => Packet::Fin { total: seq },
            other => return Err(FrameError::UnknownKind { kind: other }),
        };
        Ok((pkt, total))
    }
}

/// Tuning knobs for the NACK/retransmission protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Maximum retransmissions of any one packet by the device.
    pub max_retries: u32,
    /// Maximum NACKs the host sends for any one gap before giving up.
    pub max_nacks: u32,
    /// Delay from gap detection to the first NACK, in seconds.
    pub gap_nack_delay_s: f64,
    /// Base NACK retry backoff, in seconds (doubles per attempt).
    pub nack_backoff_s: f64,
    /// Redundant `Fin` copies announcing end-of-stream (tail-loss
    /// protection).
    pub fin_copies: u32,
    /// Spacing between `Fin` copies, in seconds.
    pub fin_spacing_s: f64,
    /// Host gives up on the session this long after the device's last
    /// scheduled send; in-flight events past the deadline are dropped.
    pub session_timeout_s: f64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            max_retries: 5,
            max_nacks: 5,
            gap_nack_delay_s: 0.02,
            nack_backoff_s: 0.12,
            fin_copies: 4,
            fin_spacing_s: 0.06,
            session_timeout_s: 5.0,
        }
    }
}

/// Counters and wire digests for one reliable transfer.
///
/// The digests fold every byte offered to the forward (device → host)
/// and reverse (host → device) links through CRC-32 in send order, so
/// two sessions with equal stats exchanged byte-identical traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Original data packets across both channels.
    pub data_packets: usize,
    /// Unique data packets that reached the host.
    pub delivered_unique: usize,
    /// Duplicate deliveries discarded by sequence number.
    pub duplicates: usize,
    /// Envelopes discarded for CRC/framing errors (either direction).
    pub corrupt_discarded: usize,
    /// Retransmissions performed by the device.
    pub retransmissions: usize,
    /// NACKs sent by the host.
    pub nacks_sent: usize,
    /// Gaps the host abandoned after `max_nacks` attempts.
    pub gaps_abandoned: usize,
    /// Events discarded past the session deadline.
    pub late_dropped: usize,
    /// NACK backoff timers scheduled by the host (one per NACK sent).
    pub backoff_waits: usize,
    /// Total backoff time scheduled, in microseconds (integer so the
    /// stats stay `Eq` and replay-comparable).
    pub backoff_wait_us: u64,
    /// Bytes offered to the forward links.
    pub forward_bytes: usize,
    /// CRC-32 over all bytes offered to the forward links, in order.
    pub forward_digest: u32,
    /// Bytes offered to the reverse links.
    pub reverse_bytes: usize,
    /// CRC-32 over all bytes offered to the reverse links, in order.
    pub reverse_digest: u32,
}

impl std::fmt::Display for TransferStats {
    /// One-line summary for bench tables and CI logs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pkts {}/{} (dup {}, corrupt {}) retx {} nacks {} \
             (backoff {}x/{:.2}s) gaps {} late {} fwd {}B rev {}B",
            self.delivered_unique,
            self.data_packets,
            self.duplicates,
            self.corrupt_discarded,
            self.retransmissions,
            self.nacks_sent,
            self.backoff_waits,
            self.backoff_wait_us as f64 / 1e6,
            self.gaps_abandoned,
            self.late_dropped,
            self.forward_bytes,
            self.reverse_bytes,
        )
    }
}

/// Incremental CRC-32 over a byte stream (same polynomial as
/// [`crc32`]).
#[derive(Debug, Clone, Copy)]
struct WireDigest {
    crc: u32,
    bytes: usize,
}

impl WireDigest {
    fn new() -> Self {
        Self {
            crc: 0xffff_ffff,
            bytes: 0,
        }
    }

    fn update(&mut self, data: &[u8]) {
        self.bytes += data.len();
        for &b in data {
            self.crc ^= u32::from(b);
            for _ in 0..8 {
                let mask = (self.crc & 1).wrapping_neg();
                self.crc = (self.crc >> 1) ^ (0xedb8_8320 & mask);
            }
        }
    }

    fn finish(&self) -> u32 {
        !self.crc
    }
}

/// Discrete-event kinds of the virtual-time loop. `ch` is 0 for the
/// data link, 1 for the key link.
#[derive(Debug)]
enum EvKind {
    /// Device sends original data packet `seq` on channel `ch`.
    Send { ch: usize, seq: u32 },
    /// Device sends one `Fin` copy on channel `ch`.
    SendFin { ch: usize },
    /// Envelope bytes arrive at the host.
    Deliver { ch: usize, bytes: Vec<u8> },
    /// Host re-checks gap `seq`; NACKs it if still missing.
    NackTimer { ch: usize, seq: u32, attempt: u32 },
    /// NACK bytes arrive back at the device.
    NackBack { ch: usize, bytes: Vec<u8> },
}

struct Ev {
    t: f64,
    tie: u64,
    kind: EvKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.tie == other.tie
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first,
        // FIFO among equal times.
        other
            .t
            .partial_cmp(&self.t)
            .expect("event times are finite")
            .then(other.tie.cmp(&self.tie))
    }
}

/// Per-channel receive state at the host.
#[derive(Default)]
struct RxState {
    got: BTreeSet<u32>,
    nack_started: BTreeSet<u32>,
    /// Every sequence number below this has been examined for gaps.
    scan_from: u32,
    max_seq: Option<u32>,
}

/// Transmits a recording over two faulty links (data + key channel)
/// with NACK-based recovery, returning the degraded-assembled
/// recording with its [`LinkQuality`] (coverage and gap counts), plus
/// transfer statistics.
///
/// Key events ride the phone link but get the same ARQ protection —
/// a lost key event is unrecoverable by gap filling (the typed PIN
/// cannot be reconstructed), so the key channel is where reliability
/// matters most. Reverse (NACK) links are derived deterministically
/// from the forward links via [`FaultyLink::reverse`], keeping the
/// whole exchange a pure function of the two link configurations.
///
/// # Errors
///
/// The first tuple element is `Err` when even degraded assembly cannot
/// produce a valid recording — e.g. the `SessionEnd` never arrived
/// within the timeout, or a key event was lost beyond recovery.
///
/// # Panics
///
/// Panics if `rec` fails [`Recording::validate`] (same contract as
/// [`WearableDevice::packetize`]).
pub fn transmit_reliable(
    rec: &Recording,
    device: &WearableDevice,
    data_link: &mut FaultyLink,
    key_link: &mut FaultyLink,
    config: &ReliableConfig,
) -> (
    Result<(Recording, LinkQuality), AssembleError>,
    TransferStats,
) {
    let _span = p2auth_obs::span!("device.reliable.transmit");
    // Pre-register the transfer counters so they appear in reports even
    // for sessions that never exercise the recovery machinery.
    p2auth_obs::counter!("device.reliable.packets_sent").add(0);
    p2auth_obs::counter!("device.reliable.retransmissions").add(0);
    p2auth_obs::counter!("device.reliable.nacks_sent").add(0);
    p2auth_obs::counter!("device.reliable.gaps_abandoned").add(0);
    p2auth_obs::counter!("device.reliable.corrupt_discarded").add(0);
    p2auth_obs::counter!("device.reliable.duplicates").add(0);
    p2auth_obs::counter!("device.reliable.late_dropped").add(0);
    data_link.start_session();
    key_link.start_session();
    let mut reverse = [data_link.reverse(), key_link.reverse()];
    let forward = [data_link, key_link];

    // Split the packet stream into the two ARQ channels; each gets its
    // own sequence space, in send order.
    let mut sends: [Vec<(f64, Vec<u8>)>; 2] = [Vec::new(), Vec::new()];
    for tf in device.packetize(rec) {
        let ch = usize::from(matches!(tf.frame, Frame::Key { .. }));
        let seq = sends[ch].len() as u32;
        let pkt = Packet::Data {
            seq,
            frame: tf.frame.encode().to_vec(),
        }
        .encode();
        sends[ch].push((tf.send_time_s, pkt));
    }

    let mut stats = TransferStats {
        data_packets: sends[0].len() + sends[1].len(),
        ..TransferStats::default()
    };
    let mut fwd_digest = WireDigest::new();
    let mut rev_digest = WireDigest::new();

    let mut heap: BinaryHeap<Ev> = BinaryHeap::new();
    let mut tie = 0_u64;
    let push = |heap: &mut BinaryHeap<Ev>, tie: &mut u64, t: f64, kind: EvKind| {
        heap.push(Ev { t, tie: *tie, kind });
        *tie += 1;
    };

    let mut last_send = 0.0_f64;
    for (ch, channel) in sends.iter().enumerate() {
        let mut ch_last = 0.0_f64;
        for (seq, &(t, _)) in channel.iter().enumerate() {
            push(
                &mut heap,
                &mut tie,
                t,
                EvKind::Send {
                    ch,
                    seq: seq as u32,
                },
            );
            ch_last = ch_last.max(t);
        }
        if !channel.is_empty() {
            for copy in 0..config.fin_copies {
                let t = ch_last + 0.01 + f64::from(copy) * config.fin_spacing_s;
                push(&mut heap, &mut tie, t, EvKind::SendFin { ch });
                last_send = last_send.max(t);
            }
        }
        last_send = last_send.max(ch_last);
    }
    let deadline = last_send + config.session_timeout_s;

    let mut retries: [Vec<u32>; 2] = [vec![0; sends[0].len()], vec![0; sends[1].len()]];
    let mut rx: [RxState; 2] = [RxState::default(), RxState::default()];
    let mut assembler = HostAssembler::new();
    let mut end_frame: Option<Frame> = None;

    while let Some(ev) = heap.pop() {
        if ev.t > deadline {
            stats.late_dropped += 1;
            continue;
        }
        match ev.kind {
            EvKind::Send { ch, seq } => {
                let bytes = sends[ch][seq as usize].1.clone();
                fwd_digest.update(&bytes);
                for (t_arr, payload) in forward[ch].send(ev.t, &bytes) {
                    push(
                        &mut heap,
                        &mut tie,
                        t_arr,
                        EvKind::Deliver { ch, bytes: payload },
                    );
                }
            }
            EvKind::SendFin { ch } => {
                let bytes = Packet::Fin {
                    total: sends[ch].len() as u32,
                }
                .encode();
                fwd_digest.update(&bytes);
                for (t_arr, payload) in forward[ch].send(ev.t, &bytes) {
                    push(
                        &mut heap,
                        &mut tie,
                        t_arr,
                        EvKind::Deliver { ch, bytes: payload },
                    );
                }
            }
            EvKind::Deliver { ch, bytes } => match Packet::decode(&bytes) {
                Err(_) => stats.corrupt_discarded += 1,
                Ok((Packet::Data { seq, frame }, _)) => {
                    let st = &mut rx[ch];
                    if !st.got.insert(seq) {
                        stats.duplicates += 1;
                        continue;
                    }
                    stats.delivered_unique += 1;
                    match Frame::decode(&frame) {
                        Ok((f, _)) => {
                            if matches!(f, Frame::SessionEnd { .. }) {
                                // Withheld until the loop drains:
                                // retransmitted blocks may still be in
                                // flight, and assembly is final.
                                end_frame = Some(f);
                            } else {
                                let fed = assembler.feed(f);
                                debug_assert!(fed.is_ok(), "non-final frames cannot fail");
                            }
                        }
                        // Envelope CRC passed but the inner frame is
                        // bad — only possible via a CRC collision.
                        // The seq is burnt; treat the content as lost.
                        Err(_) => stats.corrupt_discarded += 1,
                    }
                    // Gap detection: everything in [scan_from, seq)
                    // not yet received gets a NACK chain.
                    if st.max_seq.is_none_or(|m| seq > m) {
                        let mut gaps = Vec::new();
                        for g in st.scan_from..seq {
                            if !st.got.contains(&g) && st.nack_started.insert(g) {
                                gaps.push(g);
                            }
                        }
                        for g in gaps {
                            push(
                                &mut heap,
                                &mut tie,
                                ev.t + config.gap_nack_delay_s,
                                EvKind::NackTimer {
                                    ch,
                                    seq: g,
                                    attempt: 0,
                                },
                            );
                        }
                        st.scan_from = seq;
                        st.max_seq = Some(seq);
                    }
                }
                Ok((Packet::Fin { total }, _)) => {
                    let st = &mut rx[ch];
                    let mut gaps = Vec::new();
                    for g in 0..total {
                        if !st.got.contains(&g) && st.nack_started.insert(g) {
                            gaps.push(g);
                        }
                    }
                    for g in gaps {
                        push(
                            &mut heap,
                            &mut tie,
                            ev.t + config.gap_nack_delay_s,
                            EvKind::NackTimer {
                                ch,
                                seq: g,
                                attempt: 0,
                            },
                        );
                    }
                    st.scan_from = st.scan_from.max(total);
                }
                // A NACK on the forward direction is a corrupted or
                // misrouted envelope; drop it.
                Ok((Packet::Nack { .. }, _)) => stats.corrupt_discarded += 1,
            },
            EvKind::NackTimer { ch, seq, attempt } => {
                if rx[ch].got.contains(&seq) {
                    continue; // recovered
                }
                if attempt >= config.max_nacks {
                    stats.gaps_abandoned += 1;
                    p2auth_obs::event!("device.reliable", "gap_abandoned", ch = ch, seq = seq);
                    continue;
                }
                stats.nacks_sent += 1;
                p2auth_obs::event!(
                    "device.reliable",
                    "nack",
                    ch = ch,
                    seq = seq,
                    attempt = attempt
                );
                let bytes = Packet::Nack { seq }.encode();
                rev_digest.update(&bytes);
                for (t_arr, payload) in reverse[ch].send(ev.t, &bytes) {
                    push(
                        &mut heap,
                        &mut tie,
                        t_arr,
                        EvKind::NackBack { ch, bytes: payload },
                    );
                }
                let backoff = config.nack_backoff_s * f64::from(1_u32 << attempt.min(10));
                stats.backoff_waits += 1;
                stats.backoff_wait_us += (backoff * 1e6).round() as u64;
                push(
                    &mut heap,
                    &mut tie,
                    ev.t + backoff,
                    EvKind::NackTimer {
                        ch,
                        seq,
                        attempt: attempt + 1,
                    },
                );
            }
            EvKind::NackBack { ch, bytes } => match Packet::decode(&bytes) {
                Ok((Packet::Nack { seq }, _)) => {
                    let i = seq as usize;
                    if i < sends[ch].len() && retries[ch][i] < config.max_retries {
                        retries[ch][i] += 1;
                        stats.retransmissions += 1;
                        p2auth_obs::event!(
                            "device.reliable",
                            "retransmit",
                            ch = ch,
                            seq = seq,
                            retry = retries[ch][i],
                        );
                        let pkt = sends[ch][i].1.clone();
                        fwd_digest.update(&pkt);
                        for (t_arr, payload) in forward[ch].send(ev.t, &pkt) {
                            push(
                                &mut heap,
                                &mut tie,
                                t_arr,
                                EvKind::Deliver { ch, bytes: payload },
                            );
                        }
                    }
                }
                _ => stats.corrupt_discarded += 1,
            },
        }
    }

    stats.forward_bytes = fwd_digest.bytes;
    stats.forward_digest = fwd_digest.finish();
    stats.reverse_bytes = rev_digest.bytes;
    stats.reverse_digest = rev_digest.finish();

    p2auth_obs::counter!("device.reliable.packets_sent").add(stats.data_packets as u64);
    p2auth_obs::counter!("device.reliable.retransmissions").add(stats.retransmissions as u64);
    p2auth_obs::counter!("device.reliable.nacks_sent").add(stats.nacks_sent as u64);
    p2auth_obs::counter!("device.reliable.gaps_abandoned").add(stats.gaps_abandoned as u64);
    p2auth_obs::counter!("device.reliable.corrupt_discarded").add(stats.corrupt_discarded as u64);
    p2auth_obs::counter!("device.reliable.duplicates").add(stats.duplicates as u64);
    p2auth_obs::counter!("device.reliable.late_dropped").add(stats.late_dropped as u64);
    p2auth_obs::event!(
        "device.reliable",
        "transfer_done",
        delivered = stats.delivered_unique,
        total = stats.data_packets,
        retx = stats.retransmissions,
        nacks = stats.nacks_sent,
    );

    let result = match end_frame {
        Some(end) => assembler
            .feed_lossy(end)
            .expect("SessionEnd always finalizes"),
        None => Err(AssembleError::Incomplete {
            detail: format!(
                "no SessionEnd within timeout ({} of {} packets delivered)",
                stats.delivered_unique, stats.data_packets
            ),
        }),
    };
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::link::{FaultConfig, LinkConfig};
    use p2auth_core::types::{
        AccelTrack, ChannelInfo, HandMode, Pin, Placement, UserId, Wavelength,
    };

    fn rec() -> Recording {
        let n = 600;
        let mk = |phase: f64| -> Vec<f64> {
            (0..n).map(|i| ((i as f64) * 0.07 + phase).sin()).collect()
        };
        Recording {
            user: UserId(5),
            sample_rate: 100.0,
            ppg: vec![mk(0.0), mk(0.5), mk(1.0), mk(1.5)],
            channels: vec![
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Radial,
                },
                ChannelInfo {
                    wavelength: Wavelength::Red,
                    placement: Placement::Radial,
                },
                ChannelInfo {
                    wavelength: Wavelength::Infrared,
                    placement: Placement::Ulnar,
                },
                ChannelInfo {
                    wavelength: Wavelength::Red,
                    placement: Placement::Ulnar,
                },
            ],
            accel: Some(AccelTrack {
                sample_rate: 75.0,
                axes: [vec![0.1; 450], vec![0.2; 450], vec![9.8; 450]],
            }),
            pin_entered: Pin::new("1628").unwrap(),
            reported_key_times: vec![120, 230, 340, 450],
            true_key_times: vec![118, 232, 338, 452],
            watch_hand: vec![true; 4],
            hand_mode: HandMode::OneHanded,
        }
    }

    #[test]
    fn packet_round_trips() {
        let cases = vec![
            Packet::Data {
                seq: 7,
                frame: vec![1, 2, 3, 4, 5],
            },
            Packet::Nack { seq: 0 },
            Packet::Nack { seq: u32::MAX },
            Packet::Fin { total: 381 },
        ];
        for pkt in cases {
            let bytes = pkt.encode();
            let (back, used) = Packet::decode(&bytes).unwrap();
            assert_eq!(back, pkt);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn packet_corruption_is_detected() {
        let bytes = Packet::Data {
            seq: 3,
            frame: vec![9; 40],
        }
        .encode();
        for i in 1..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                Packet::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn packet_decode_never_panics_on_truncation() {
        let bytes = Packet::Fin { total: 12 }.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Packet::decode(&bytes[..cut]), Err(FrameError::Truncated));
        }
    }

    #[test]
    fn perfect_channel_needs_no_recovery() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::new(2.0, 50.0));
        let mut data = FaultyLink::perfect(LinkConfig::default());
        let mut keys = FaultyLink::perfect(LinkConfig {
            seed: 99,
            ..LinkConfig::default()
        });
        let (result, stats) = transmit_reliable(
            &original,
            &dev,
            &mut data,
            &mut keys,
            &ReliableConfig::default(),
        );
        let (rebuilt, quality) = result.unwrap();
        assert_eq!(quality.coverage, 1.0);
        assert_eq!(quality.gap_blocks, 0);
        assert_eq!(quality.received_blocks, quality.expected_blocks);
        assert_eq!(stats.retransmissions, 0);
        assert_eq!(stats.nacks_sent, 0);
        assert_eq!(stats.gaps_abandoned, 0);
        assert_eq!(stats.backoff_waits, 0);
        assert_eq!(stats.backoff_wait_us, 0);
        assert_eq!(stats.delivered_unique, stats.data_packets);
        assert_eq!(rebuilt.user, original.user);
        assert_eq!(rebuilt.pin_entered, original.pin_entered);
        assert_eq!(rebuilt.num_samples(), original.num_samples());
        assert_eq!(rebuilt.validate(), Ok(()));
    }

    #[test]
    fn light_loss_is_fully_recovered() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::new(2.0, 50.0));
        let mut data = FaultyLink::new(LinkConfig::default(), FaultConfig::lossy(0.02, 11));
        let mut keys = FaultyLink::new(
            LinkConfig {
                seed: 99,
                ..LinkConfig::default()
            },
            FaultConfig::lossy(0.02, 12),
        );
        let (result, stats) = transmit_reliable(
            &original,
            &dev,
            &mut data,
            &mut keys,
            &ReliableConfig::default(),
        );
        let (rebuilt, quality) = result.unwrap();
        let coverage = quality.coverage;
        assert!(coverage > 0.99, "coverage {coverage} after recovery");
        assert!(stats.nacks_sent > 0, "2% loss over ~380 packets must NACK");
        assert_eq!(stats.gaps_abandoned, 0);
        assert_eq!(
            stats.backoff_waits, stats.nacks_sent,
            "every NACK schedules exactly one backoff timer"
        );
        assert!(stats.backoff_wait_us > 0);
        // The Display impl is what fault_bench and CI logs print; it
        // must mention the headline counters.
        let line = stats.to_string();
        assert!(line.contains("retx") && line.contains("nacks") && line.contains("backoff"));
        assert_eq!(rebuilt.num_samples(), original.num_samples());
        assert_eq!(rebuilt.pin_entered, original.pin_entered);
        assert_eq!(rebuilt.validate(), Ok(()));
    }

    #[test]
    fn heavy_loss_degrades_but_does_not_crash() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::new(2.0, 50.0));
        let faults = FaultConfig {
            corrupt_rate: 0.01,
            ..FaultConfig::lossy(0.15, 21)
        };
        let mut data = FaultyLink::new(LinkConfig::default(), faults);
        let mut keys = FaultyLink::new(
            LinkConfig {
                seed: 99,
                ..LinkConfig::default()
            },
            FaultConfig::lossy(0.15, 22),
        );
        let (result, stats) = transmit_reliable(
            &original,
            &dev,
            &mut data,
            &mut keys,
            &ReliableConfig::default(),
        );
        assert!(stats.retransmissions > 0);
        match result {
            Ok((rebuilt, quality)) => {
                assert!(quality.coverage > 0.5, "coverage {}", quality.coverage);
                assert_eq!(rebuilt.validate(), Ok(()));
            }
            // Permanent loss of a key event or the SessionEnd is a
            // legitimate outcome at 15% loss; it must be reported as
            // Incomplete, not a panic.
            Err(AssembleError::Incomplete { detail }) => assert!(!detail.is_empty()),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn reliable_transfer_replays_deterministically() {
        let original = rec();
        let dev = WearableDevice::new(VirtualClock::new(2.0, 50.0));
        let run = || {
            let mut data = FaultyLink::new(LinkConfig::default(), FaultConfig::lossy(0.05, 31));
            let mut keys = FaultyLink::new(
                LinkConfig {
                    seed: 99,
                    ..LinkConfig::default()
                },
                FaultConfig::lossy(0.05, 32),
            );
            transmit_reliable(
                &original,
                &dev,
                &mut data,
                &mut keys,
                &ReliableConfig::default(),
            )
        };
        let (r1, s1) = run();
        let (r2, s2) = run();
        assert_eq!(s1, s2, "stats (incl. wire digests) must replay exactly");
        assert_eq!(r1.unwrap(), r2.unwrap());
    }
}
