//! Supervised authentication sessions: a deadline-guarded state
//! machine over the collect → assess → decide pipeline.
//!
//! The paper's prototype authenticates one attempt and stops. A
//! deployed unlock flow cannot: collection may stall (link loss, the
//! watch taken off mid-entry), the signal may arrive too degraded to
//! decide on, and the user deserves a bounded number of re-prompts
//! before the session hard-fails. [`SessionSupervisor`] is the pure
//! state machine that enforces those guarantees:
//!
//! ```text
//! Idle → Collecting → Assessing → Deciding → Accept
//!            ↑            │           │    ↘ Reject
//!            └─ Reprompt ←┴───────────┘      Abort
//! ```
//!
//! * every non-terminal state carries a **deadline**; a [`SupervisorEvent::Tick`]
//!   past it fires the watchdog (Collecting/Assessing/Deciding → Abort,
//!   Reprompt → back to Collecting once the backoff elapses), so a
//!   session can never hang regardless of what the driver does;
//! * poor-signal outcomes (too few usable keystrokes at assessment, or
//!   a [`RejectReason::PoorSignal`] decision) consume one of a bounded
//!   budget of **re-prompts** with exponential backoff before the
//!   session terminates;
//! * [`SupervisorEvent::DecisionAccept`] is only honoured in
//!   `Deciding` — there is no edge into `Accept` from any other state,
//!   so an accept always implies a full collect → assess → decide pass.
//!
//! [`run_supervised`] is the deterministic virtual-time driver used by
//! the benches, the CLI and the chaos tests: it owns the clock, pulls
//! attempts from a closure and routes them through
//! [`decide_session`](crate::auth_host::decide_session).

use crate::auth_host::SessionOutcome;
use crate::host::LinkQuality;
use p2auth_core::{AttemptQuality, P2Auth, Pin, Recording, RejectReason, UserProfile};

/// Deadlines and re-prompt policy of a supervised session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Budget for one collection attempt (seconds of session time).
    pub collect_deadline_s: f64,
    /// Budget for quality assessment.
    pub assess_deadline_s: f64,
    /// Budget for the authentication decision.
    pub decide_deadline_s: f64,
    /// Re-prompts allowed after poor-signal results (0 disables).
    pub max_reprompts: u32,
    /// Backoff before the first re-prompt's collection restarts.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff per additional re-prompt.
    pub backoff_factor: f64,
    /// Usable keystrokes an assessment needs for the session to be
    /// worth deciding on; below this the supervisor re-prompts.
    pub min_usable_keystrokes: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            collect_deadline_s: 30.0,
            assess_deadline_s: 5.0,
            decide_deadline_s: 10.0,
            max_reprompts: 2,
            backoff_base_s: 1.0,
            backoff_factor: 2.0,
            min_usable_keystrokes: 2,
        }
    }
}

/// The states of a supervised session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SupervisorState {
    /// Waiting for a session to start.
    Idle,
    /// The wearable is streaming an attempt.
    Collecting,
    /// Signal quality of the collected attempt is being scored.
    Assessing,
    /// The authentication pipeline is evaluating the attempt.
    Deciding,
    /// Backing off before re-collecting after a poor-signal result.
    Reprompt,
    /// Terminal: the user was accepted.
    Accept,
    /// Terminal: the user was rejected.
    Reject,
    /// Terminal: the session could not be completed (watchdog,
    /// exhausted re-prompts at assessment, or evaluation failure).
    Abort,
}

impl SupervisorState {
    /// Whether the session has ended.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SupervisorState::Accept | SupervisorState::Reject | SupervisorState::Abort
        )
    }

    /// Stable machine-readable name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SupervisorState::Idle => "idle",
            SupervisorState::Collecting => "collecting",
            SupervisorState::Assessing => "assessing",
            SupervisorState::Deciding => "deciding",
            SupervisorState::Reprompt => "reprompt",
            SupervisorState::Accept => "accept",
            SupervisorState::Reject => "reject",
            SupervisorState::Abort => "abort",
        }
    }
}

impl std::fmt::Display for SupervisorState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Events driving the supervisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupervisorEvent {
    /// Begin a session (valid in `Idle`).
    Start,
    /// The wearable delivered a complete attempt (valid in
    /// `Collecting`).
    CollectionComplete,
    /// Quality assessment finished (valid in `Assessing`).
    AssessmentReady {
        /// Keystrokes detected *and* at or above the SQI floor.
        usable: usize,
        /// Keystrokes detected at all.
        detected: usize,
        /// Mean SQI over the detected keystrokes.
        mean_sqi: f64,
    },
    /// Quality assessment itself failed (valid in `Assessing`).
    AssessmentFailed,
    /// The pipeline accepted the attempt (valid in `Deciding`).
    DecisionAccept,
    /// The pipeline rejected the attempt (valid in `Deciding`).
    DecisionReject {
        /// Whether the rejection was [`RejectReason::PoorSignal`] —
        /// re-promptable, unlike a biometric mismatch.
        poor_signal: bool,
    },
    /// The pipeline could not evaluate the attempt (valid in
    /// `Deciding`).
    DecisionAbort,
    /// Pure passage of time; only deadlines react to it.
    Tick,
}

impl SupervisorEvent {
    /// Stable machine-readable name (payload-free; the payload travels
    /// in the event log's dedicated fields).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SupervisorEvent::Start => "start",
            SupervisorEvent::CollectionComplete => "collection_complete",
            SupervisorEvent::AssessmentReady { .. } => "assessment_ready",
            SupervisorEvent::AssessmentFailed => "assessment_failed",
            SupervisorEvent::DecisionAccept => "decision_accept",
            SupervisorEvent::DecisionReject { .. } => "decision_reject",
            SupervisorEvent::DecisionAbort => "decision_abort",
            SupervisorEvent::Tick => "tick",
        }
    }
}

/// Observation tap on a supervised session, called synchronously from
/// [`run_supervised_observed`] at every step of the virtual-clock
/// driver. All methods default to no-ops, so an observer implements
/// only what it records; [`NoopObserver`] is the zero-cost identity
/// (and what [`run_supervised`] uses).
///
/// Observer calls carry *logical* session data only — states, virtual
/// clock, quality verdicts, outcomes — never wall-clock time, so a
/// recorder built on this trait produces deterministic, replayable
/// logs.
pub trait SessionObserver {
    /// One supervisor step: the machine consumed `event` at `now_s`,
    /// moving `from` → `to` (equal when the event was absorbed), with
    /// `deadline_s` the *new* state's deadline.
    fn on_step(
        &mut self,
        from: SupervisorState,
        event: &SupervisorEvent,
        to: SupervisorState,
        now_s: f64,
        deadline_s: Option<f64>,
    ) {
        let _ = (from, event, to, now_s, deadline_s);
    }

    /// Quality assessment of one attempt finished (`None` when the
    /// assessment itself failed).
    fn on_assessment(&mut self, attempt_no: u32, quality: Option<&AttemptQuality>) {
        let _ = (attempt_no, quality);
    }

    /// The decision pipeline produced an outcome for one attempt.
    fn on_outcome(&mut self, attempt_no: u32, outcome: &SessionOutcome) {
        let _ = (attempt_no, outcome);
    }
}

/// The do-nothing [`SessionObserver`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SessionObserver for NoopObserver {}

/// A deadline-guarded session state machine. Pure and deterministic:
/// the caller owns the clock and passes `now_s` into every
/// [`SessionSupervisor::step`].
#[derive(Debug, Clone)]
pub struct SessionSupervisor {
    config: SupervisorConfig,
    state: SupervisorState,
    /// Absolute deadline of the current state, if it has one.
    deadline_s: Option<f64>,
    reprompts_used: u32,
}

impl SessionSupervisor {
    /// A supervisor in `Idle`, ready for [`SupervisorEvent::Start`].
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        Self {
            config,
            state: SupervisorState::Idle,
            deadline_s: None,
            reprompts_used: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// Absolute deadline of the current state, if any.
    #[must_use]
    pub fn deadline_s(&self) -> Option<f64> {
        self.deadline_s
    }

    /// Re-prompts consumed so far.
    #[must_use]
    pub fn reprompts_used(&self) -> u32 {
        self.reprompts_used
    }

    /// Collection attempts implied by the current state (1 + re-prompts).
    #[must_use]
    pub fn attempts(&self) -> u32 {
        1 + self.reprompts_used
    }

    /// Returns the supervisor to `Idle` for reuse by a pooled
    /// scheduler. There is no event edge out of a terminal state, so a
    /// pool *must* call this between sessions: it clears the previous
    /// session's absolute deadline (stale under a shared monotonic
    /// clock, it would fire the watchdog the instant the next session
    /// starts) and restores the full re-prompt budget.
    pub fn reset(&mut self) {
        self.state = SupervisorState::Idle;
        self.deadline_s = None;
        self.reprompts_used = 0;
    }

    /// `now_s + budget_s`, saturated to stay finite. Under a shared
    /// monotonic clock `now_s` can be arbitrarily large, and the
    /// exponential backoff can overflow to `+inf`; an infinite
    /// deadline is a state no real clock ever passes — the session
    /// would hang instead of aborting, which the supervisor exists to
    /// prevent.
    fn deadline_from(now_s: f64, budget_s: f64) -> f64 {
        let d = now_s + budget_s;
        if d.is_finite() {
            d
        } else {
            f64::MAX
        }
    }

    fn enter(&mut self, state: SupervisorState, now_s: f64) {
        self.state = state;
        self.deadline_s = match state {
            SupervisorState::Collecting => {
                Some(Self::deadline_from(now_s, self.config.collect_deadline_s))
            }
            SupervisorState::Assessing => {
                Some(Self::deadline_from(now_s, self.config.assess_deadline_s))
            }
            SupervisorState::Deciding => {
                Some(Self::deadline_from(now_s, self.config.decide_deadline_s))
            }
            SupervisorState::Reprompt => Some(Self::deadline_from(now_s, self.backoff_s())),
            _ => None,
        };
        if state.is_terminal() {
            // One macro site per counter: the obs macros cache their
            // handle per call site.
            match state {
                SupervisorState::Accept => {
                    p2auth_obs::counter!("device.supervisor.accepts").incr();
                }
                SupervisorState::Reject => {
                    p2auth_obs::counter!("device.supervisor.rejects").incr();
                }
                _ => {
                    p2auth_obs::counter!("device.supervisor.aborts").incr();
                }
            }
            p2auth_obs::histogram!("device.supervisor.attempts").record(self.attempts() as u64);
        }
    }

    /// Backoff before the *next* re-prompt re-collects.
    fn backoff_s(&self) -> f64 {
        let exp = self.reprompts_used.saturating_sub(1);
        self.config.backoff_base_s * self.config.backoff_factor.powi(exp as i32)
    }

    /// Re-prompt if budget remains, otherwise take `exhausted`.
    fn reprompt_or(&mut self, exhausted: SupervisorState, now_s: f64, cause: &'static str) {
        if self.reprompts_used < self.config.max_reprompts {
            self.reprompts_used += 1;
            p2auth_obs::counter!("device.supervisor.reprompts").incr();
            p2auth_obs::event!(
                "device.supervisor",
                "reprompt",
                cause = cause,
                attempt = self.reprompts_used,
            );
            self.enter(SupervisorState::Reprompt, now_s);
        } else {
            p2auth_obs::event!(
                "device.supervisor",
                "reprompts_exhausted",
                cause = cause,
                terminal = exhausted.as_str(),
            );
            self.enter(exhausted, now_s);
        }
    }

    /// Advances the machine by one event at session time `now_s` and
    /// returns the resulting state.
    ///
    /// Deadlines are checked first: an expired non-terminal state
    /// consumes the step (watchdog abort, or backoff-complete
    /// re-collection for `Reprompt`) and the event — except that after
    /// a `Reprompt` expiry the event is delivered to the fresh
    /// `Collecting` state, so a driver may batch "backoff over" and
    /// "collection done" into one call. Events invalid in the current
    /// state are ignored; terminal states ignore everything.
    pub fn step(&mut self, event: SupervisorEvent, now_s: f64) -> SupervisorState {
        if self.state.is_terminal() {
            return self.state;
        }
        if let Some(deadline) = self.deadline_s {
            if now_s >= deadline {
                match self.state {
                    SupervisorState::Reprompt => {
                        // Backoff elapsed: re-collect, then let the
                        // event act on the new state.
                        self.enter(SupervisorState::Collecting, now_s);
                    }
                    SupervisorState::Collecting
                    | SupervisorState::Assessing
                    | SupervisorState::Deciding => {
                        p2auth_obs::counter!("device.supervisor.watchdog_fires").incr();
                        p2auth_obs::event!(
                            "device.supervisor",
                            "watchdog_abort",
                            state = self.state.as_str(),
                            deadline_s = deadline,
                            now_s = now_s,
                        );
                        self.enter(SupervisorState::Abort, now_s);
                        return self.state;
                    }
                    _ => {}
                }
            }
        }
        match (self.state, event) {
            (SupervisorState::Idle, SupervisorEvent::Start) => {
                p2auth_obs::counter!("device.supervisor.sessions").incr();
                self.enter(SupervisorState::Collecting, now_s);
            }
            (SupervisorState::Collecting, SupervisorEvent::CollectionComplete) => {
                self.enter(SupervisorState::Assessing, now_s);
            }
            (
                SupervisorState::Assessing,
                SupervisorEvent::AssessmentReady {
                    usable,
                    detected,
                    mean_sqi,
                },
            ) => {
                p2auth_obs::histogram!("device.supervisor.assessed_usable").record(usable as u64);
                if usable >= self.config.min_usable_keystrokes {
                    self.enter(SupervisorState::Deciding, now_s);
                } else {
                    p2auth_obs::event!(
                        "device.supervisor",
                        "assessment_poor",
                        usable = usable,
                        detected = detected,
                        mean_sqi = mean_sqi,
                    );
                    self.reprompt_or(SupervisorState::Abort, now_s, "assessment_poor");
                }
            }
            (SupervisorState::Assessing, SupervisorEvent::AssessmentFailed) => {
                p2auth_obs::event!("device.supervisor", "assessment_failed");
                self.enter(SupervisorState::Abort, now_s);
            }
            (SupervisorState::Deciding, SupervisorEvent::DecisionAccept) => {
                self.enter(SupervisorState::Accept, now_s);
            }
            (SupervisorState::Deciding, SupervisorEvent::DecisionReject { poor_signal }) => {
                if poor_signal {
                    self.reprompt_or(SupervisorState::Reject, now_s, "poor_signal_reject");
                } else {
                    p2auth_obs::event!("device.supervisor", "rejected");
                    self.enter(SupervisorState::Reject, now_s);
                }
            }
            (SupervisorState::Deciding, SupervisorEvent::DecisionAbort) => {
                p2auth_obs::event!("device.supervisor", "decision_abort");
                self.enter(SupervisorState::Abort, now_s);
            }
            // Ticks only matter to deadlines; anything else out of
            // place is ignored (drivers may race events past a
            // transition).
            _ => {}
        }
        self.state
    }
}

/// Result of [`run_supervised`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedOutcome {
    /// Terminal state the session ended in.
    pub state: SupervisorState,
    /// Collection attempts consumed (1 + re-prompts).
    pub attempts: u32,
    /// The last pipeline outcome, when a decision was reached.
    pub outcome: Option<SessionOutcome>,
}

impl SupervisedOutcome {
    /// Whether the session ended in `Accept`.
    #[must_use]
    pub fn accepted(&self) -> bool {
        self.state == SupervisorState::Accept
    }
}

/// Runs one supervised session under a deterministic virtual clock.
///
/// `attempt_fn` is called once per collection attempt (0-based) and
/// returns the attempt the wearable delivered, or `None` when
/// collection never completes — which exercises the watchdog: the
/// driver advances the clock past the collection deadline and the
/// session aborts instead of hanging.
///
/// Assessment uses [`P2Auth::assess_quality_arena`]; with SQI gating
/// disabled in the core config every detected keystroke counts as
/// usable, so the supervisor never re-prompts on quality grounds and
/// the flow reduces to plain [`crate::decide_session_arena`].
///
/// The profile is folded into a [`p2auth_core::ProfileArena`] once at
/// session start and every attempt is decided through the fused
/// transform-and-score hot path with a reused
/// [`p2auth_core::SessionScratch`] — bit-identical to deciding on the
/// profile directly, so the chaos and fault-matrix suites pin the
/// fused path too.
pub fn run_supervised<F>(
    system: &P2Auth,
    profile: &UserProfile,
    claimed_pin: Option<&Pin>,
    config: &SupervisorConfig,
    attempt_fn: F,
) -> SupervisedOutcome
where
    F: FnMut(u32) -> Option<(Recording, LinkQuality)>,
{
    run_supervised_observed(
        system,
        profile,
        claimed_pin,
        config,
        attempt_fn,
        &mut NoopObserver,
    )
}

/// [`run_supervised`] with a [`SessionObserver`] tap: identical flow
/// and bit-identical outcomes, but every supervisor step, quality
/// assessment and pipeline outcome is reported to `observer` as it
/// happens — the recording half of the event-sourced replay engine.
pub fn run_supervised_observed<F>(
    system: &P2Auth,
    profile: &UserProfile,
    claimed_pin: Option<&Pin>,
    config: &SupervisorConfig,
    mut attempt_fn: F,
    observer: &mut dyn SessionObserver,
) -> SupervisedOutcome
where
    F: FnMut(u32) -> Option<(Recording, LinkQuality)>,
{
    let _span = p2auth_obs::span!("device.supervisor");
    let arena = system.arena(profile);
    let mut scratch = p2auth_core::SessionScratch::new();
    let mut sup = SessionSupervisor::new(*config);
    let mut now = 0.0_f64;
    let mut last_outcome: Option<SessionOutcome> = None;
    // Every supervisor step flows through this macro so the observer
    // sees the exact from/event/to trace the machine executed.
    macro_rules! step {
        ($event:expr, $now:expr) => {{
            let event = $event;
            let from = sup.state();
            let to = sup.step(event, $now);
            observer.on_step(from, &event, to, $now, sup.deadline_s());
            to
        }};
    }
    step!(SupervisorEvent::Start, now);
    // Each loop iteration is one collection attempt; the machine's
    // re-prompt budget bounds the number of iterations.
    while !sup.state().is_terminal() {
        let attempt_no = sup.reprompts_used();
        match attempt_fn(attempt_no) {
            None => {
                // Collection hangs: advance past the deadline and let
                // the watchdog fire.
                #[allow(clippy::unwrap_used)]
                // INVARIANT: Collecting always carries a deadline (set
                // in `enter`), and the machine is in Collecting here.
                let deadline = sup.deadline_s().unwrap();
                now = deadline + 1e-3;
                step!(SupervisorEvent::Tick, now);
            }
            Some((recording, quality)) => {
                now += 2.0;
                step!(SupervisorEvent::CollectionComplete, now);
                now += 0.5;
                let assessment = system.assess_quality_arena(&arena, &recording);
                observer.on_assessment(attempt_no, assessment.as_ref().ok());
                let assess_event = match &assessment {
                    Ok(q) => {
                        let usable = if system.config().sqi_gating {
                            q.usable
                        } else {
                            q.detected
                        };
                        SupervisorEvent::AssessmentReady {
                            usable,
                            detected: q.detected,
                            mean_sqi: q.mean_sqi,
                        }
                    }
                    Err(_) => SupervisorEvent::AssessmentFailed,
                };
                step!(assess_event, now);
                if sup.state() == SupervisorState::Deciding {
                    now += 0.5;
                    let outcome = crate::decide_session_arena(
                        system,
                        &arena,
                        &mut scratch,
                        claimed_pin,
                        &recording,
                        quality,
                    );
                    observer.on_outcome(attempt_no, &outcome);
                    let event = match &outcome {
                        SessionOutcome::Abort { .. } => SupervisorEvent::DecisionAbort,
                        other => match other.decision() {
                            Some(d) if d.accepted => SupervisorEvent::DecisionAccept,
                            Some(d) => SupervisorEvent::DecisionReject {
                                poor_signal: d.reason == Some(RejectReason::PoorSignal),
                            },
                            None => SupervisorEvent::DecisionAbort,
                        },
                    };
                    last_outcome = Some(outcome);
                    step!(event, now);
                }
                if sup.state() == SupervisorState::Reprompt {
                    // Wait out the backoff, then re-collect.
                    #[allow(clippy::unwrap_used)]
                    // INVARIANT: Reprompt always carries a deadline.
                    let deadline = sup.deadline_s().unwrap();
                    now = deadline + 1e-3;
                    step!(SupervisorEvent::Tick, now);
                }
            }
        }
    }
    SupervisedOutcome {
        state: sup.state(),
        attempts: sup.attempts(),
        outcome: last_outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorConfig {
        SupervisorConfig::default()
    }

    fn ready(usable: usize) -> SupervisorEvent {
        SupervisorEvent::AssessmentReady {
            usable,
            detected: 4,
            mean_sqi: 0.8,
        }
    }

    #[test]
    fn happy_path_reaches_accept() {
        let mut s = SessionSupervisor::new(cfg());
        assert_eq!(
            s.step(SupervisorEvent::Start, 0.0),
            SupervisorState::Collecting
        );
        assert_eq!(
            s.step(SupervisorEvent::CollectionComplete, 1.0),
            SupervisorState::Assessing
        );
        assert_eq!(s.step(ready(4), 1.5), SupervisorState::Deciding);
        assert_eq!(
            s.step(SupervisorEvent::DecisionAccept, 2.0),
            SupervisorState::Accept
        );
        assert_eq!(s.attempts(), 1);
    }

    #[test]
    fn poor_assessment_reprompts_then_aborts() {
        let mut s = SessionSupervisor::new(cfg());
        let mut now = 0.0;
        s.step(SupervisorEvent::Start, now);
        for round in 0..=cfg().max_reprompts {
            now += 1.0;
            s.step(SupervisorEvent::CollectionComplete, now);
            now += 0.5;
            let state = s.step(ready(0), now);
            if round < cfg().max_reprompts {
                assert_eq!(state, SupervisorState::Reprompt, "round {round}");
                // Let the backoff expire.
                now = s.deadline_s().expect("reprompt has a deadline") + 0.001;
                assert_eq!(
                    s.step(SupervisorEvent::Tick, now),
                    SupervisorState::Collecting
                );
            } else {
                assert_eq!(state, SupervisorState::Abort, "budget exhausted");
            }
        }
        assert_eq!(s.attempts(), 1 + cfg().max_reprompts);
    }

    #[test]
    fn poor_signal_reject_reprompts_but_real_reject_is_final() {
        // Poor signal in Deciding consumes a re-prompt...
        let mut s = SessionSupervisor::new(cfg());
        s.step(SupervisorEvent::Start, 0.0);
        s.step(SupervisorEvent::CollectionComplete, 1.0);
        s.step(ready(4), 1.5);
        assert_eq!(
            s.step(SupervisorEvent::DecisionReject { poor_signal: true }, 2.0),
            SupervisorState::Reprompt
        );
        // ...while a biometric mismatch ends the session immediately.
        let mut s2 = SessionSupervisor::new(cfg());
        s2.step(SupervisorEvent::Start, 0.0);
        s2.step(SupervisorEvent::CollectionComplete, 1.0);
        s2.step(ready(4), 1.5);
        assert_eq!(
            s2.step(SupervisorEvent::DecisionReject { poor_signal: false }, 2.0),
            SupervisorState::Reject
        );
    }

    #[test]
    fn watchdog_aborts_every_deadlined_state() {
        // Collecting.
        let mut s = SessionSupervisor::new(cfg());
        s.step(SupervisorEvent::Start, 0.0);
        assert_eq!(
            s.step(SupervisorEvent::Tick, cfg().collect_deadline_s + 0.1),
            SupervisorState::Abort
        );
        // Assessing.
        let mut s = SessionSupervisor::new(cfg());
        s.step(SupervisorEvent::Start, 0.0);
        s.step(SupervisorEvent::CollectionComplete, 1.0);
        assert_eq!(
            s.step(SupervisorEvent::Tick, 1.0 + cfg().assess_deadline_s + 0.1),
            SupervisorState::Abort
        );
        // Deciding — even if the decision arrives with the tick, the
        // expiry wins.
        let mut s = SessionSupervisor::new(cfg());
        s.step(SupervisorEvent::Start, 0.0);
        s.step(SupervisorEvent::CollectionComplete, 1.0);
        s.step(ready(4), 1.5);
        assert_eq!(
            s.step(
                SupervisorEvent::DecisionAccept,
                1.5 + cfg().decide_deadline_s + 0.1
            ),
            SupervisorState::Abort,
            "a decision after the deadline must not be honoured"
        );
    }

    #[test]
    fn backoff_grows_exponentially() {
        let mut s = SessionSupervisor::new(cfg());
        s.step(SupervisorEvent::Start, 0.0);
        s.step(SupervisorEvent::CollectionComplete, 1.0);
        s.step(ready(0), 1.5);
        let first = s.deadline_s().expect("deadline") - 1.5;
        assert!((first - cfg().backoff_base_s).abs() < 1e-9);
        let deadline = s.deadline_s().expect("deadline");
        s.step(SupervisorEvent::Tick, deadline + 0.001);
        s.step(SupervisorEvent::CollectionComplete, deadline + 1.0);
        let t2 = deadline + 1.5;
        s.step(ready(0), t2);
        let second = s.deadline_s().expect("deadline") - t2;
        assert!(
            (second - cfg().backoff_base_s * cfg().backoff_factor).abs() < 1e-9,
            "second backoff {second} must scale by the factor"
        );
    }

    /// Exhaustive state × event sweep: from any state, any event either
    /// moves to a legal successor or leaves the state unchanged — and
    /// `Accept` is reachable only from `Deciding` via `DecisionAccept`.
    #[test]
    fn exhaustive_transition_table_is_closed() {
        let states = [
            SupervisorState::Idle,
            SupervisorState::Collecting,
            SupervisorState::Assessing,
            SupervisorState::Deciding,
            SupervisorState::Reprompt,
            SupervisorState::Accept,
            SupervisorState::Reject,
            SupervisorState::Abort,
        ];
        let events = [
            SupervisorEvent::Start,
            SupervisorEvent::CollectionComplete,
            ready(0),
            ready(4),
            SupervisorEvent::AssessmentFailed,
            SupervisorEvent::DecisionAccept,
            SupervisorEvent::DecisionReject { poor_signal: true },
            SupervisorEvent::DecisionReject { poor_signal: false },
            SupervisorEvent::DecisionAbort,
            SupervisorEvent::Tick,
        ];
        for &state in &states {
            for &event in &events {
                let mut s = SessionSupervisor::new(cfg());
                s.state = state;
                // Mid-deadline, so only the event matters.
                s.deadline_s = if state.is_terminal() || state == SupervisorState::Idle {
                    None
                } else {
                    Some(100.0)
                };
                let next = s.step(event, 50.0);
                if state.is_terminal() {
                    assert_eq!(next, state, "terminal {state} must absorb {event:?}");
                }
                if next == SupervisorState::Accept && state != SupervisorState::Accept {
                    assert_eq!(
                        (state, event),
                        (SupervisorState::Deciding, SupervisorEvent::DecisionAccept),
                        "the only edge into Accept is Deciding + DecisionAccept"
                    );
                }
                // The machine must always produce a known state.
                assert!(states.contains(&next));
            }
        }
    }

    /// ISSUE 8 regression: one supervisor recycled through 3 sessions
    /// from a pool, under a shared monotonic clock that keeps advancing
    /// across sessions. Stale deadlines or a carried-over re-prompt
    /// budget would abort session 2 or 3 spuriously.
    #[test]
    fn recycled_supervisor_runs_three_sessions_on_a_shared_clock() {
        let mut s = SessionSupervisor::new(cfg());
        // Session start times far apart — each later than the previous
        // session's deadlines, so any stale deadline would fire at the
        // first step of the next session.
        for (round, start) in [0.0_f64, 1.0e6, 2.0e6].iter().enumerate() {
            s.reset();
            assert_eq!(s.state(), SupervisorState::Idle);
            assert_eq!(s.deadline_s(), None, "reset must clear the stale deadline");
            assert_eq!(s.reprompts_used(), 0, "reset must restore the budget");
            let now = *start;
            assert_eq!(
                s.step(SupervisorEvent::Start, now),
                SupervisorState::Collecting,
                "session {round} must start clean, not watchdog-abort"
            );
            // The new deadline is relative to the *current* clock, not
            // the epoch of the first session.
            let dl = s.deadline_s().expect("collecting has a deadline");
            assert!((dl - (now + cfg().collect_deadline_s)).abs() < 1e-9);
            s.step(SupervisorEvent::CollectionComplete, now + 1.0);
            // Burn one re-prompt in every session: a carried-over
            // budget would exhaust by session 3.
            assert_eq!(
                s.step(ready(0), now + 1.5),
                SupervisorState::Reprompt,
                "session {round} must have its full re-prompt budget"
            );
            let backoff_dl = s.deadline_s().expect("reprompt has a deadline");
            assert!(
                (backoff_dl - (now + 1.5 + cfg().backoff_base_s)).abs() < 1e-9,
                "first backoff of a recycled session must restart at base"
            );
            s.step(SupervisorEvent::Tick, backoff_dl + 0.001);
            s.step(SupervisorEvent::CollectionComplete, backoff_dl + 1.0);
            s.step(ready(4), backoff_dl + 1.5);
            assert_eq!(
                s.step(SupervisorEvent::DecisionAccept, backoff_dl + 2.0),
                SupervisorState::Accept,
                "session {round} must complete"
            );
            assert_eq!(s.attempts(), 2);
        }
    }

    /// ISSUE 8 regression: deadline arithmetic must stay finite when
    /// the shared clock is huge or the backoff overflows — an infinite
    /// deadline is a hang, never reachable by any clock.
    #[test]
    fn deadlines_stay_finite_under_extreme_clocks() {
        // Shared clock near the top of the f64 range: now + 30 rounds
        // to +inf territory only at f64::MAX, the worst case.
        let mut s = SessionSupervisor::new(cfg());
        s.step(SupervisorEvent::Start, f64::MAX);
        let dl = s.deadline_s().expect("deadline");
        assert!(dl.is_finite(), "deadline overflowed to non-finite");
        // Time alone can still end the session.
        assert_eq!(
            s.step(SupervisorEvent::Tick, f64::MAX),
            SupervisorState::Abort
        );

        // Backoff overflow: with an absurd base × factor the second
        // re-prompt's powi product is +inf. The deadline must clamp to
        // a finite value, and ticking at that value must make progress
        // (re-collect) instead of wedging.
        let big = SupervisorConfig {
            backoff_base_s: f64::MAX,
            backoff_factor: f64::MAX,
            ..cfg()
        };
        let mut s = SessionSupervisor::new(big);
        s.state = SupervisorState::Assessing;
        s.deadline_s = Some(100.0);
        s.reprompts_used = 1; // next backoff uses factor^1: MAX * MAX = inf
        assert_eq!(s.step(ready(0), 50.0), SupervisorState::Reprompt);
        let dl = s.deadline_s().expect("deadline");
        assert!(dl.is_finite(), "backoff deadline overflowed to non-finite");
        assert_eq!(
            s.step(SupervisorEvent::Tick, dl),
            SupervisorState::Collecting,
            "a finite deadline is reachable: the backoff completes"
        );
    }

    /// Seeded pseudo-random event storms always terminate or stay in a
    /// non-terminal state with a live deadline — a supervisor can never
    /// wedge in a state time cannot leave.
    #[test]
    fn random_event_storms_cannot_wedge_the_machine() {
        let events = [
            SupervisorEvent::Start,
            SupervisorEvent::CollectionComplete,
            ready(0),
            ready(4),
            SupervisorEvent::AssessmentFailed,
            SupervisorEvent::DecisionAccept,
            SupervisorEvent::DecisionReject { poor_signal: true },
            SupervisorEvent::DecisionReject { poor_signal: false },
            SupervisorEvent::DecisionAbort,
            SupervisorEvent::Tick,
        ];
        for seed in 0..50_u64 {
            let mut s = SessionSupervisor::new(cfg());
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut now = 0.0;
            for _ in 0..200 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                now += (x % 7) as f64;
                let ev = events[(x % events.len() as u64) as usize];
                s.step(ev, now);
                if s.state().is_terminal() {
                    break;
                }
                assert!(
                    s.state() == SupervisorState::Idle || s.deadline_s().is_some(),
                    "every in-flight state must carry a deadline (seed {seed})"
                );
            }
            // Time alone must be able to finish whatever remains.
            if !s.state().is_terminal() && s.state() != SupervisorState::Idle {
                let mut guard = 0;
                while !s.state().is_terminal() {
                    let deadline = s.deadline_s().expect("deadline present");
                    now = deadline + 0.001;
                    s.step(SupervisorEvent::Tick, now);
                    guard += 1;
                    assert!(guard < 10, "ticking past deadlines must terminate");
                }
            }
        }
    }
}
