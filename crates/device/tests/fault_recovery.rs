//! End-to-end fault-injection tests for the reliable transport and the
//! coverage-gated decision policy.
//!
//! The CI fault matrix drives these across seeds and loss rates via
//! `P2AUTH_FAULT_SEED` and `P2AUTH_FAULT_LOSS` (defaults: seed 1, loss
//! 0.02). Everything is deterministic for a given pair, so a matrix
//! cell that passes once passes forever.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, UserProfile};
use p2auth_device::clock::VirtualClock;
use p2auth_device::host::transmit;
use p2auth_device::{
    decide_session, transmit_reliable, FaultConfig, FaultyLink, Link, LinkConfig, ReliableConfig,
    SessionOutcome, WearableDevice,
};
use p2auth_sim::{Population, PopulationConfig, Recording, SessionConfig};
use std::sync::OnceLock;

fn env_seed() -> u64 {
    std::env::var("P2AUTH_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn env_loss() -> f64 {
    std::env::var("P2AUTH_FAULT_LOSS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.02)
}

fn device() -> WearableDevice {
    WearableDevice::new(VirtualClock::new(0.4, 20.0))
}

fn key_link_config() -> LinkConfig {
    LinkConfig {
        seed: 0x4b,
        ..LinkConfig::default()
    }
}

fn faults(loss: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        drop_rate: loss,
        corrupt_rate: loss / 4.0,
        seed,
        ..FaultConfig::default()
    }
}

struct Setup {
    system: P2Auth,
    profile: UserProfile,
    pop: Population,
    session: SessionConfig,
    pin: Pin,
}

/// One enrollment (reduced feature budget) shared across the tests that
/// need decisions, not just transfers.
fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let pop = Population::generate(&PopulationConfig {
            num_users: 4,
            seed: 0xfa_0175,
            ..Default::default()
        });
        let session = SessionConfig::default();
        let pin = Pin::new("1628").unwrap();
        let system = P2Auth::new(P2AuthConfig::fast());
        let enroll: Vec<Recording> = (0..6)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
            .collect();
        let third: Vec<Recording> = (0..12)
            .map(|i| {
                let other = 1 + (i as usize % 3);
                pop.record_entry(other, &pin, HandMode::OneHanded, &session, 500 + i)
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third).expect("enrollment");
        Setup {
            system,
            profile,
            pop,
            session,
            pin,
        }
    })
}

fn sample(nonce: u64) -> Recording {
    let s = setup();
    s.pop
        .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 7000 + nonce)
}

#[test]
fn clean_reliable_channel_matches_plain_transmit() {
    let rec = sample(0);
    let dev = device();

    let mut data = Link::new(LinkConfig::default());
    let mut keys = Link::new(key_link_config());
    let plain = transmit(&rec, &dev, &mut data, &mut keys).expect("plain transmit");

    let mut data = FaultyLink::perfect(LinkConfig::default());
    let mut keys = FaultyLink::perfect(key_link_config());
    let (result, stats) =
        transmit_reliable(&rec, &dev, &mut data, &mut keys, &ReliableConfig::default());
    let (reliable, quality) = result.expect("clean channel");

    // Zero fault rates: the ARQ layer must be invisible — identical
    // reassembly, full coverage, no recovery machinery engaged.
    assert_eq!(reliable, plain);
    let coverage = quality.coverage;
    assert!((coverage - 1.0).abs() < 1e-12, "coverage {coverage}");
    assert_eq!(quality.gap_blocks, 0);
    assert_eq!(stats.delivered_unique, stats.data_packets);
    assert_eq!(stats.retransmissions, 0);
    assert_eq!(stats.nacks_sent, 0);
    assert_eq!(stats.corrupt_discarded, 0);
    assert_eq!(stats.gaps_abandoned, 0);
    assert!(stats.forward_bytes > 0);
    assert_eq!(stats.reverse_bytes, 0, "no NACK traffic on a clean link");
}

#[test]
fn recovery_at_the_configured_fault_rate() {
    let loss = env_loss();
    let seed = env_seed();
    let dev = device();

    let mut ok_covered = 0_usize;
    let mut total_nacks = 0_usize;
    for i in 0..3_u64 {
        let rec = sample(100 + i);
        let mut data = FaultyLink::new(LinkConfig::default(), faults(loss, seed * 101 + i));
        let mut keys = FaultyLink::new(key_link_config(), faults(loss, seed * 211 + i));
        let (result, stats) =
            transmit_reliable(&rec, &dev, &mut data, &mut keys, &ReliableConfig::default());
        total_nacks += stats.nacks_sent;
        match result {
            Ok((rebuilt, quality)) => {
                let coverage = quality.coverage;
                assert_eq!(rebuilt.validate(), Ok(()));
                if coverage >= 0.9 {
                    ok_covered += 1;
                }
                if loss == 0.0 {
                    assert!((coverage - 1.0).abs() < 1e-12);
                    assert_eq!(stats.retransmissions, 0);
                } else if loss <= 0.05 {
                    assert!(coverage >= 0.95, "coverage {coverage} at loss {loss}");
                }
            }
            Err(e) => assert!(loss > 0.05, "transfer failed at loss {loss}: {e}"),
        }
    }
    if loss == 0.0 {
        assert_eq!(total_nacks, 0);
    } else {
        // Hundreds of packets per session: some loss is certain, so the
        // recovery machinery must have engaged.
        assert!(total_nacks > 0, "no NACKs at loss {loss}");
    }
    // Recovery keeps coverage high: with bounded retries the protocol
    // should save nearly every session even at the top matrix rate.
    assert!(
        ok_covered >= 2,
        "only {ok_covered}/3 sessions reached 0.9 coverage at loss {loss}"
    );
}

#[test]
fn same_seed_replays_byte_identical_traffic_and_decisions() {
    let s = setup();
    let seed = env_seed();
    let dev = device();
    let rec = sample(200);

    let run = || {
        let mut data = FaultyLink::new(LinkConfig::default(), faults(0.04, seed * 17 + 3));
        let mut keys = FaultyLink::new(key_link_config(), faults(0.04, seed * 17 + 4));
        let (result, stats) =
            transmit_reliable(&rec, &dev, &mut data, &mut keys, &ReliableConfig::default());
        let outcome = result.as_ref().ok().map(|(rebuilt, quality)| {
            decide_session(&s.system, &s.profile, Some(&s.pin), rebuilt, *quality)
        });
        (result, stats, outcome)
    };
    let (result_a, stats_a, outcome_a) = run();
    let (result_b, stats_b, outcome_b) = run();

    // The wire digests cover every byte offered to the links in order,
    // so equal stats mean the two sessions exchanged identical traffic.
    assert_eq!(stats_a, stats_b);
    assert!(stats_a.forward_bytes > 0);
    match (result_a, result_b) {
        (Ok((rec_a, qual_a)), Ok((rec_b, qual_b))) => {
            assert_eq!(rec_a, rec_b);
            assert_eq!(qual_a, qual_b);
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("replay diverged: {a:?} vs {b:?}"),
    }
    assert_eq!(outcome_a, outcome_b, "auth decisions must replay");
}

#[test]
fn unrecovered_loss_falls_back_to_the_degraded_policy() {
    let s = setup();
    let dev = device();
    let rec = sample(300);

    // Recovery disabled and a heavily lossy data link (keys perfect, so
    // assembly itself survives): coverage lands well under the 0.9
    // gate and the PIN-only fallback decides.
    let no_recovery = ReliableConfig {
        max_nacks: 0,
        max_retries: 0,
        ..ReliableConfig::default()
    };
    let mut data = FaultyLink::new(LinkConfig::default(), faults(0.25, env_seed() * 31 + 7));
    let mut keys = FaultyLink::perfect(key_link_config());
    let (result, stats) = transmit_reliable(&rec, &dev, &mut data, &mut keys, &no_recovery);
    assert_eq!(stats.retransmissions, 0);
    let (rebuilt, quality) = result.expect("degraded assembly still yields a recording");
    let coverage = quality.coverage;
    assert!(coverage < 0.9, "coverage {coverage} should be degraded");
    assert!(quality.gap_blocks > 0, "unrecovered loss must leave gaps");

    match decide_session(&s.system, &s.profile, Some(&s.pin), &rebuilt, quality) {
        SessionOutcome::Degraded {
            decision,
            coverage: c,
            gap_blocks,
        } => {
            assert!(decision.accepted, "correct PIN passes the fallback");
            assert_eq!(decision.score, 0.0, "no biometric evidence");
            assert_eq!(c, coverage);
            assert_eq!(
                gap_blocks, quality.gap_blocks,
                "outcome records the gap count"
            );
        }
        other => panic!("expected a degraded outcome, got {other:?}"),
    }

    let wrong = Pin::new("9999").unwrap();
    let outcome = decide_session(&s.system, &s.profile, Some(&wrong), &rebuilt, quality);
    assert!(
        !outcome.accepted(),
        "wrong PIN must fail the degraded fallback"
    );
}
