//! Flight-recorder post-mortems on the device auth path.
//!
//! Acceptance test for the observability layer: after a session ends in
//! [`SessionOutcome::Abort`], the flight recorder must hold the last
//! [`p2auth_obs::recorder::CAPACITY`] structured events — at least 64 —
//! spanning the link and decision stages, with the degradation reason
//! attached to the final event.
//!
//! Compiles to nothing without the `obs` feature (the recorder is an
//! inert no-op there, so there is nothing to assert).
#![cfg(feature = "obs")]

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, Recording};
use p2auth_device::clock::VirtualClock;
use p2auth_device::{
    decide_session, transmit_reliable, FaultConfig, FaultyLink, LinkConfig, ReliableConfig,
    SessionOutcome, WearableDevice,
};
use p2auth_obs::recorder;
use p2auth_obs::Value;
use p2auth_sim::{Population, PopulationConfig, SessionConfig};

#[test]
fn abort_dump_holds_recent_structured_events_with_reasons() {
    let pop = Population::generate(&PopulationConfig {
        num_users: 4,
        seed: 0xfa_0175,
        ..Default::default()
    });
    let session = SessionConfig::default();
    let pin = Pin::new("1628").unwrap();
    let system = P2Auth::new(P2AuthConfig::fast());
    let enroll: Vec<Recording> = (0..6)
        .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, i))
        .collect();
    let third: Vec<Recording> = (0..12)
        .map(|i| {
            pop.record_entry(
                1 + (i as usize % 3),
                &pin,
                HandMode::OneHanded,
                &session,
                500 + i,
            )
        })
        .collect();
    let profile = system.enroll(&pin, &enroll, &third).expect("enrollment");

    // Start the post-mortem window at the session boundary, then stream
    // one authentication over a 2% lossy link: every frame fed, every
    // NACK and retransmission lands in the ring. The loss realization is
    // RNG-backend-sensitive, so scan seeds for a recovered transfer.
    let rec = pop.record_entry(0, &pin, HandMode::OneHanded, &session, 7000);
    let dev = WearableDevice::new(VirtualClock::new(0.4, 20.0));
    let mut recovered = None;
    for seed in 1..=20_u64 {
        p2auth_obs::reset();
        let faults = FaultConfig {
            drop_rate: 0.02,
            corrupt_rate: 0.005,
            seed,
            ..FaultConfig::default()
        };
        let mut data = FaultyLink::new(LinkConfig::default(), faults);
        let mut keys = FaultyLink::new(
            LinkConfig {
                seed: 0x4b,
                ..LinkConfig::default()
            },
            FaultConfig {
                seed: seed + 1000,
                ..faults
            },
        );
        let (result, _stats) =
            transmit_reliable(&rec, &dev, &mut data, &mut keys, &ReliableConfig::default());
        if let Ok(pair) = result {
            recovered = Some(pair);
            break;
        }
    }
    let (rebuilt, quality) = recovered.expect("some 2% loss realization recovers");

    // Corrupt the assembled recording so evaluation fails: the decision
    // layer must convert the error into an Abort and log why.
    let mut bad = rebuilt;
    bad.ppg.clear();
    let outcome = decide_session(&system, &profile, Some(&pin), &bad, quality);
    let SessionOutcome::Abort {
        reason,
        coverage,
        gap_blocks,
    } = outcome
    else {
        panic!("invalid recording must abort, got {outcome:?}");
    };
    assert!(reason.contains("PPG"), "reason names the cause: {reason}");
    assert!(coverage > 0.9, "link itself was healthy");

    // The dump: a full ring (hundreds of frames streamed), ending in
    // the abort event that carries the degradation-reason fields.
    let events = recorder::snapshot();
    assert!(
        events.len() >= 64,
        "post-mortem needs history, got {} events",
        events.len()
    );
    assert_eq!(events.len(), recorder::CAPACITY, "ring wrapped");
    let stages: std::collections::BTreeSet<&str> = events.iter().map(|e| e.stage).collect();
    assert!(stages.contains("device.host"), "link stage present");
    assert!(stages.contains("device.session"), "decision stage present");

    let last = events.last().expect("non-empty dump");
    assert_eq!((last.stage, last.label), ("device.session", "abort"));
    let field = |k: &str| last.fields.iter().find(|(n, _)| *n == k).map(|(_, v)| v);
    assert_eq!(field("coverage"), Some(&Value::F64(quality.coverage)));
    assert_eq!(
        field("gap_blocks"),
        Some(&Value::U64(gap_blocks as u64)),
        "abort event records the gap count"
    );
    match field("reason") {
        Some(Value::Text(r)) => assert_eq!(*r, reason),
        other => panic!("abort event must carry the reason, got {other:?}"),
    }

    // The rendered dump is what an operator sees on AuthError.
    let dump = recorder::render_dump(&events, 64);
    assert_eq!(dump.lines().count(), 64 + 1, "64 events plus elision line");
    let last_line = dump.lines().last().unwrap();
    assert!(last_line.contains("device.session"), "dump:\n{dump}");
    assert!(last_line.contains("abort"), "dump:\n{dump}");
    assert!(last_line.contains("reason="), "dump:\n{dump}");
}
