//! Property tests for the acquisition wire format: arbitrary frames
//! round-trip, arbitrary corruption is detected, arbitrary garbage
//! never panics the decoder.

use p2auth_device::frame::{crc32, resync_offset, Frame, FrameError};
use p2auth_device::{Link, LinkConfig};
use proptest::prelude::*;

fn arb_samples() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1000.0_f32..1000.0, 0..200)
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u8>(), any::<u32>(), arb_samples()).prop_map(|(channel, seq, samples)| Frame::Ppg {
            channel,
            seq,
            samples
        }),
        (0_u8..3, any::<u32>(), arb_samples()).prop_map(|(axis, seq, samples)| Frame::Accel {
            axis,
            seq,
            samples
        }),
        (any::<u8>(), 0_u8..10, any::<u64>()).prop_map(|(index, digit, t_phone_us)| Frame::Key {
            index,
            digit,
            t_phone_us
        }),
        (
            prop::collection::vec(any::<u32>(), 0..10),
            prop::collection::vec(any::<bool>(), 0..10),
            any::<bool>()
        )
            .prop_map(
                |(true_key_times, watch_hand, one_handed)| Frame::SessionEnd {
                    true_key_times,
                    watch_hand,
                    one_handed,
                }
            ),
    ]
}

proptest! {
    #[test]
    fn round_trip(frame in arb_frame()) {
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("decode");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
    }

    #[test]
    fn single_byte_corruption_never_decodes_to_a_different_frame(
        frame in arb_frame(),
        pos_sel in any::<prop::sample::Index>(),
        bit in 0_u8..8,
    ) {
        let bytes = frame.encode().to_vec();
        let pos = pos_sel.index(bytes.len());
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 1 << bit;
        match Frame::decode(&corrupted) {
            // Either the corruption is detected...
            Err(_) => {}
            // ...or (CRC collision is practically impossible for a
            // single bit flip) the decode must not silently differ.
            Ok((f, _)) => prop_assert_eq!(f, frame),
        }
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn truncation_reported(frame in arb_frame(), cut_sel in any::<prop::sample::Index>()) {
        let bytes = frame.encode();
        let cut = cut_sel.index(bytes.len().max(1));
        if cut < bytes.len() {
            let detected = matches!(
                Frame::decode(&bytes[..cut]),
                Err(FrameError::Truncated) | Err(FrameError::Oversized { .. })
            );
            prop_assert!(detected);
        }
    }

    #[test]
    fn crc_detects_any_single_flip(data in prop::collection::vec(any::<u8>(), 1..64),
                                   pos_sel in any::<prop::sample::Index>(),
                                   bit in 0_u8..8) {
        let pos = pos_sel.index(data.len());
        let mut flipped = data.clone();
        flipped[pos] ^= 1 << bit;
        prop_assert_ne!(crc32(&data), crc32(&flipped));
    }

    #[test]
    fn resync_offset_always_advances_to_a_magic_or_the_end(
        bytes in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let off = resync_offset(&bytes);
        prop_assert!(off >= 1, "must advance past the bad byte");
        prop_assert!(off <= bytes.len());
        for &b in &bytes[1..off] {
            prop_assert_ne!(b, 0xA5, "skipped a candidate magic");
        }
        if off < bytes.len() {
            prop_assert_eq!(bytes[off], 0xA5);
        }
    }

    #[test]
    fn garbage_prefix_is_skipped_by_resync(
        frame in arb_frame(),
        prefix in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // A prefix free of the magic byte: a pure garbage burst before
        // a well-formed frame, as a corrupted link would produce.
        let prefix: Vec<u8> = prefix
            .into_iter()
            .map(|b| if b == 0xA5 { 0xA4 } else { b })
            .collect();
        let mut buf = prefix.clone();
        buf.extend_from_slice(&frame.encode());
        let mut at = 0;
        let mut recovered = None;
        while at < buf.len() {
            match Frame::decode(&buf[at..]) {
                Ok((f, used)) => {
                    recovered = Some((f, at));
                    at += used;
                }
                Err(e) if e.needs_more_data() => break,
                Err(_) => {
                    let off = resync_offset(&buf[at..]);
                    prop_assert!(off >= 1, "resync must advance");
                    at += off;
                }
            }
        }
        prop_assert_eq!(recovered, Some((frame, prefix.len())));
    }

    #[test]
    fn corrupted_stream_never_yields_phantom_frames(
        f1 in arb_frame(),
        f2 in arb_frame(),
        pos_sel in any::<prop::sample::Index>(),
        bit in 0_u8..8,
    ) {
        // Flip one bit inside the first of two back-to-back frames and
        // scan with the decode/resync loop: it must terminate without
        // panicking and never produce a frame that was never sent. (It
        // may legitimately stall on a length field that now points past
        // the buffer — a live host resolves that with a timeout.)
        let mut buf = f1.encode().to_vec();
        let cut = buf.len();
        buf.extend_from_slice(&f2.encode());
        let pos = pos_sel.index(cut);
        buf[pos] ^= 1 << bit;
        let mut at = 0;
        let mut decoded = Vec::new();
        while at < buf.len() {
            match Frame::decode(&buf[at..]) {
                Ok((f, used)) => {
                    prop_assert!(used >= 1);
                    decoded.push(f);
                    at += used;
                }
                Err(e) if e.needs_more_data() => break,
                Err(_) => {
                    let off = resync_offset(&buf[at..]);
                    prop_assert!(off >= 1 && off <= buf.len() - at);
                    at += off;
                }
            }
        }
        for f in decoded {
            prop_assert!(f == f1 || f == f2, "phantom frame decoded");
        }
    }

    #[test]
    fn link_is_fifo_for_any_send_pattern(
        sends in prop::collection::vec(0.0_f64..100.0, 1..50),
        seed in any::<u64>(),
    ) {
        let mut sorted = sends.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut link = Link::new(LinkConfig { seed, ..LinkConfig::default() });
        let mut prev = f64::NEG_INFINITY;
        for t in sorted {
            let a = link.deliver(t);
            prop_assert!(a >= prev);
            prop_assert!(a >= t);
            prev = a;
        }
    }
}
