//! Chaos matrix for supervised sessions: sensor faults, link faults,
//! or both at once, swept by CI across seeds via `P2AUTH_CHAOS_MODE`
//! (`sensor` | `link` | `both`, default `both`) and
//! `P2AUTH_CHAOS_SEED` (default 1).
//!
//! The invariants enforced in every cell:
//!
//! * a zero-rate sensor-fault config is bit-identical to the clean
//!   path,
//! * the whole chaos pipeline replays deterministically — same seed,
//!   same outcomes, same SQI values,
//! * supervised sessions always terminate within the re-prompt budget,
//! * on clean input, SQI gating changes no decision.

use p2auth_core::{HandMode, P2Auth, P2AuthConfig, Pin, UserProfile};
use p2auth_device::clock::VirtualClock;
use p2auth_device::host::LinkQuality;
use p2auth_device::{
    run_supervised, transmit_reliable, FaultConfig, FaultyLink, LinkConfig, ReliableConfig,
    SupervisedOutcome, SupervisorConfig, WearableDevice,
};
use p2auth_sim::{
    inject_sensor_faults, Population, PopulationConfig, Recording, SensorFaultConfig, SessionConfig,
};
use std::sync::OnceLock;

fn chaos_mode() -> String {
    std::env::var("P2AUTH_CHAOS_MODE").unwrap_or_else(|_| "both".to_string())
}

fn chaos_seed() -> u64 {
    std::env::var("P2AUTH_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn sensor_active() -> bool {
    matches!(chaos_mode().as_str(), "sensor" | "both")
}

fn link_active() -> bool {
    matches!(chaos_mode().as_str(), "link" | "both")
}

/// A moderate multi-family sensor fault mix for the chaos runs.
fn sensor_faults(seed: u64) -> SensorFaultConfig {
    SensorFaultConfig {
        motion_rate_hz: 0.25,
        saturation_rate_hz: 0.3,
        dropout_rate_hz: 0.5,
        seed,
        ..SensorFaultConfig::default()
    }
}

fn perfect_link() -> LinkQuality {
    LinkQuality {
        coverage: 1.0,
        expected_blocks: 1,
        received_blocks: 1,
        gap_blocks: 0,
    }
}

struct Setup {
    system: P2Auth,
    profile: UserProfile,
    pop: Population,
    session: SessionConfig,
    pin: Pin,
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(|| {
        let pop = Population::generate(&PopulationConfig {
            num_users: 4,
            seed: 811,
            ..Default::default()
        });
        let pin = Pin::new("1628").unwrap();
        let session = SessionConfig::default();
        let system = P2Auth::new(P2AuthConfig::fast());
        let enroll: Vec<_> = (0..6)
            .map(|i| pop.record_entry(0, &pin, HandMode::OneHanded, &session, 40 + i))
            .collect();
        let third: Vec<_> = (0..12)
            .map(|i| {
                pop.record_entry(
                    1 + (i as usize % 3),
                    &pin,
                    HandMode::OneHanded,
                    &session,
                    70 + i,
                )
            })
            .collect();
        let profile = system.enroll(&pin, &enroll, &third).unwrap();
        Setup {
            system,
            profile,
            pop,
            session,
            pin,
        }
    })
}

/// One acquisition under the active chaos mode: sensor faults degrade
/// what the ADC sampled, link faults degrade what the host received.
/// `None` models a transfer the recovery layer could not complete.
fn acquire(rec: &Recording, seed: u64, nonce: u64) -> Option<(Recording, LinkQuality)> {
    let sampled = if sensor_active() {
        inject_sensor_faults(rec, &sensor_faults(seed), nonce).0
    } else {
        rec.clone()
    };
    if !link_active() {
        return Some((sampled, perfect_link()));
    }
    let device = WearableDevice::new(VirtualClock::new(0.4, 20.0));
    let faults = FaultConfig {
        drop_rate: 0.05,
        corrupt_rate: 0.0125,
        seed: seed ^ (nonce << 8),
        ..FaultConfig::default()
    };
    let mut data = FaultyLink::new(LinkConfig::default(), faults);
    let mut keys = FaultyLink::new(
        LinkConfig {
            seed: 0x4b,
            ..LinkConfig::default()
        },
        FaultConfig {
            seed: faults.seed ^ 0x1234,
            ..faults
        },
    );
    let (result, _stats) = transmit_reliable(
        &sampled,
        &device,
        &mut data,
        &mut keys,
        &ReliableConfig::default(),
    );
    result.ok()
}

fn run_session(s: &Setup, rec: &Recording, seed: u64) -> SupervisedOutcome {
    run_supervised(
        &s.system,
        &s.profile,
        Some(&s.pin),
        &SupervisorConfig::default(),
        |attempt| acquire(rec, seed, u64::from(attempt)),
    )
}

#[test]
fn zero_rate_sensor_faults_are_bit_identical() {
    let s = setup();
    let rec = s
        .pop
        .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 600);
    let zero = SensorFaultConfig::default();
    assert!(!zero.is_active());
    let (out, stats) = inject_sensor_faults(&rec, &zero, chaos_seed());
    assert_eq!(out, rec, "zero-rate injector must be a no-op");
    assert!(!stats.any());
    // And the decision downstream is byte-for-byte the clean one.
    let d_clean = s.system.authenticate(&s.profile, &s.pin, &rec).unwrap();
    let d_zero = s.system.authenticate(&s.profile, &s.pin, &out).unwrap();
    assert_eq!(d_clean, d_zero);
}

#[test]
fn chaos_replays_deterministically() {
    let s = setup();
    let seed = chaos_seed();
    for n in 0..2_u64 {
        let legit = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 610 + n);
        let a = run_session(s, &legit, seed);
        let b = run_session(s, &legit, seed);
        assert_eq!(a.state, b.state, "session {n}: outcome state must replay");
        assert_eq!(a.attempts, b.attempts, "session {n}: attempts must replay");
        assert_eq!(a.outcome, b.outcome, "session {n}: decisions must replay");
        // SQI values replay exactly, not just approximately.
        if let Some((deg_a, _)) = acquire(&legit, seed, 0) {
            let (deg_b, _) = acquire(&legit, seed, 0).unwrap();
            assert_eq!(deg_a, deg_b, "degraded recording must replay");
            let qa = s.system.assess_quality(&s.profile, &deg_a);
            let qb = s.system.assess_quality(&s.profile, &deg_b);
            match (qa, qb) {
                (Ok(qa), Ok(qb)) => {
                    assert_eq!(qa.detected, qb.detected);
                    assert_eq!(qa.usable, qb.usable);
                    let sa: Vec<f64> = qa
                        .per_keystroke
                        .iter()
                        .filter_map(|k| k.quality.as_ref().map(|q| q.sqi))
                        .collect();
                    let sb: Vec<f64> = qb
                        .per_keystroke
                        .iter()
                        .filter_map(|k| k.quality.as_ref().map(|q| q.sqi))
                        .collect();
                    assert_eq!(sa, sb, "SQI values must be bit-identical");
                }
                (Err(_), Err(_)) => {}
                other => panic!("assessment determinism broke: {other:?}"),
            }
        }
    }
}

#[test]
fn supervised_sessions_terminate_within_budget() {
    let s = setup();
    let seed = chaos_seed();
    let cfg = SupervisorConfig::default();
    for n in 0..3_u64 {
        let legit = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 620 + n);
        let out = run_session(s, &legit, seed.wrapping_add(n));
        assert!(
            out.state.is_terminal(),
            "legit session {n}: {:?}",
            out.state
        );
        assert!(
            out.attempts <= 1 + cfg.max_reprompts,
            "legit session {n} used {} attempts",
            out.attempts
        );
        let attack = s.pop.record_emulating_attack(
            1 + (n as usize % 3),
            0,
            &s.pin,
            HandMode::OneHanded,
            &s.session,
            620 + n,
        );
        let out = run_session(s, &attack, seed.wrapping_add(100 + n));
        assert!(
            out.state.is_terminal(),
            "attack session {n}: {:?}",
            out.state
        );
        assert!(
            out.attempts <= 1 + cfg.max_reprompts,
            "attack session {n} used {} attempts",
            out.attempts
        );
    }
}

#[test]
fn hung_collection_is_aborted_by_the_watchdog() {
    let s = setup();
    let out = run_supervised(
        &s.system,
        &s.profile,
        Some(&s.pin),
        &SupervisorConfig::default(),
        |_| None,
    );
    assert_eq!(out.state, p2auth_device::SupervisorState::Abort);
    assert!(out.outcome.is_none());
}

#[test]
fn clean_sessions_are_unaffected_by_gating() {
    let s = setup();
    let mut ungated_cfg = s.system.config().clone();
    ungated_cfg.sqi_gating = false;
    let ungated = P2Auth::new(ungated_cfg);
    for n in 0..3_u64 {
        let legit = s
            .pop
            .record_entry(0, &s.pin, HandMode::OneHanded, &s.session, 630 + n);
        let dg = s.system.authenticate(&s.profile, &s.pin, &legit).unwrap();
        let dp = ungated.authenticate(&s.profile, &s.pin, &legit).unwrap();
        assert_eq!(dg, dp, "clean session {n}: the gate must be invisible");
    }
}
