//! Property tests for the session supervisor: under arbitrary event
//! sequences and arbitrary clocks, the machine never wedges, never
//! accepts without a full `Deciding` pass, and never exceeds its
//! re-prompt budget.

use p2auth_device::{SessionSupervisor, SupervisorConfig, SupervisorEvent, SupervisorState};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = SupervisorEvent> {
    prop_oneof![
        Just(SupervisorEvent::Start),
        Just(SupervisorEvent::CollectionComplete),
        (0_usize..5, 0_usize..5, 0.0_f64..1.0).prop_map(|(usable, extra, mean_sqi)| {
            SupervisorEvent::AssessmentReady {
                usable,
                detected: usable + extra,
                mean_sqi,
            }
        }),
        Just(SupervisorEvent::AssessmentFailed),
        Just(SupervisorEvent::DecisionAccept),
        any::<bool>().prop_map(|poor_signal| SupervisorEvent::DecisionReject { poor_signal }),
        Just(SupervisorEvent::DecisionAbort),
        Just(SupervisorEvent::Tick),
    ]
}

proptest! {
    /// Accept is unreachable except through `Deciding` +
    /// `DecisionAccept`, whatever the event order and timing.
    #[test]
    fn accept_requires_a_deciding_pass(
        events in prop::collection::vec((arb_event(), 0.0_f64..5.0), 1..120),
    ) {
        let mut sup = SessionSupervisor::new(SupervisorConfig::default());
        let mut now = 0.0;
        for (event, dt) in events {
            let before = sup.state();
            now += dt;
            let after = sup.step(event, now);
            if after == SupervisorState::Accept {
                prop_assert_eq!(
                    before,
                    SupervisorState::Deciding,
                    "Accept reached from {} on {:?}",
                    before,
                    event
                );
                prop_assert_eq!(event, SupervisorEvent::DecisionAccept);
            }
            if before.is_terminal() {
                prop_assert_eq!(after, before, "terminal states absorb events");
            }
        }
    }

    /// Whatever happened before, advancing time alone always drives
    /// the machine to a terminal state within the re-prompt budget —
    /// the supervisor cannot hang.
    #[test]
    fn time_alone_always_terminates(
        events in prop::collection::vec((arb_event(), 0.0_f64..5.0), 0..80),
        start in 0.0_f64..1000.0,
    ) {
        let cfg = SupervisorConfig::default();
        let mut sup = SessionSupervisor::new(cfg);
        let mut now = start;
        sup.step(SupervisorEvent::Start, now);
        for (event, dt) in events {
            now += dt;
            sup.step(event, now);
        }
        // Drain with ticks: each expiry either terminates or re-enters
        // Collecting (bounded by max_reprompts), so a small bound
        // suffices.
        let mut steps = 0;
        while !sup.state().is_terminal() {
            let deadline = sup.deadline_s().expect("in-flight states carry deadlines");
            now = now.max(deadline) + 0.001;
            sup.step(SupervisorEvent::Tick, now);
            steps += 1;
            prop_assert!(
                steps <= 2 * (cfg.max_reprompts as usize + 2),
                "ticking must terminate, stuck in {}",
                sup.state()
            );
        }
        prop_assert!(sup.reprompts_used() <= cfg.max_reprompts);
        prop_assert!(sup.attempts() <= 1 + cfg.max_reprompts);
    }
}
