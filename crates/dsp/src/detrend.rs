//! Smoothness-priors detrending (Tarvainen, Ranta-aho & Karjalainen 2002).
//!
//! P²Auth removes the non-linear baseline drift of PPG measurements with
//! the smoothness-priors approach before short-time-energy analysis
//! (paper §IV-B 1.3, Eq. (2)–(3)):
//!
//! ```text
//! Ŷ_det = [I − (I + λ² D₂ᵀ D₂)⁻¹] Y
//! ```
//!
//! where `D₂` is the second-order difference matrix. The estimated trend
//! `(I + λ² D₂ᵀ D₂)⁻¹ Y` is the solution of a symmetric positive-definite
//! *pentadiagonal* system, which we solve with a banded Cholesky
//! factorization in `O(n)` time and memory.

/// Estimates the smooth baseline trend of `y` with regularization `lambda`.
///
/// Larger `lambda` yields a smoother (stiffer) trend estimate. The paper
/// only requires "adjustment of the regularization parameter λ"; values
/// in the range 10–500 are typical for 100 Hz PPG. Values with
/// `λ² ≥ 1e13` are treated as the λ → ∞ limit and yield the
/// least-squares straight line (the pentadiagonal system is no longer
/// numerically distinguishable from that limit in `f64`).
///
/// # Panics
///
/// Panics if `lambda` is not finite or is negative.
///
/// # Examples
///
/// ```
/// use p2auth_dsp::detrend::trend;
/// let y = vec![1.0; 32];
/// let t = trend(&y, 10.0);
/// // The trend of a constant signal is the constant itself.
/// assert!(t.iter().all(|v| (v - 1.0).abs() < 1e-8));
/// ```
pub fn trend(y: &[f64], lambda: f64) -> Vec<f64> {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be finite and >= 0"
    );
    let n = y.len();
    if n < 3 {
        // D2 is empty for n < 3: the system reduces to the identity.
        return y.to_vec();
    }
    let l2 = lambda * lambda;
    // For extreme regularization the identity term of I + λ²D₂ᵀD₂ is
    // absorbed by rounding: the LDLᵀ pivots are ≥ 1 in exact
    // arithmetic but carry ~ε·16·λ² of rounding error, so beyond
    // λ² ≈ 1e13 the factorization can break down (and λ² overflows to
    // infinity outright near λ ≈ 1.3e154). The λ → ∞ limit of the
    // smoothness prior is the least-squares straight line; switch to
    // it while the pivots are still provably positive. Typical PPG
    // values are λ ≤ 500 (λ² ≤ 2.5e5), far below the cutoff.
    if !(l2 < 1e13) {
        return linear_fit(y);
    }
    // Build the pentadiagonal matrix A = I + l2 * D2^T D2 in banded form.
    // D2 is (n-2) x n with stencil [1, -2, 1]. The product D2^T D2 has
    // rows formed by the autocorrelation of the stencil: [1, -4, 6, -4, 1]
    // in the interior, with boundary corrections.
    // Band storage: diag[i] = A[i][i], off1[i] = A[i][i+1], off2[i] = A[i][i+2].
    let mut diag = vec![0.0_f64; n];
    let mut off1 = vec![0.0_f64; n.saturating_sub(1)];
    let mut off2 = vec![0.0_f64; n.saturating_sub(2)];
    // (D2^T D2)[i][j] = sum_k d2[k][i] * d2[k][j]; row k of D2 has
    // entries 1 at k, -2 at k+1, 1 at k+2.
    for k in 0..n - 2 {
        let idx = [k, k + 1, k + 2];
        let val = [1.0, -2.0, 1.0];
        for a in 0..3 {
            for b in a..3 {
                let (i, j) = (idx[a], idx[b]);
                let v = l2 * val[a] * val[b];
                match j - i {
                    0 => diag[i] += v,
                    1 => off1[i] += v,
                    2 => off2[i] += v,
                    _ => unreachable!(),
                }
            }
        }
    }
    for d in diag.iter_mut() {
        *d += 1.0;
    }
    solve_pentadiagonal_spd(&diag, &off1, &off2, y)
}

/// Removes the smoothness-priors trend from `y` (the paper's `Ŷ_det`).
///
/// Equivalent to `y - trend(y, lambda)` element-wise.
///
/// # Panics
///
/// Panics if `lambda` is not finite or is negative.
pub fn detrend(y: &[f64], lambda: f64) -> Vec<f64> {
    let t = trend(y, lambda);
    y.iter().zip(&t).map(|(a, b)| a - b).collect()
}

/// Least-squares straight-line fit — the λ → ∞ limit of the
/// smoothness-priors trend (the prior then forces the second
/// difference to zero everywhere).
fn linear_fit(y: &[f64]) -> Vec<f64> {
    let n = y.len();
    if n < 2 {
        return y.to_vec();
    }
    let nf = n as f64;
    let mean_t = (nf - 1.0) / 2.0;
    let mean_y = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (i, &v) in y.iter().enumerate() {
        let dt = i as f64 - mean_t;
        cov += dt * (v - mean_y);
        var += dt * dt;
    }
    let slope = cov / var;
    (0..n)
        .map(|i| mean_y + slope * (i as f64 - mean_t))
        .collect()
}

/// Solves `A x = b` for a symmetric positive-definite pentadiagonal `A`
/// given by its diagonal and first/second super-diagonals, via banded
/// Cholesky (`A = L D Lᵀ` with unit lower-triangular banded `L`).
fn solve_pentadiagonal_spd(diag: &[f64], off1: &[f64], off2: &[f64], b: &[f64]) -> Vec<f64> {
    let n = diag.len();
    debug_assert_eq!(b.len(), n);
    // LDL^T with bandwidth 2: L has sub-diagonals l1 (offset 1), l2 (offset 2).
    let mut d = vec![0.0_f64; n];
    let mut l1 = vec![0.0_f64; n.saturating_sub(1)];
    let mut l2 = vec![0.0_f64; n.saturating_sub(2)];
    for i in 0..n {
        let mut di = diag[i];
        if i >= 1 {
            di -= l1[i - 1] * l1[i - 1] * d[i - 1];
        }
        if i >= 2 {
            di -= l2[i - 2] * l2[i - 2] * d[i - 2];
        }
        // In exact arithmetic A = I + λ²D₂ᵀD₂ has eigenvalues ≥ 1, so
        // every LDLᵀ pivot satisfies di ≥ 1, and the λ² ≤ 1e13 cutoff
        // in `trend` keeps the rounding error on each pivot ≪ 1.
        // Floor the pivot rather than asserting so an unforeseen
        // breakdown degrades the trend estimate instead of panicking
        // the authentication pipeline.
        let di = if di > 1e-12 { di } else { 1e-12 };
        d[i] = di;
        if i + 1 < n {
            let mut v = off1[i];
            if i >= 1 {
                v -= l2[i - 1] * l1[i - 1] * d[i - 1];
            }
            l1[i] = v / di;
        }
        if i + 2 < n {
            l2[i] = off2[i] / di;
        }
    }
    // Forward solve L z = b.
    let mut z = vec![0.0_f64; n];
    for i in 0..n {
        let mut v = b[i];
        if i >= 1 {
            v -= l1[i - 1] * z[i - 1];
        }
        if i >= 2 {
            v -= l2[i - 2] * z[i - 2];
        }
        z[i] = v;
    }
    // Diagonal solve.
    for i in 0..n {
        z[i] /= d[i];
    }
    // Backward solve L^T x = z.
    let mut x = vec![0.0_f64; n];
    for i in (0..n).rev() {
        let mut v = z[i];
        if i + 1 < n {
            v -= l1[i] * x[i + 1];
        }
        if i + 2 < n {
            v -= l2[i] * x[i + 2];
        }
        x[i] = v;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lambda_is_identity_trend() {
        let y: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let t = trend(&y, 0.0);
        for (a, b) in y.iter().zip(&t) {
            assert!((a - b).abs() < 1e-10);
        }
        let det = detrend(&y, 0.0);
        assert!(det.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn removes_linear_trend() {
        // A pure straight line has zero second difference, so it is a
        // perfect smooth trend: the detrended residual must be ~0 for
        // large lambda.
        let y: Vec<f64> = (0..200).map(|i| 0.05 * i as f64 + 3.0).collect();
        let det = detrend(&y, 300.0);
        let max = det.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(max < 1e-6, "residual {max}");
    }

    #[test]
    fn preserves_fast_oscillation() {
        // Fast oscillation + slow drift: detrending should keep the fast
        // component and remove the drift.
        let n = 400;
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64;
                (t * 1.3).sin() + 0.01 * t
            })
            .collect();
        let det = detrend(&y, 50.0);
        // The drift endpoint offset (4.0) must be gone:
        let head: f64 = det[..50].iter().sum::<f64>() / 50.0;
        let tail: f64 = det[n - 50..].iter().sum::<f64>() / 50.0;
        assert!(
            (head - tail).abs() < 0.2,
            "drift left: head {head} tail {tail}"
        );
        // The oscillation must survive with most of its energy.
        let e: f64 = det.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!(e > 0.3, "oscillation energy lost: {e}");
    }

    #[test]
    fn short_inputs() {
        assert_eq!(trend(&[], 10.0), Vec::<f64>::new());
        assert_eq!(trend(&[2.0], 10.0), vec![2.0]);
        assert_eq!(trend(&[2.0, 3.0], 10.0), vec![2.0, 3.0]);
    }

    #[test]
    fn extreme_lambda_is_linear_fit_not_panic() {
        // Regression: λ ≥ ~1.3e154 used to overflow λ² to infinity and
        // panic the banded Cholesky ("matrix not positive definite");
        // large-but-finite λ could break the pivots the same way. Both
        // now take the λ → ∞ limit: the least-squares line.
        let y: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.7).sin() + 0.2 * i as f64)
            .collect();
        for lambda in [1e7, 1e12, 1e154, 1e200, f64::MAX.sqrt()] {
            let t = trend(&y, lambda);
            assert!(t.iter().all(|v| v.is_finite()), "λ={lambda:e}");
            // A pure line must be reproduced exactly by the limit.
            let line: Vec<f64> = (0..64).map(|i| 3.0 - 0.5 * i as f64).collect();
            let lt = trend(&line, lambda);
            for (a, b) in line.iter().zip(&lt) {
                assert!((a - b).abs() < 1e-9, "λ={lambda:e}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn nan_input_does_not_panic() {
        let mut y: Vec<f64> = (0..32).map(|i| i as f64).collect();
        y[7] = f64::NAN;
        y[20] = f64::INFINITY;
        // NaN propagates through the solve but must not panic.
        let _ = detrend(&y, 100.0);
        let _ = detrend(&y, 1e200);
    }

    #[test]
    fn trend_plus_detrended_reconstructs() {
        let y: Vec<f64> = (0..100)
            .map(|i| (i as f64).sqrt() + (i as f64 * 0.9).cos())
            .collect();
        let t = trend(&y, 20.0);
        let d = detrend(&y, 20.0);
        for i in 0..y.len() {
            assert!((t[i] + d[i] - y[i]).abs() < 1e-9);
        }
    }
}
