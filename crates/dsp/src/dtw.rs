//! Dynamic time warping.
//!
//! The manual-feature baseline the paper compares against (Shang & Wu,
//! CNS'19 — reproduced in `p2auth-baseline`) "needs to calculate the DTW
//! of the sequence when extracting features, resulting in a long
//! authentication time" (paper §V-D). We implement classic DTW with an
//! optional Sakoe–Chiba band.

/// Options controlling a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DtwOptions {
    /// Sakoe–Chiba band half-width; `None` means unconstrained.
    pub band: Option<usize>,
}

/// DTW distance between `a` and `b` with absolute-difference local cost.
///
/// Returns `f64::INFINITY` when the band is too narrow to admit any
/// warping path, and `0.0` when both inputs are empty. If exactly one
/// input is empty the distance is `f64::INFINITY`.
///
/// # Examples
///
/// ```
/// use p2auth_dsp::dtw::{dtw, DtwOptions};
/// let a = [0.0, 1.0, 2.0, 1.0, 0.0];
/// assert_eq!(dtw(&a, &a, DtwOptions::default()), 0.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64], opts: DtwOptions) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 && m == 0 {
        return 0.0;
    }
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // Effective band: must at least cover the diagonal slope difference.
    let band = opts
        .band
        .map(|w| w.max(n.abs_diff(m)))
        .unwrap_or(usize::MAX);
    let inf = f64::INFINITY;
    // Rolling two-row DP over the (n+1) x (m+1) cost matrix.
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr[0] = inf;
        let j_lo = if band == usize::MAX {
            1
        } else {
            i.saturating_sub(band).max(1)
        };
        let j_hi = if band == usize::MAX {
            m
        } else {
            (i + band).min(m)
        };
        // Cells outside the band stay at infinity.
        for c in curr.iter_mut().take(j_lo).skip(1) {
            *c = inf;
        }
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = if best.is_finite() { cost + best } else { inf };
        }
        for c in curr.iter_mut().take(m + 1).skip(j_hi + 1) {
            *c = inf;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW distance normalized by the sum of the input lengths.
///
/// This keeps the score comparable across segment lengths, which the
/// threshold-based baseline relies on.
pub fn dtw_normalized(a: &[f64], b: &[f64], opts: DtwOptions) -> f64 {
    let d = dtw(a, b, opts);
    let denom = (a.len() + b.len()) as f64;
    if denom == 0.0 {
        0.0
    } else {
        d / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_unbanded() -> DtwOptions {
        DtwOptions::default()
    }

    #[test]
    fn identity_is_zero() {
        let a = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(dtw(&a, &a, opts_unbanded()), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 2.0, 3.0];
        let d1 = dtw(&a, &b, opts_unbanded());
        let d2 = dtw(&b, &a, opts_unbanded());
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn warps_time_shift_cheaply() {
        // The same bump shifted in time should be much closer under DTW
        // than under pointwise L1.
        let bump = |c: f64| -> Vec<f64> {
            (0..50)
                .map(|i| {
                    let d = (i as f64 - c) / 4.0;
                    (-d * d).exp()
                })
                .collect()
        };
        let a = bump(20.0);
        let b = bump(28.0);
        let d_dtw = dtw(&a, &b, opts_unbanded());
        let d_l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(d_dtw < 0.3 * d_l1, "dtw {d_dtw} vs l1 {d_l1}");
    }

    #[test]
    fn band_matches_unbanded_when_wide() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.5).cos()).collect();
        let full = dtw(&a, &b, opts_unbanded());
        let banded = dtw(&a, &b, DtwOptions { band: Some(30) });
        assert!((full - banded).abs() < 1e-12);
    }

    #[test]
    fn narrow_band_increases_cost() {
        let a: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut b = vec![0.0; 8];
        b.extend_from_slice(&a[..32]);
        let full = dtw(&a, &b, opts_unbanded());
        let banded = dtw(&a, &b, DtwOptions { band: Some(2) });
        assert!(banded >= full);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw(&[], &[], opts_unbanded()), 0.0);
        assert_eq!(dtw(&[1.0], &[], opts_unbanded()), f64::INFINITY);
        assert_eq!(dtw_normalized(&[], &[], opts_unbanded()), 0.0);
    }

    #[test]
    fn normalized_invariant_to_duplication() {
        // Repeating every sample should leave the normalized distance to
        // the original small.
        let a = [0.0, 1.0, 0.0, -1.0, 0.0];
        let b: Vec<f64> = a.iter().flat_map(|&v| [v, v]).collect();
        let d = dtw_normalized(&a, &b, opts_unbanded());
        assert!(d < 1e-9, "{d}");
    }
}
