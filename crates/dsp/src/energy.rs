//! Short-time energy analysis.
//!
//! After detrending, P²Auth decides whether a keystroke happened near each
//! reported keystroke time by thresholding the short-time energy of the
//! signal (paper §IV-B 1.3): "if the total energy exceeds the threshold in
//! the time window near the calibrated time, a keystroke event is
//! considered to be present", with the threshold set to half the mean of
//! all short-time energies and a window of 20 samples at 100 Hz.

/// Computes the short-time energy of `x` over frames of `window` samples
/// advancing by `hop` samples.
///
/// Each output value is the sum of squares of one frame. Frames that
/// would run past the end of the signal are dropped, so the output length
/// is `floor((len - window) / hop) + 1` (or 0 if `len < window`).
///
/// # Panics
///
/// Panics if `window` or `hop` is zero.
///
/// # Examples
///
/// ```
/// use p2auth_dsp::energy::short_time_energy;
/// let e = short_time_energy(&[1.0, 1.0, 2.0, 2.0], 2, 2);
/// assert_eq!(e, vec![2.0, 8.0]);
/// ```
pub fn short_time_energy(x: &[f64], window: usize, hop: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    assert!(hop > 0, "hop must be positive");
    if x.len() < window {
        return Vec::new();
    }
    let mut out = Vec::with_capacity((x.len() - window) / hop + 1);
    let mut start = 0;
    while start + window <= x.len() {
        out.push(frame_energy(&x[start..start + window]));
        start += hop;
    }
    out
}

/// Sum of squares of one frame.
pub fn frame_energy(frame: &[f64]) -> f64 {
    frame.iter().map(|v| v * v).sum()
}

/// Energy of the window of `window` samples centred on `center`
/// (clamped to the signal bounds).
///
/// Used for the keystroke-presence test: the decision window straddles
/// the calibrated keystroke time.
///
/// # Panics
///
/// Panics if `window` is zero or `x` is empty.
pub fn energy_around(x: &[f64], center: usize, window: usize) -> f64 {
    assert!(window > 0, "window must be positive");
    assert!(!x.is_empty(), "empty signal");
    let half = window / 2;
    let start = center.saturating_sub(half);
    let end = (start + window).min(x.len());
    let start = end.saturating_sub(window);
    frame_energy(&x[start..end])
}

/// The paper's keystroke-presence threshold: half the mean short-time
/// energy of the whole (detrended) signal.
///
/// Returns 0.0 for signals shorter than one window.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn half_mean_energy_threshold(x: &[f64], window: usize) -> f64 {
    let energies = short_time_energy(x, window, window);
    if energies.is_empty() {
        return 0.0;
    }
    0.5 * energies.iter().sum::<f64>() / energies.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_frames() {
        let e = short_time_energy(&[1.0, 2.0, 3.0, 4.0, 5.0], 2, 1);
        assert_eq!(e, vec![5.0, 13.0, 25.0, 41.0]);
    }

    #[test]
    fn too_short_signal() {
        assert!(short_time_energy(&[1.0], 4, 1).is_empty());
    }

    #[test]
    fn energies_nonnegative() {
        let x: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        assert!(short_time_energy(&x, 7, 3).iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn quadratic_scaling() {
        let x = vec![1.0, -2.0, 0.5, 3.0, 1.0, 1.0];
        let scaled: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let e1 = short_time_energy(&x, 3, 3);
        let e2 = short_time_energy(&scaled, 3, 3);
        for (a, b) in e1.iter().zip(&e2) {
            assert!((b - 9.0 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn energy_around_clamps_at_edges() {
        let x = vec![1.0; 10];
        assert_eq!(energy_around(&x, 0, 4), 4.0);
        assert_eq!(energy_around(&x, 9, 4), 4.0);
        assert_eq!(energy_around(&x, 5, 4), 4.0);
    }

    #[test]
    fn threshold_detects_burst() {
        // Low-amplitude background with one high-energy burst: the burst
        // window exceeds the half-mean threshold, quiet windows do not.
        let mut x = vec![0.05; 200];
        for v in x.iter_mut().skip(100).take(20) {
            *v = 1.0;
        }
        let thr = half_mean_energy_threshold(&x, 20);
        assert!(energy_around(&x, 110, 20) > thr);
        assert!(energy_around(&x, 30, 20) < thr);
    }
}
