//! Radix-2 FFT and spectral summaries.
//!
//! Used by the manual-feature baseline for spectral features (spectral
//! centroid, band energies). Implemented from scratch: an iterative
//! in-place radix-2 Cooley–Tukey transform over a minimal complex type.

/// Minimal complex number for the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

/// In-place radix-2 FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two (zero-length is allowed).
pub fn fft_in_place(x: &mut [Complex]) {
    fft_dir(x, false);
}

/// In-place inverse FFT (includes the 1/N scaling).
///
/// # Panics
///
/// Panics if the length is not a power of two (zero-length is allowed).
pub fn ifft_in_place(x: &mut [Complex]) {
    fft_dir(x, true);
    let n = x.len() as f64;
    for v in x.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
}

fn fft_dir(x: &mut [Complex], inverse: bool) {
    let n = x.len();
    if n == 0 {
        return;
    }
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            x.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..len / 2 {
                let u = x[i + j];
                let v = x[i + j + len / 2].mul(w);
                x[i + j] = u.add(v);
                x[i + j + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// One-sided power spectrum of a real signal, zero-padded to the next
/// power of two. Returns `floor(nfft/2) + 1` bins.
///
/// Returns an empty vector for empty input.
pub fn power_spectrum(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let nfft = x.len().next_power_of_two();
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    buf.resize(nfft, Complex::default());
    fft_in_place(&mut buf);
    buf[..nfft / 2 + 1]
        .iter()
        .map(|c| c.abs() * c.abs() / nfft as f64)
        .collect()
}

/// Spectral centroid in Hz of a real signal sampled at `rate` Hz.
///
/// Bin 0 (DC) is excluded. Returns 0.0 for empty or zero-energy input.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn spectral_centroid(x: &[f64], rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "bad sample rate");
    let ps = power_spectrum(x);
    if ps.len() < 2 {
        return 0.0;
    }
    let nfft = (ps.len() - 1) * 2;
    let df = rate / nfft as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (k, &p) in ps.iter().enumerate().skip(1) {
        num += k as f64 * df * p;
        den += p;
    }
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Fraction of (non-DC) spectral power in `[lo_hz, hi_hz]`.
///
/// Returns 0.0 for empty or zero-energy input.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite or `lo_hz > hi_hz`.
pub fn band_power_ratio(x: &[f64], rate: f64, lo_hz: f64, hi_hz: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "bad sample rate");
    assert!(lo_hz <= hi_hz, "lo_hz must be <= hi_hz");
    let ps = power_spectrum(x);
    if ps.len() < 2 {
        return 0.0;
    }
    let nfft = (ps.len() - 1) * 2;
    let df = rate / nfft as f64;
    let mut band = 0.0;
    let mut total = 0.0;
    for (k, &p) in ps.iter().enumerate().skip(1) {
        let f = k as f64 * df;
        total += p;
        if f >= lo_hz && f <= hi_hz {
            band += p;
        }
    }
    if total <= 0.0 {
        0.0
    } else {
        band / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::default(); 8];
        x[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut x);
        for c in &x {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let orig: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut x = orig.clone();
        fft_in_place(&mut x);
        ifft_in_place(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10 && (a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn sine_concentrates_in_one_bin() {
        // 8 Hz sine, 64 samples at 64 Hz -> bin 8 exactly.
        let x: Vec<f64> = (0..64)
            .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / 64.0).sin())
            .collect();
        let ps = power_spectrum(&x);
        let peak = ps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 8);
    }

    #[test]
    fn centroid_of_pure_tone() {
        let rate = 100.0;
        let f0 = 12.5; // exactly on a bin for 128-sample FFT
        let x: Vec<f64> = (0..128)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / rate).sin())
            .collect();
        let c = spectral_centroid(&x, rate);
        assert!((c - f0).abs() < 0.5, "centroid {c}");
    }

    #[test]
    fn band_power_partitions() {
        let rate = 100.0;
        let x: Vec<f64> = (0..256)
            .map(|i| (2.0 * std::f64::consts::PI * 10.0 * i as f64 / rate).sin())
            .collect();
        let in_band = band_power_ratio(&x, rate, 5.0, 15.0);
        let out_band = band_power_ratio(&x, rate, 20.0, 50.0);
        assert!(in_band > 0.95, "{in_band}");
        assert!(out_band < 0.05, "{out_band}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex::default(); 6];
        fft_in_place(&mut x);
    }
}
