//! Signal-processing substrate for the P²Auth reproduction.
//!
//! The P²Auth pipeline (ICDCS'23) preprocesses keystroke-induced PPG
//! measurements with a small set of classical DSP blocks. This crate
//! implements each of them from scratch, in the form the paper uses them:
//!
//! * [`median`] — sliding median filter (paper §IV-B 1.1, noise removal),
//! * [`savgol`] — Savitzky–Golay smoothing (§IV-B 1.2, pre-calibration),
//! * [`peaks`] — local-extremum search and the deviation-from-mean
//!   objective of the paper's Eq. (1) (fine-grained keystroke calibration),
//! * [`detrend`] — smoothness-priors detrending (Tarvainen et al. 2002,
//!   the paper's Eq. (2)–(3)),
//! * [`energy`] — short-time energy (§IV-B 1.3, input-case identification),
//! * [`dtw`] — dynamic time warping (used by the manual-feature baseline),
//! * [`fft`] — radix-2 FFT and spectral summaries (manual features),
//! * [`resample`], [`normalize`], [`stats`] — general utilities used by the
//!   simulator, feature extractors and evaluation harness.
//!
//! All routines operate on `&[f64]` and return owned `Vec<f64>`, keeping
//! the crate free of external dependencies.
//!
//! # Example
//!
//! ```
//! use p2auth_dsp::{median::median_filter, energy::short_time_energy};
//!
//! let noisy = vec![0.0, 9.0, 0.0, 0.0, 0.0, -7.0, 0.0, 0.0];
//! let clean = median_filter(&noisy, 3);
//! assert!(clean.iter().all(|v| v.abs() < 1e-12));
//! let e = short_time_energy(&noisy, 4, 4);
//! assert_eq!(e.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detrend;
pub mod dtw;
pub mod energy;
pub mod fft;
pub mod median;
pub mod normalize;
pub mod peaks;
pub mod resample;
pub mod savgol;
pub mod stats;
