//! Sliding median filter.
//!
//! P²Auth removes impulsive sensor noise from raw PPG samples with a
//! median filter (paper §IV-B 1.1): "median filtering is a non-linear
//! filtering method that performs well at preserving detailed information
//! about the signals while filtering out the noise".

/// Applies a sliding median filter of the given (odd) `window` length.
///
/// The signal is padded at both ends by replicating the edge samples, so
/// the output has the same length as the input. A `window` of 1 returns
/// the input unchanged.
///
/// # Panics
///
/// Panics if `window` is zero or even.
///
/// # Examples
///
/// ```
/// use p2auth_dsp::median::median_filter;
/// let x = vec![1.0, 100.0, 1.0, 1.0];
/// assert_eq!(median_filter(&x, 3), vec![1.0, 1.0, 1.0, 1.0]);
/// ```
pub fn median_filter(x: &[f64], window: usize) -> Vec<f64> {
    assert!(
        window % 2 == 1,
        "median filter window must be odd, got {window}"
    );
    if x.is_empty() || window == 1 {
        return x.to_vec();
    }
    let half = window / 2;
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    let mut buf = Vec::with_capacity(window);
    for i in 0..n {
        buf.clear();
        for j in 0..window {
            // index into padded signal: clamp to [0, n-1]
            let idx = (i + j).saturating_sub(half).min(n - 1);
            buf.push(x[idx]);
        }
        out.push(median_of(&mut buf));
    }
    out
}

/// Returns the median of a slice, reordering it in place.
///
/// For even lengths the mean of the two central order statistics is
/// returned. Ordering follows [`f64::total_cmp`], so NaN-contaminated
/// device input ranks NaNs at the extremes instead of panicking (raw
/// PPG frames can carry NaN after a corrupted link transfer).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn median_of(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let n = values.len();
    values.sort_by(f64::total_cmp);
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_window() {
        let x = vec![3.0, -1.0, 2.5];
        assert_eq!(median_filter(&x, 1), x);
    }

    #[test]
    fn removes_single_impulse() {
        let mut x = vec![0.0; 21];
        x[10] = 50.0;
        let y = median_filter(&x, 5);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn preserves_step_edges() {
        let x: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let y = median_filter(&x, 3);
        assert_eq!(y, x, "median filter must not smear a clean step");
    }

    #[test]
    fn empty_input() {
        assert!(median_filter(&[], 3).is_empty());
    }

    #[test]
    fn median_of_even_len() {
        let mut v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_of(&mut v), 2.5);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_panics() {
        median_filter(&[1.0, 2.0], 2);
    }

    #[test]
    fn nan_contamination_does_not_panic() {
        // Regression: `median_of` used to panic "NaN in median input"
        // on contaminated device frames; total_cmp ordering ranks NaNs
        // at the extremes instead.
        let x = vec![1.0, f64::NAN, 3.0, f64::INFINITY, -2.0, f64::NEG_INFINITY];
        let y = median_filter(&x, 3);
        assert_eq!(y.len(), x.len());
        // Away from the NaN, finite medians survive.
        let mut v = [2.0, f64::NAN, 1.0];
        assert_eq!(median_of(&mut v), 2.0); // NaN sorts above +inf
    }

    #[test]
    fn output_within_input_range() {
        let x = vec![1.0, -3.0, 7.0, 0.5, 2.0, -1.0, 4.0];
        let y = median_filter(&x, 5);
        let (lo, hi) = (-3.0, 7.0);
        assert!(y.iter().all(|&v| v >= lo && v <= hi));
    }
}
