//! Amplitude normalization utilities.

/// Subtracts the mean of `x` in place.
pub fn remove_mean(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let m = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= m;
    }
}

/// Returns a z-normalized copy of `x` (zero mean, unit variance).
///
/// A signal with (near-)zero variance is returned mean-removed only, so
/// the function never divides by ~0.
pub fn zscore(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len() as f64;
    let mean = x.iter().sum::<f64>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return x.iter().map(|v| v - mean).collect();
    }
    x.iter().map(|v| (v - mean) / sd).collect()
}

/// Rescales `x` linearly into `[0, 1]`.
///
/// A constant signal maps to all zeros.
pub fn min_max(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let lo = x.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    if span < 1e-12 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - lo) / span).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_mean_centres() {
        let mut x = vec![1.0, 2.0, 3.0];
        remove_mean(&mut x);
        assert!((x.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn zscore_moments() {
        let x = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let z = zscore(&x);
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zscore_constant_signal() {
        let z = zscore(&[3.0, 3.0, 3.0]);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn min_max_bounds() {
        let y = min_max(&[-1.0, 0.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.25, 1.0]);
    }

    #[test]
    fn min_max_constant() {
        assert_eq!(min_max(&[5.0, 5.0]), vec![0.0, 0.0]);
    }
}
