//! Local-extremum search and fine-grained keystroke-time calibration.
//!
//! P²Auth calibrates the coarse keystroke timestamps reported by the
//! smartphone by searching, within a window around each reported time,
//! for the extremum that "deviates the most from the mean among all
//! points in the window" (paper §IV-B 1.2, Eq. (1)):
//!
//! ```text
//! argmax_{s ∈ S} | y_s − (1 / (w+1)) Σ_{i=−w/2}^{w/2} y_{s+i} |
//! ```
//!
//! where `S` is the candidate set of local extrema of the SG-filtered
//! signal and `w` is the window size (30 at 100 Hz).

/// Indices of strict-or-plateau local maxima of `x`.
///
/// A plateau of equal samples bounded by strictly smaller neighbours
/// yields its first index. Endpoints are never reported.
pub fn local_maxima(x: &[f64]) -> Vec<usize> {
    extrema_impl(x, true)
}

/// Indices of local minima of `x`; see [`local_maxima`] for conventions.
pub fn local_minima(x: &[f64]) -> Vec<usize> {
    extrema_impl(x, false)
}

/// Indices of all local extrema (maxima and minima), sorted ascending.
pub fn local_extrema(x: &[f64]) -> Vec<usize> {
    let mut v = local_maxima(x);
    v.extend(local_minima(x));
    v.sort_unstable();
    v
}

fn extrema_impl(x: &[f64], maxima: bool) -> Vec<usize> {
    let n = x.len();
    let mut out = Vec::new();
    if n < 3 {
        return out;
    }
    let mut i = 1;
    while i + 1 < n {
        let rising = if maxima {
            x[i] > x[i - 1]
        } else {
            x[i] < x[i - 1]
        };
        if rising {
            // Walk any plateau.
            let start = i;
            while i + 1 < n && x[i + 1] == x[i] {
                i += 1;
            }
            if i + 1 < n {
                let falling = if maxima {
                    x[i + 1] < x[i]
                } else {
                    x[i + 1] > x[i]
                };
                if falling {
                    out.push(start);
                }
            }
        }
        i += 1;
    }
    out
}

/// Deviation of sample `s` from the local mean over a centred window of
/// `w + 1` samples — the objective of the paper's Eq. (1).
///
/// Window samples outside the signal are clamped to the edges.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn deviation_from_local_mean(x: &[f64], s: usize, w: usize) -> f64 {
    assert!(!x.is_empty(), "empty signal");
    let n = x.len() as i64;
    let half = (w / 2) as i64;
    let s_i = s as i64;
    let mut sum = 0.0;
    let count = 2 * half + 1;
    for i in -half..=half {
        let idx = (s_i + i).clamp(0, n - 1) as usize;
        sum += x[idx];
    }
    (x[s.min(x.len() - 1)] - sum / count as f64).abs()
}

/// Result of a fine-grained calibration search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibrated {
    /// Index of the selected extremum.
    pub index: usize,
    /// Value of the Eq. (1) objective at that index.
    pub score: f64,
}

/// Fine-grained keystroke-time calibration (paper Eq. (1)).
///
/// Searches local extrema of (already SG-filtered) `x` within
/// `approx ± radius` and returns the one maximizing the
/// deviation-from-local-mean objective with window size `w`
/// (30 at 100 Hz in the paper). Returns `None` when no extremum lies in
/// the search range (e.g. a flat signal).
pub fn calibrate_keystroke(
    x: &[f64],
    approx: usize,
    radius: usize,
    w: usize,
) -> Option<Calibrated> {
    calibrate_keystroke_asym(x, approx, radius, radius, w)
}

/// Like [`calibrate_keystroke`] but with an asymmetric search window of
/// `before` samples before and `after` samples after the reported time.
///
/// The asymmetry reflects the acquisition timing: the reported touch
/// time may be early or late by the communication jitter, but the
/// vascular response always *follows* the touch by the neuromuscular
/// latency, so most of the search mass belongs after the reported time.
pub fn calibrate_keystroke_asym(
    x: &[f64],
    approx: usize,
    before: usize,
    after: usize,
    w: usize,
) -> Option<Calibrated> {
    if x.is_empty() {
        return None;
    }
    let lo = approx.saturating_sub(before);
    let hi = (approx + after).min(x.len() - 1);
    let mut best: Option<Calibrated> = None;
    for s in local_extrema(x) {
        if s < lo || s > hi {
            continue;
        }
        let score = deviation_from_local_mean(x, s, w);
        if best.is_none_or(|b| score > b.score) {
            best = Some(Calibrated { index: s, score });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_peak() {
        let x = vec![0.0, 1.0, 3.0, 1.0, 0.0];
        assert_eq!(local_maxima(&x), vec![2]);
        assert!(local_minima(&x).is_empty());
    }

    #[test]
    fn finds_trough() {
        let x = vec![0.0, -1.0, -3.0, -1.0, 0.0];
        assert_eq!(local_minima(&x), vec![2]);
    }

    #[test]
    fn plateau_reports_first_index() {
        let x = vec![0.0, 2.0, 2.0, 2.0, 0.0];
        assert_eq!(local_maxima(&x), vec![1]);
    }

    #[test]
    fn no_extrema_in_monotone() {
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(local_extrema(&x).is_empty());
    }

    #[test]
    fn calibration_snaps_to_largest_transient() {
        // Small ripple everywhere, one big trough at 40; reported time 35.
        let mut x: Vec<f64> = (0..100).map(|i| 0.05 * (i as f64 * 0.7).sin()).collect();
        for (i, v) in x.iter_mut().enumerate().take(45).skip(36) {
            let d = (i as f64 - 40.0) / 3.0;
            *v -= 2.0 * (-d * d).exp();
        }
        let cal = calibrate_keystroke(&x, 35, 15, 30).expect("found");
        assert!(
            (cal.index as i64 - 40).unsigned_abs() <= 2,
            "index {}",
            cal.index
        );
    }

    #[test]
    fn calibration_respects_radius() {
        let mut x = vec![0.0; 100];
        // Ripple so there are extrema in range.
        for (i, v) in x.iter_mut().enumerate() {
            *v = 0.1 * (i as f64 * 0.9).sin();
        }
        // Huge spike far outside search radius.
        x[90] = 10.0;
        let cal = calibrate_keystroke(&x, 20, 10, 10).expect("found");
        assert!(cal.index >= 10 && cal.index <= 30);
    }

    #[test]
    fn calibration_none_on_flat() {
        let x = vec![1.0; 50];
        assert!(calibrate_keystroke(&x, 25, 10, 10).is_none());
    }

    #[test]
    fn deviation_of_constant_is_zero() {
        let x = vec![4.2; 31];
        assert!(deviation_from_local_mean(&x, 15, 30).abs() < 1e-12);
    }
}
