//! Sampling-rate conversion.
//!
//! The paper sweeps the PPG sampling rate from 30 Hz to 100 Hz (Fig. 16,
//! Fig. 17). The simulator synthesizes at 100 Hz and this module derives
//! the lower-rate streams.

/// Resamples `x` from `src_rate` Hz to `dst_rate` Hz by linear
/// interpolation.
///
/// The output covers the same time span; its length is
/// `round(len * dst_rate / src_rate)` (at least 1 for non-empty input).
///
/// # Panics
///
/// Panics if either rate is not strictly positive and finite.
///
/// # Examples
///
/// ```
/// use p2auth_dsp::resample::resample_linear;
/// let x = vec![0.0, 1.0, 2.0, 3.0];
/// let y = resample_linear(&x, 100.0, 50.0);
/// assert_eq!(y.len(), 2);
/// ```
pub fn resample_linear(x: &[f64], src_rate: f64, dst_rate: f64) -> Vec<f64> {
    assert!(src_rate > 0.0 && src_rate.is_finite(), "bad src_rate");
    assert!(dst_rate > 0.0 && dst_rate.is_finite(), "bad dst_rate");
    if x.is_empty() {
        return Vec::new();
    }
    if (src_rate - dst_rate).abs() < f64::EPSILON {
        return x.to_vec();
    }
    let n = x.len();
    let out_len = ((n as f64) * dst_rate / src_rate).round().max(1.0) as usize;
    let mut out = Vec::with_capacity(out_len);
    let step = src_rate / dst_rate;
    for i in 0..out_len {
        let pos = i as f64 * step;
        let i0 = pos.floor() as usize;
        if i0 + 1 >= n {
            out.push(x[n - 1]);
        } else {
            let frac = pos - i0 as f64;
            out.push(x[i0] * (1.0 - frac) + x[i0 + 1] * frac);
        }
    }
    out
}

/// Keeps every `factor`-th sample (no anti-alias filtering).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn decimate(x: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "decimation factor must be positive");
    x.iter().step_by(factor).copied().collect()
}

/// Maps a sample index at `src_rate` to the nearest index at `dst_rate`.
///
/// Used to translate keystroke timestamps when a recording is resampled.
///
/// # Panics
///
/// Panics if either rate is not strictly positive and finite.
pub fn map_index(idx: usize, src_rate: f64, dst_rate: f64) -> usize {
    assert!(src_rate > 0.0 && src_rate.is_finite(), "bad src_rate");
    assert!(dst_rate > 0.0 && dst_rate.is_finite(), "bad dst_rate");
    ((idx as f64) * dst_rate / src_rate).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_rates_equal() {
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(resample_linear(&x, 100.0, 100.0), x);
    }

    #[test]
    fn halving_rate_halves_length() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = resample_linear(&x, 100.0, 50.0);
        assert_eq!(y.len(), 50);
        // Linear ramp stays linear: y[i] ~ 2*i.
        for (i, v) in y.iter().enumerate() {
            assert!((v - 2.0 * i as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn upsampling_interpolates() {
        let x = vec![0.0, 1.0];
        let y = resample_linear(&x, 1.0, 4.0);
        assert_eq!(y.len(), 8);
        assert!((y[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn preserves_sine_shape_at_downsample() {
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.05).sin()).collect();
        let y = resample_linear(&x, 100.0, 30.0);
        // Check a few anchor points by evaluating the sine at mapped times.
        for i in (0..y.len()).step_by(37) {
            let t = i as f64 * 100.0 / 30.0;
            let expected = (t * 0.05).sin();
            assert!(
                (y[i] - expected).abs() < 0.01,
                "at {i}: {} vs {expected}",
                y[i]
            );
        }
    }

    #[test]
    fn decimation() {
        let x = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(decimate(&x, 2), vec![0.0, 2.0, 4.0]);
        assert_eq!(decimate(&x, 1), x);
    }

    #[test]
    fn index_mapping_round_trips_approximately() {
        let idx = 123;
        let down = map_index(idx, 100.0, 30.0);
        let back = map_index(down, 30.0, 100.0);
        assert!((back as i64 - idx as i64).abs() <= 2);
    }

    #[test]
    fn empty_input() {
        assert!(resample_linear(&[], 100.0, 50.0).is_empty());
    }
}
