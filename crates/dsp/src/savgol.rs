//! Savitzky–Golay smoothing.
//!
//! Before searching for the extreme point that marks the true keystroke
//! moment, P²Auth applies an SG filter "to remove locally unimportant
//! details while retaining the wave's shape" (paper §IV-B 1.2). The filter
//! fits a low-order polynomial to each window by linear least squares and
//! evaluates it at the window centre.

/// Computes Savitzky–Golay smoothing coefficients for a centred window.
///
/// The returned vector `c` has length `window`; convolving the signal
/// with `c` is equivalent to least-squares-fitting a polynomial of degree
/// `poly_order` over each window and evaluating it at the centre sample.
///
/// # Panics
///
/// Panics if `window` is even or zero, or if `poly_order >= window`.
///
/// # Examples
///
/// ```
/// use p2auth_dsp::savgol::savgol_coeffs;
/// let c = savgol_coeffs(5, 2);
/// // Coefficients of a smoother sum to 1.
/// let s: f64 = c.iter().sum();
/// assert!((s - 1.0).abs() < 1e-10);
/// ```
pub fn savgol_coeffs(window: usize, poly_order: usize) -> Vec<f64> {
    assert!(
        window % 2 == 1 && window > 0,
        "SG window must be odd, got {window}"
    );
    assert!(
        poly_order < window,
        "SG polynomial order {poly_order} must be < window {window}"
    );
    let half = (window / 2) as i64;
    let m = poly_order + 1;
    // Normal equations A^T A b = A^T e_center, where A[i][j] = t_i^j.
    // The centre coefficient row of the pseudo-inverse gives the filter.
    // Build gram = A^T A (size m x m) and rhs columns A^T for each sample.
    let mut gram = vec![vec![0.0_f64; m]; m];
    for t in -half..=half {
        let mut pow = vec![1.0_f64; 2 * m - 1];
        for k in 1..2 * m - 1 {
            pow[k] = pow[k - 1] * t as f64;
        }
        for r in 0..m {
            for c in 0..m {
                gram[r][c] += pow[r + c];
            }
        }
    }
    // Solve gram * beta = e_0 (value at centre is the 0th polynomial coef,
    // since the window is centred at t = 0).
    let mut rhs = vec![0.0_f64; m];
    rhs[0] = 1.0;
    let beta = solve_dense(&mut gram, &mut rhs);
    // Coefficient for sample at offset t: sum_j beta[j] * t^j.
    (-half..=half)
        .map(|t| {
            let mut acc = 0.0;
            let mut pw = 1.0;
            for &b in &beta {
                acc += b * pw;
                pw *= t as f64;
            }
            acc
        })
        .collect()
}

/// Smooths `x` with a Savitzky–Golay filter.
///
/// Edges are handled by replicating the first/last samples so the output
/// length equals the input length.
///
/// # Panics
///
/// Panics under the same conditions as [`savgol_coeffs`].
pub fn savgol_filter(x: &[f64], window: usize, poly_order: usize) -> Vec<f64> {
    let coeffs = savgol_coeffs(window, poly_order);
    apply_fir_replicate(x, &coeffs)
}

/// Convolves `x` with a centred FIR kernel, replicating edge samples.
///
/// The kernel length must be odd.
///
/// # Panics
///
/// Panics if `kernel` has even length or is empty.
pub fn apply_fir_replicate(x: &[f64], kernel: &[f64]) -> Vec<f64> {
    assert!(
        kernel.len() % 2 == 1 && !kernel.is_empty(),
        "kernel must have odd length"
    );
    if x.is_empty() {
        return Vec::new();
    }
    let half = kernel.len() / 2;
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let mut acc = 0.0;
        for (j, &k) in kernel.iter().enumerate() {
            let idx = (i + j).saturating_sub(half).min(n - 1);
            acc += k * x[idx];
        }
        out.push(acc);
    }
    out
}

/// Solves a small dense symmetric linear system by Gaussian elimination
/// with partial pivoting. Consumes its inputs as scratch space.
fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        assert!(d.abs() > 1e-12, "singular SG normal equations");
        for r in col + 1..n {
            let f = a[r][col] / d;
            if f == 0.0 {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // parallel-array elimination step
            for c in col..n {
                a[r][c] -= f * a[col][c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn known_quadratic_coeffs() {
        // Classic SG(5, 2) smoothing kernel: (-3, 12, 17, 12, -3) / 35.
        let c = savgol_coeffs(5, 2);
        let expected = [
            -3.0 / 35.0,
            12.0 / 35.0,
            17.0 / 35.0,
            12.0 / 35.0,
            -3.0 / 35.0,
        ];
        assert!(max_abs_diff(&c, &expected) < 1e-10, "got {c:?}");
    }

    #[test]
    fn preserves_polynomial_of_fit_order() {
        // A degree-2 polynomial must pass through an order-2 SG filter
        // unchanged (away from the replicated edges).
        let x: Vec<f64> = (0..50)
            .map(|i| {
                let t = i as f64;
                0.3 * t * t - 2.0 * t + 5.0
            })
            .collect();
        let y = savgol_filter(&x, 7, 2);
        for i in 3..47 {
            assert!(
                (y[i] - x[i]).abs() < 1e-8,
                "mismatch at {i}: {} vs {}",
                y[i],
                x[i]
            );
        }
    }

    #[test]
    fn smooths_noise() {
        // Alternating noise on a constant should be strongly attenuated.
        let x: Vec<f64> = (0..100)
            .map(|i| 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let y = savgol_filter(&x, 9, 2);
        let resid: f64 = y[4..96].iter().map(|v| (v - 1.0).abs()).sum::<f64>() / 92.0;
        assert!(resid < 0.2, "mean residual {resid}");
    }

    #[test]
    fn coeffs_are_symmetric() {
        let c = savgol_coeffs(11, 3);
        for i in 0..c.len() / 2 {
            assert!((c[i] - c[c.len() - 1 - i]).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_input() {
        assert!(savgol_filter(&[], 5, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "must be < window")]
    fn order_too_high_panics() {
        savgol_coeffs(5, 5);
    }
}
