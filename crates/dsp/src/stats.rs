//! Descriptive statistics used by feature extractors and the evaluation
//! harness.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance; 0.0 for inputs shorter than 2.
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Root mean square; 0.0 for empty input.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Sample skewness (Fisher); 0.0 for degenerate inputs.
pub fn skewness(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(x);
    let sd = std_dev(x);
    if sd < 1e-12 {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / sd).powi(3)).sum::<f64>() / n as f64
}

/// Excess kurtosis; 0.0 for degenerate inputs.
pub fn kurtosis(x: &[f64]) -> f64 {
    let n = x.len();
    if n < 4 {
        return 0.0;
    }
    let m = mean(x);
    let sd = std_dev(x);
    if sd < 1e-12 {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / sd).powi(4)).sum::<f64>() / n as f64 - 3.0
}

/// Peak-to-peak amplitude; 0.0 for empty input.
pub fn peak_to_peak(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let lo = x.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    hi - lo
}

/// Number of sign changes between consecutive samples.
pub fn zero_crossings(x: &[f64]) -> usize {
    x.windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count()
}

/// Number of crossings of the signal mean.
pub fn mean_crossings(x: &[f64]) -> usize {
    let m = mean(x);
    x.windows(2).filter(|w| (w[0] >= m) != (w[1] >= m)).count()
}

/// Linearly interpolated `q`-quantile (`q` in `[0, 1]`).
///
/// Ordering follows [`f64::total_cmp`], so NaN-contaminated input
/// ranks NaNs at the extremes instead of panicking.
///
/// # Panics
///
/// Panics if `x` is empty or `q` is outside `[0, 1]`.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    assert!(!x.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let mut v = x.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < v.len() {
        v[i] * (1.0 - frac) + v[i + 1] * frac
    } else {
        v[i]
    }
}

/// Biased autocorrelation at integer `lag` of the mean-removed signal,
/// normalized so lag 0 gives 1 (0.0 for degenerate inputs).
pub fn autocorrelation(x: &[f64], lag: usize) -> f64 {
    let n = x.len();
    if n == 0 || lag >= n {
        return 0.0;
    }
    let m = mean(x);
    let denom: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
    if denom < 1e-12 {
        return 0.0;
    }
    let num: f64 = (0..n - lag).map(|i| (x[i] - m) * (x[i + lag] - m)).sum();
    num / denom
}

/// Mean absolute deviation from the mean; 0.0 for empty input.
pub fn mean_abs_deviation(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m).abs()).sum::<f64>() / x.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_with_nan_does_not_panic() {
        // Regression: contaminated input used to panic "NaN in
        // quantile input"; NaNs now rank at the extremes.
        let x = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(quantile(&x, 0.0), 1.0);
        // Median of [1, 2, 3, NaN] interpolates between 2 and 3.
        assert!((quantile(&x, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn basic_moments() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < 1e-12);
        assert!((std_dev(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_distribution_has_zero_skew() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&x).abs() < 1e-12);
    }

    #[test]
    fn right_tail_positive_skew() {
        let x = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(skewness(&x) > 0.5);
    }

    #[test]
    fn uniformish_negative_excess_kurtosis() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(kurtosis(&x) < 0.0);
    }

    #[test]
    fn crossings() {
        let x = [1.0, -1.0, 1.0, -1.0];
        assert_eq!(zero_crossings(&x), 3);
        assert_eq!(mean_crossings(&x), 3);
    }

    #[test]
    fn quantiles() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&x, 0.0), 1.0);
        assert_eq!(quantile(&x, 1.0), 4.0);
        assert!((quantile(&x, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn autocorr_of_periodic_signal() {
        let x: Vec<f64> = (0..200)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 20.0).sin())
            .collect();
        assert!((autocorrelation(&x, 0) - 1.0).abs() < 1e-12);
        assert!(autocorrelation(&x, 20) > 0.8, "period lag should correlate");
        assert!(
            autocorrelation(&x, 10) < -0.8,
            "half period anti-correlates"
        );
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(peak_to_peak(&[]), 0.0);
        assert_eq!(mean_abs_deviation(&[]), 0.0);
        assert_eq!(autocorrelation(&[], 3), 0.0);
    }

    #[test]
    fn rms_and_ptp() {
        let x = [3.0, -3.0, 3.0, -3.0];
        assert!((rms(&x) - 3.0).abs() < 1e-12);
        assert_eq!(peak_to_peak(&x), 6.0);
    }
}
