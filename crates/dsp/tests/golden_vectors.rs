//! Golden-vector tests: pin the DSP kernels to independently computed
//! reference values committed under `tests/golden/`.
//!
//! The Savitzky–Golay files hold the exact least-squares projection
//! coefficients evaluated in rational arithmetic (they agree with
//! `scipy.signal.savgol_coeffs(31, order)` to f64 precision; the centre
//! tap equals the published closed form `3(3m²+3m−1)/((2m+3)(2m+1)(2m−1))`
//! for order 2–3). The trend file is the exact rational solve of the
//! Tarvainen 2002 system `(I + λ²D₂ᵀD₂)x = e₈`.

use p2auth_dsp::detrend::trend;
use p2auth_dsp::savgol::savgol_coeffs;

fn parse_golden(text: &str) -> Vec<f64> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.parse::<f64>()
                .expect("golden file holds one f64 per line")
        })
        .collect()
}

fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= tol,
            "{what}[{i}]: got {g}, want {w} (|diff| {} > {tol})",
            (g - w).abs()
        );
    }
}

#[test]
fn savgol_coeffs_match_scipy_w31() {
    for (order, golden) in [
        (2, include_str!("golden/savgol_w31_o2.txt")),
        (3, include_str!("golden/savgol_w31_o3.txt")),
        (4, include_str!("golden/savgol_w31_o4.txt")),
    ] {
        let want = parse_golden(golden);
        assert_eq!(want.len(), 31);
        let got = savgol_coeffs(31, order);
        assert_close(&got, &want, 1e-12, &format!("savgol w=31 o={order}"));
        // Smoothing coefficients reproduce constants exactly.
        let sum: f64 = got.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "o={order}: sum {sum}");
    }
}

#[test]
fn savgol_order_2_and_3_coincide() {
    // For symmetric windows the odd-order term integrates out, so the
    // order-2 and order-3 smoothing kernels are identical — a property
    // of the math the two golden files must also satisfy.
    let o2 = parse_golden(include_str!("golden/savgol_w31_o2.txt"));
    let o3 = parse_golden(include_str!("golden/savgol_w31_o3.txt"));
    assert_close(&o2, &o3, 1e-15, "o2 vs o3");
}

#[test]
fn trend_matches_exact_tarvainen_solve() {
    let want = parse_golden(include_str!("golden/trend_impulse_n16_lambda10.txt"));
    assert_eq!(want.len(), 16);
    let mut y = vec![0.0_f64; 16];
    y[8] = 1.0;
    let got = trend(&y, 10.0);
    // Banded-Cholesky rounding: condition number ≲ 1 + 16λ² ≈ 1.6e3.
    assert_close(&got, &want, 1e-11, "trend n=16 λ=10");
}

#[test]
fn trend_of_ramp_is_ramp() {
    // Closed form: D₂(ramp) = 0, so (I + λ²D₂ᵀD₂)(ramp) = ramp and the
    // trend operator leaves any straight line fixed, for every λ.
    let ramp: Vec<f64> = (0..64).map(|i| 0.25 * i as f64 - 3.0).collect();
    for lambda in [0.0, 1.0, 10.0, 500.0] {
        let got = trend(&ramp, lambda);
        assert_close(&got, &ramp, 1e-8, &format!("ramp λ={lambda}"));
    }
}
