//! Property-based tests over the DSP substrate.

use p2auth_dsp::detrend::{detrend, trend};
use p2auth_dsp::dtw::{dtw, dtw_normalized, DtwOptions};
use p2auth_dsp::energy::short_time_energy;
use p2auth_dsp::median::median_filter;
use p2auth_dsp::normalize::{min_max, zscore};
use p2auth_dsp::peaks::{deviation_from_local_mean, local_extrema};
use p2auth_dsp::resample::resample_linear;
use p2auth_dsp::savgol::savgol_filter;
use p2auth_dsp::stats;
use proptest::prelude::*;

fn signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0_f64..100.0, 1..max_len)
}

proptest! {
    #[test]
    fn median_output_within_input_range(x in signal(200), half in 0_usize..5) {
        let window = 2 * half + 1;
        let y = median_filter(&x, window);
        let lo = x.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = x.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(y.len(), x.len());
        for v in y {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    #[test]
    fn median_idempotent_for_window3_on_sorted(mut x in signal(100)) {
        x.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // A monotone signal is a fixed point of the median filter.
        let y = median_filter(&x, 3);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn savgol_preserves_affine(c0 in -10.0_f64..10.0, c1 in -1.0_f64..1.0) {
        let x: Vec<f64> = (0..60).map(|i| c0 + c1 * i as f64).collect();
        let y = savgol_filter(&x, 9, 2);
        for i in 4..56 {
            prop_assert!((y[i] - x[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn detrend_sums_back(x in signal(300), lambda in 0.0_f64..100.0) {
        let t = trend(&x, lambda);
        let d = detrend(&x, lambda);
        for i in 0..x.len() {
            prop_assert!((t[i] + d[i] - x[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn detrend_kills_affine(c0 in -10.0_f64..10.0, c1 in -0.5_f64..0.5) {
        let x: Vec<f64> = (0..120).map(|i| c0 + c1 * i as f64).collect();
        let d = detrend(&x, 200.0);
        let max = d.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        prop_assert!(max < 1e-5, "residual {}", max);
    }

    #[test]
    fn energy_nonnegative_and_counts(x in signal(200), w in 1_usize..20, h in 1_usize..20) {
        let e = short_time_energy(&x, w, h);
        if x.len() >= w {
            prop_assert_eq!(e.len(), (x.len() - w) / h + 1);
        } else {
            prop_assert!(e.is_empty());
        }
        for v in e {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn dtw_nonnegative_and_symmetric(a in signal(40), b in signal(40)) {
        let d1 = dtw(&a, &b, DtwOptions::default());
        let d2 = dtw(&b, &a, DtwOptions::default());
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn dtw_identity_zero(a in signal(50)) {
        prop_assert_eq!(dtw(&a, &a, DtwOptions::default()), 0.0);
        prop_assert_eq!(dtw_normalized(&a, &a, DtwOptions::default()), 0.0);
    }

    #[test]
    fn dtw_banded_upper_bounds_full(a in signal(30), b in signal(30), band in 1_usize..10) {
        let full = dtw(&a, &b, DtwOptions::default());
        let banded = dtw(&a, &b, DtwOptions { band: Some(band) });
        prop_assert!(banded + 1e-9 >= full);
    }

    #[test]
    fn zscore_is_standardized(x in prop::collection::vec(-50.0_f64..50.0, 3..100)) {
        let z = zscore(&x);
        let m = stats::mean(&z);
        prop_assert!(m.abs() < 1e-8);
        let v = stats::variance(&z);
        // Either standardized or the input was (near-)constant.
        prop_assert!((v - 1.0).abs() < 1e-6 || v < 1e-6);
    }

    #[test]
    fn min_max_in_unit_interval(x in signal(100)) {
        for v in min_max(&x) {
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn resample_round_trip_length(x in signal(200)) {
        let down = resample_linear(&x, 100.0, 50.0);
        let up = resample_linear(&down, 50.0, 100.0);
        prop_assert!((up.len() as i64 - x.len() as i64).abs() <= 2);
    }

    #[test]
    fn extrema_are_interior(x in signal(100)) {
        for idx in local_extrema(&x) {
            prop_assert!(idx > 0 && idx + 1 < x.len());
        }
    }

    #[test]
    fn deviation_nonnegative(x in signal(100), s in 0_usize..100, w in 0_usize..40) {
        let s = s.min(x.len() - 1);
        prop_assert!(deviation_from_local_mean(&x, s, w) >= 0.0);
    }

    #[test]
    fn quantile_monotone(x in signal(80), q1 in 0.0_f64..1.0, q2 in 0.0_f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(stats::quantile(&x, lo) <= stats::quantile(&x, hi) + 1e-12);
    }
}
