//! Cross-checks of the optimized DSP routines against naive reference
//! implementations on random inputs. These are stronger than the unit
//! tests: any algebraic shortcut (banded Cholesky, rolling DP, FFT
//! butterflies) must agree with the textbook formulation bit-for-bit up
//! to floating-point tolerance.

use p2auth_dsp::detrend::trend;
use p2auth_dsp::dtw::{dtw, DtwOptions};
use p2auth_dsp::fft::{fft_in_place, Complex};
use p2auth_dsp::median::median_filter;
use proptest::prelude::*;

/// Naive O(n³) smoothness-priors trend: build (I + λ²D₂ᵀD₂) densely and
/// solve by Gaussian elimination.
fn trend_reference(y: &[f64], lambda: f64) -> Vec<f64> {
    let n = y.len();
    if n < 3 {
        return y.to_vec();
    }
    let l2 = lambda * lambda;
    let mut a = vec![vec![0.0_f64; n]; n];
    for (i, row) in a.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for k in 0..n - 2 {
        let idx = [k, k + 1, k + 2];
        let val = [1.0, -2.0, 1.0];
        for p in 0..3 {
            for q in 0..3 {
                a[idx[p]][idx[q]] += l2 * val[p] * val[q];
            }
        }
    }
    let mut b = y.to_vec();
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        a.swap(col, piv);
        b.swap(col, piv);
        let d = a[col][col];
        for r in col + 1..n {
            let f = a[r][col] / d;
            if f != 0.0 {
                #[allow(clippy::needless_range_loop)] // parallel-array elimination
                for c in col..n {
                    a[r][c] -= f * a[col][c];
                }
                b[r] -= f * b[col];
            }
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    x
}

/// Naive O(n·m) full-matrix DTW.
fn dtw_reference(a: &[f64], b: &[f64]) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 && m == 0 {
        return 0.0;
    }
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    let mut d = vec![vec![f64::INFINITY; m + 1]; n + 1];
    d[0][0] = 0.0;
    for i in 1..=n {
        for j in 1..=m {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = d[i - 1][j].min(d[i][j - 1]).min(d[i - 1][j - 1]);
            d[i][j] = cost + best;
        }
    }
    d[n][m]
}

/// Naive O(n²) DFT.
fn dft_reference(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::new(0.0, 0.0);
            for (j, v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                acc = Complex::new(acc.re + v.re * c - v.im * s, acc.im + v.re * s + v.im * c);
            }
            acc
        })
        .collect()
}

/// Naive median filter with explicit edge replication.
fn median_reference(x: &[f64], window: usize) -> Vec<f64> {
    let half = window / 2;
    let n = x.len();
    (0..n)
        .map(|i| {
            let mut w: Vec<f64> = (0..window)
                .map(|j| {
                    let idx = (i + j).saturating_sub(half).min(n - 1);
                    x[idx]
                })
                .collect();
            w.sort_by(|a, b| a.partial_cmp(b).unwrap());
            if window % 2 == 1 {
                w[window / 2]
            } else {
                0.5 * (w[window / 2 - 1] + w[window / 2])
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn banded_trend_matches_dense_solver(
        y in prop::collection::vec(-10.0_f64..10.0, 3..60),
        lambda in 0.1_f64..100.0,
    ) {
        let fast = trend(&y, lambda);
        let slow = trend_reference(&y, lambda);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-6, "banded {} vs dense {}", a, b);
        }
    }

    #[test]
    fn rolling_dtw_matches_full_matrix(
        a in prop::collection::vec(-5.0_f64..5.0, 1..30),
        b in prop::collection::vec(-5.0_f64..5.0, 1..30),
    ) {
        let fast = dtw(&a, &b, DtwOptions::default());
        let slow = dtw_reference(&a, &b);
        prop_assert!((fast - slow).abs() < 1e-9);
    }

    #[test]
    fn fft_matches_dft(signal in prop::collection::vec(-3.0_f64..3.0, 1..5_usize)) {
        // Lengths 2^k for k in 1..5.
        let n = 1_usize << signal.len();
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin() + signal[i % signal.len()], 0.1 * i as f64))
            .collect();
        let mut fast = x.clone();
        fft_in_place(&mut fast);
        let slow = dft_reference(&x);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a.re - b.re).abs() < 1e-7 && (a.im - b.im).abs() < 1e-7);
        }
    }

    #[test]
    fn median_matches_reference(
        x in prop::collection::vec(-10.0_f64..10.0, 1..80),
        half in 0_usize..4,
    ) {
        let window = 2 * half + 1;
        let fast = median_filter(&x, window);
        let slow = median_reference(&x, window);
        prop_assert_eq!(fast, slow);
    }
}
