//! Architecture guards: machine-checked layering rules.
//!
//! The workspace is a strict DAG of layers (DESIGN.md "Crate map"):
//! algorithm crates (`dsp`, `rocket`, `ml`) must never depend on the
//! environment crates (`sim`, `device`), the decision core must stay
//! I/O-free so it can run on a watch, and leaf utility crates
//! (`par`, `obs`) must stay dependency-free. Those rules only hold as
//! long as nobody adds one line to a `Cargo.toml` — so this crate pins
//! them as tests, run by the CI `guards-replay` lane.
//!
//! Two checks:
//!
//! * **Layer DAG** — each crate's *runtime* `[dependencies]` on other
//!   workspace crates must be a subset of its allow-list in
//!   [`layer_rules`]; the induced graph must be acyclic. Crates not in
//!   the rule table fail closed (an unknown crate is a violation, not
//!   a pass).
//! * **I/O ban** — sources of the pure layers ([`IO_BANNED_CRATES`]:
//!   `core`, `dsp`, `rocket`, `ml`) must not mention `std::fs`,
//!   `std::net` or `std::process`, even in comments: the token scan is
//!   deliberately blunt so it cannot be fooled by cfg-gating.
//!
//! The manifest parser is a ~60-line line-oriented scanner, not a TOML
//! implementation: it only needs section headers and dependency keys,
//! and a parser bug fails toward *more* reported dependencies, which
//! fails the guard loudly instead of silently passing. Both checks are
//! exercised against known-bad fixtures in `tests/fixtures/`, so the
//! guard itself is guarded against rotting into a tautology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};

/// Crates whose sources must not touch process-level I/O, with the
/// banned tokens. The decision pipeline has to be runnable on an
/// embedded target and fully deterministic under replay; filesystem,
/// network or subprocess access anywhere under these crates breaks
/// both.
pub const IO_BANNED_CRATES: &[&str] = &["core", "dsp", "rocket", "ml", "obs"];

/// Tokens that constitute process-level I/O.
pub const IO_DENYLIST: &[&str] = &["std::fs", "std::net", "std::process"];

/// Source files inside [`IO_BANNED_CRATES`] that are *allowed* to
/// touch the filesystem, as `crates/`-relative suffixes. Kept to the
/// absolute minimum: the observability crate is banned as a whole (its
/// metrics/event/SLO layers must stay replay-pure), and only its
/// durable shard-persistence module may write. Adding a path here is a
/// reviewed architecture decision, not a convenience.
#[must_use]
pub fn io_allowlist() -> &'static [&'static str] {
    &["obs/src/persist.rs"]
}

/// Whether `path` is an allow-listed exception to the I/O ban. The
/// comparison is on `/`-normalized path suffixes so it holds from any
/// working directory and on any separator.
#[must_use]
pub fn io_allowed(path: &Path) -> bool {
    let normalized = path
        .to_string_lossy()
        .replace(std::path::MAIN_SEPARATOR, "/");
    io_allowlist()
        .iter()
        .any(|allowed| normalized.ends_with(&format!("crates/{allowed}")))
}

/// The allowed *runtime* workspace dependencies of every crate, i.e.
/// the layer DAG. `dev-dependencies` are exempt: tests may reach
/// across layers.
///
/// Fail-closed in both directions: a crate missing from this table is
/// an error, and a listed crate depending on anything not in its row
/// is an error.
#[must_use]
pub fn layer_rules() -> &'static [(&'static str, &'static [&'static str])] {
    &[
        // Leaf utilities: no workspace dependencies at all.
        ("p2auth-par", &[]),
        ("p2auth-obs", &[]),
        ("p2auth-guards", &[]),
        // Algorithm layers: never sim, never device, never core.
        ("p2auth-dsp", &[]),
        ("p2auth-rocket", &["p2auth-par", "p2auth-obs"]),
        ("p2auth-ml", &["p2auth-dsp", "p2auth-par", "p2auth-obs"]),
        // The decision core sits on the algorithm layers only.
        (
            "p2auth-core",
            &[
                "p2auth-dsp",
                "p2auth-par",
                "p2auth-rocket",
                "p2auth-ml",
                "p2auth-obs",
            ],
        ),
        // Environment layers sit on core, never on each other's guts.
        ("p2auth-sim", &["p2auth-dsp", "p2auth-core", "p2auth-obs"]),
        ("p2auth-device", &["p2auth-core", "p2auth-obs"]),
        (
            "p2auth-baseline",
            &[
                "p2auth-dsp",
                "p2auth-ml",
                "p2auth-rocket",
                "p2auth-core",
                "p2auth-obs",
            ],
        ),
        // The oracle harness may see dsp and (optionally) rocket.
        ("p2auth-verify", &["p2auth-dsp", "p2auth-rocket"]),
        // The serving layer sits above device (sessions) and sim (the
        // fleet's traffic generator), never above the CLI or bench.
        (
            "p2auth-server",
            &[
                "p2auth-core",
                "p2auth-device",
                "p2auth-sim",
                "p2auth-par",
                "p2auth-obs",
            ],
        ),
        // Top-of-stack consumers.
        (
            "p2auth-bench",
            &[
                "p2auth-dsp",
                "p2auth-par",
                "p2auth-rocket",
                "p2auth-ml",
                "p2auth-sim",
                "p2auth-device",
                "p2auth-core",
                "p2auth-baseline",
                "p2auth-obs",
                "p2auth-server",
            ],
        ),
        (
            "p2auth-cli",
            &[
                "p2auth-core",
                "p2auth-sim",
                "p2auth-device",
                "p2auth-obs",
                "p2auth-server",
            ],
        ),
    ]
}

/// A crate manifest reduced to what the guard cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Workspace (`p2auth-*`) crates named under runtime
    /// `[dependencies]` (including `optional` and
    /// `[dependencies.<name>]` forms; `dev-dependencies` and
    /// `build-dependencies` excluded).
    pub runtime_deps: Vec<String>,
}

fn section_of(line: &str) -> Option<&str> {
    let t = line.trim();
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    Some(inner.trim_matches('['))
}

fn key_of(line: &str) -> Option<&str> {
    let t = line.trim();
    if t.starts_with('#') {
        return None;
    }
    let (key, _) = t.split_once('=')?;
    // `p2auth-dsp.workspace = true` is a dotted key for `p2auth-dsp`.
    let key = key.trim().trim_matches('"');
    Some(key.split('.').next().unwrap_or(key))
}

/// Parses the subset of TOML the guard needs from a `Cargo.toml`.
///
/// Unknown constructs err on the side of *reporting* a dependency:
/// a false positive fails the guard visibly, a false negative would
/// let a layer violation through.
#[must_use]
pub fn parse_manifest(text: &str) -> Manifest {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        if let Some(s) = section_of(line) {
            section = s.to_string();
            // `[dependencies.p2auth-x]` declares a dependency in the
            // header itself.
            if let Some(dep) = section.strip_prefix("dependencies.") {
                if dep.starts_with("p2auth-") {
                    deps.push(dep.to_string());
                }
            }
            continue;
        }
        match section.as_str() {
            "package" => {
                if key_of(line) == Some("name") {
                    if let Some((_, v)) = line.split_once('=') {
                        name = v.trim().trim_matches('"').to_string();
                    }
                }
            }
            "dependencies" => {
                if let Some(key) = key_of(line) {
                    if key.starts_with("p2auth-") {
                        deps.push(key.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    deps.sort();
    deps.dedup();
    Manifest {
        name,
        runtime_deps: deps,
    }
}

/// Checks one manifest against the layer rules, returning
/// human-readable violations (empty means compliant).
#[must_use]
pub fn check_layers(manifest: &Manifest, rules: &[(&str, &[&str])]) -> Vec<String> {
    let Some((_, allowed)) = rules.iter().find(|(n, _)| *n == manifest.name) else {
        return vec![format!(
            "crate {:?} has no layer rule; add it to p2auth-guards::layer_rules",
            manifest.name
        )];
    };
    manifest
        .runtime_deps
        .iter()
        .filter(|d| !allowed.contains(&d.as_str()))
        .map(|d| {
            format!(
                "forbidden layer edge: {} -> {} (allowed: {:?})",
                manifest.name, d, allowed
            )
        })
        .collect()
}

/// Checks that the dependency edges over the rule table form a DAG.
/// Returns a cycle as a crate-name path if one exists.
#[must_use]
pub fn find_cycle(edges: &[(String, String)]) -> Option<Vec<String>> {
    fn visit(
        node: &str,
        edges: &[(String, String)],
        path: &mut Vec<String>,
        done: &mut Vec<String>,
    ) -> bool {
        if done.iter().any(|d| d == node) {
            return false;
        }
        if let Some(pos) = path.iter().position(|p| p == node) {
            path.drain(..pos);
            path.push(node.to_string());
            return true;
        }
        path.push(node.to_string());
        for (from, to) in edges {
            if from == node && visit(to, edges, path, done) {
                return true;
            }
        }
        path.pop();
        done.push(node.to_string());
        false
    }
    let mut done = Vec::new();
    for (from, _) in edges {
        let mut path = Vec::new();
        if visit(from, edges, &mut path, &mut done) {
            return Some(path);
        }
    }
    None
}

/// Scans one source text for banned I/O tokens, returning
/// `(line_number, token)` hits (1-indexed).
#[must_use]
pub fn scan_source_for_io(text: &str) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    for (i, line) in text.lines().enumerate() {
        for token in IO_DENYLIST {
            if line.contains(token) {
                hits.push((i + 1, *token));
            }
        }
    }
    hits
}

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` under
/// cargo, else the nearest ancestor of the current directory holding a
/// `crates/` directory and a workspace `Cargo.toml` (so the guard also
/// runs under a bare `rustc` test binary).
#[must_use]
pub fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = Path::new(&dir);
        if let Some(root) = p.ancestors().nth(2) {
            if root.join("crates").is_dir() {
                return root.to_path_buf();
            }
        }
    }
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        assert!(dir.pop(), "workspace root not found above current dir");
    }
}

/// Every `crates/*/Cargo.toml` in the workspace, sorted by path.
#[must_use]
pub fn workspace_manifests(root: &Path) -> Vec<(PathBuf, Manifest)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).unwrap_or_else(|e| panic!("read {}: {e}", crates.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path().join("Cargo.toml");
        if path.is_file() {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            out.push((path, parse_manifest(&text)));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Every `.rs` file under a directory, recursively, sorted.
#[must_use]
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_table_dependencies() {
        let m = parse_manifest(
            r#"
[package]
name = "p2auth-demo"

[dependencies]
p2auth-dsp.workspace = true
p2auth-rocket = { workspace = true, optional = true }
rand = "0.8"

[dependencies.p2auth-ml]
workspace = true

[dev-dependencies]
p2auth-sim.workspace = true
"#,
        );
        assert_eq!(m.name, "p2auth-demo");
        assert_eq!(m.runtime_deps, ["p2auth-dsp", "p2auth-ml", "p2auth-rocket"]);
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let m = parse_manifest(
            "[package]\nname = \"p2auth-x\"\n[dev-dependencies]\np2auth-sim.workspace = true\n",
        );
        assert!(m.runtime_deps.is_empty());
    }

    #[test]
    fn unknown_crate_fails_closed() {
        let m = Manifest {
            name: "p2auth-rogue".to_string(),
            runtime_deps: vec![],
        };
        assert_eq!(check_layers(&m, layer_rules()).len(), 1);
    }

    #[test]
    fn cycle_is_found() {
        let e = |a: &str, b: &str| (a.to_string(), b.to_string());
        let edges = vec![e("a", "b"), e("b", "c"), e("c", "a"), e("d", "a")];
        let cycle = find_cycle(&edges).expect("cycle exists");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4, "{cycle:?}");
        assert!(find_cycle(&[e("a", "b"), e("b", "c")]).is_none());
    }

    #[test]
    fn io_scan_reports_line_numbers() {
        let hits = scan_source_for_io("fn ok() {}\nuse std::fs;\nlet x = std::net::TcpStream;\n");
        assert_eq!(hits, vec![(2, "std::fs"), (3, "std::net")]);
    }

    #[test]
    fn io_allowlist_exempts_only_the_persistence_module() {
        assert!(io_allowed(Path::new("/repo/crates/obs/src/persist.rs")));
        assert!(io_allowed(Path::new("crates/obs/src/persist.rs")));
        // Neither the rest of the obs crate, nor a same-named file in
        // another banned crate, nor a nested impostor gets through.
        assert!(!io_allowed(Path::new("crates/obs/src/metrics.rs")));
        assert!(!io_allowed(Path::new("crates/core/src/persist.rs")));
        assert!(!io_allowed(Path::new("crates/obs/src/sub/persist.rs")));
    }
}
