//! The guard proper: every workspace manifest obeys the layer DAG,
//! the DAG is acyclic, the pure layers are I/O-free — and the checks
//! themselves still catch known-bad fixtures.

use p2auth_guards::{
    check_layers, find_cycle, io_allowed, io_allowlist, layer_rules, parse_manifest, rust_sources,
    scan_source_for_io, workspace_manifests, workspace_root, IO_BANNED_CRATES,
};

#[test]
fn every_crate_obeys_the_layer_dag() {
    let root = workspace_root();
    let manifests = workspace_manifests(&root);
    assert!(
        manifests.len() >= 13,
        "expected the full workspace, found {} manifests",
        manifests.len()
    );
    let mut violations = Vec::new();
    for (path, m) in &manifests {
        for v in check_layers(m, layer_rules()) {
            violations.push(format!("{}: {v}", path.display()));
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}

#[test]
fn the_layer_graph_is_acyclic() {
    let root = workspace_root();
    let mut edges = Vec::new();
    for (_, m) in workspace_manifests(&root) {
        for d in &m.runtime_deps {
            edges.push((m.name.clone(), d.clone()));
        }
    }
    assert!(!edges.is_empty(), "no dependency edges found");
    if let Some(cycle) = find_cycle(&edges) {
        panic!("dependency cycle: {}", cycle.join(" -> "));
    }
}

#[test]
fn pure_layers_never_touch_io() {
    let root = workspace_root();
    let mut hits = Vec::new();
    let mut scanned = 0;
    let mut allowed_seen = 0;
    for krate in IO_BANNED_CRATES {
        for src in rust_sources(&root.join("crates").join(krate).join("src")) {
            if io_allowed(&src) {
                allowed_seen += 1;
                continue;
            }
            scanned += 1;
            let text = std::fs::read_to_string(&src)
                .unwrap_or_else(|e| panic!("read {}: {e}", src.display()));
            for (line, token) in scan_source_for_io(&text) {
                hits.push(format!("{}:{line}: {token}", src.display()));
            }
        }
    }
    assert!(scanned > 10, "only {scanned} sources scanned — wrong root?");
    assert_eq!(
        allowed_seen,
        io_allowlist().len(),
        "allow-listed files missing from the tree — stale allowlist entry?"
    );
    assert!(hits.is_empty(), "I/O in pure layers:\n{}", hits.join("\n"));
}

#[test]
fn guard_catches_the_forbidden_dependency_fixture() {
    let bad = parse_manifest(include_str!("fixtures/forbidden_dep.toml"));
    assert_eq!(bad.name, "p2auth-dsp");
    assert_eq!(bad.runtime_deps, ["p2auth-device"]);
    let violations = check_layers(&bad, layer_rules());
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(
        violations[0].contains("p2auth-dsp -> p2auth-device"),
        "{violations:?}"
    );
}

#[test]
fn guard_catches_the_forbidden_io_fixture() {
    let hits = scan_source_for_io(include_str!("fixtures/forbidden_io.rs"));
    let tokens: Vec<_> = hits.iter().map(|(_, t)| *t).collect();
    assert!(tokens.contains(&"std::net"), "{hits:?}");
    assert!(tokens.contains(&"std::fs"), "{hits:?}");
}

#[test]
fn guard_catches_the_forbidden_io_obs_fixture() {
    // A filesystem escape from the obs crate outside `persist.rs`
    // must be flagged by the scan AND not rescued by the allowlist.
    let hits = scan_source_for_io(include_str!("fixtures/forbidden_io_obs.rs"));
    assert!(
        hits.iter().any(|(_, t)| *t == "std::fs"),
        "scan missed the fixture: {hits:?}"
    );
    assert!(!io_allowed(std::path::Path::new(
        "crates/obs/src/exporter_escape.rs"
    )));
    assert!(
        !io_allowed(std::path::Path::new(
            "crates/guards/tests/fixtures/forbidden_io_obs.rs"
        )),
        "the fixture itself must not be allow-listed"
    );
}

#[test]
fn rule_table_covers_exactly_the_workspace() {
    // A crate added to the workspace without a rule fails
    // `every_crate_obeys_the_layer_dag`; a rule left behind after a
    // crate is deleted fails here.
    let root = workspace_root();
    let names: Vec<_> = workspace_manifests(&root)
        .into_iter()
        .map(|(_, m)| m.name)
        .collect();
    for (rule_name, _) in layer_rules() {
        assert!(
            names.iter().any(|n| n == rule_name),
            "stale layer rule for {rule_name:?}"
        );
    }
}
