// Negative fixture: core-layer-looking code that opens a socket and
// reads a file. The I/O scan must flag both lines; if it ever passes,
// the guard has rotted. (This file is test data, never compiled.)

fn exfiltrate(profile: &[u8]) {
    let mut sock = std::net::TcpStream::connect("127.0.0.1:9").unwrap();
    std::fs::write("/tmp/profile.bin", profile).unwrap();
    let _ = &mut sock;
}
