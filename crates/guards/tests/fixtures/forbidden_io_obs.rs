//! Known-bad fixture: what a forbidden filesystem escape from the
//! observability crate would look like *outside* the allow-listed
//! persistence module. The I/O scan must flag this, and the allowlist
//! must not exempt it — `guard_catches_the_forbidden_io_obs_fixture`
//! asserts both. Never compiled into the workspace.

/// A metrics exporter that "helpfully" writes snapshots straight to
/// disk from the pure metrics layer — exactly the drift the ban stops.
pub fn dump_snapshot(path: &str, snapshot: &str) {
    std::fs::write(path, snapshot).expect("write snapshot");
}
