//! Common error type for classifier training.

use std::fmt;

/// Error training or applying a classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// The training set was empty.
    EmptyTrainingSet,
    /// Feature vectors have inconsistent dimensions.
    DimensionMismatch {
        /// Expected feature dimension.
        expected: usize,
        /// Conflicting dimension found.
        found: usize,
    },
    /// Labels and samples have different counts.
    LabelCountMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// All training labels belong to one class.
    SingleClass,
    /// A numerical routine failed (e.g. a singular system).
    Numerical {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "empty training set"),
            MlError::DimensionMismatch { expected, found } => {
                write!(f, "feature dimension mismatch: {found} != {expected}")
            }
            MlError::LabelCountMismatch { samples, labels } => {
                write!(f, "label count {labels} != sample count {samples}")
            }
            MlError::SingleClass => write!(f, "training labels contain a single class"),
            MlError::Numerical { detail } => write!(f, "numerical failure: {detail}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Validates a labelled training set; returns the feature dimension.
///
/// Generic over the row representation so both `&[Vec<f64>]` and
/// borrowed `&[&[f64]]` rows (e.g. views into a contiguous
/// `FeatureMatrix`) validate without copying.
pub(crate) fn validate_training<R: AsRef<[f64]>>(x: &[R], y: &[i8]) -> Result<usize, MlError> {
    if x.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(MlError::LabelCountMismatch {
            samples: x.len(),
            labels: y.len(),
        });
    }
    let dim = x[0].as_ref().len();
    for row in x {
        if row.as_ref().len() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                found: row.as_ref().len(),
            });
        }
    }
    let pos = y.iter().filter(|&&l| l > 0).count();
    if pos == 0 || pos == y.len() {
        return Err(MlError::SingleClass);
    }
    Ok(dim)
}
