//! k-nearest-neighbour classifier, one of the comparison models in the
//! paper's Fig. 15.

use crate::error::{validate_training, MlError};
use crate::linalg::sq_euclidean;
use p2auth_dsp::dtw::{dtw_normalized, DtwOptions};

/// Distance metric for [`KnnClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance on the raw feature vectors.
    Euclidean,
    /// Length-normalized dynamic time warping (for raw time series).
    Dtw {
        /// Optional Sakoe–Chiba band half-width.
        band: Option<usize>,
    },
}

/// A fitted k-NN binary classifier (`+1` / `-1` labels).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    metric: Metric,
    xs: Vec<Vec<f64>>,
    ys: Vec<i8>,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// With `Metric::Dtw`, rows may have differing lengths, so only
    /// emptiness and label consistency are validated.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] if the training set is empty, labels
    /// mismatch, only one class is present, or (for `Euclidean`) rows
    /// are ragged. `k` of zero is clamped to 1; `k` larger than the
    /// training set is clamped down.
    pub fn fit(k: usize, metric: Metric, x: &[Vec<f64>], y: &[i8]) -> Result<Self, MlError> {
        match metric {
            Metric::Euclidean => {
                validate_training(x, y)?;
            }
            Metric::Dtw { .. } => {
                if x.is_empty() {
                    return Err(MlError::EmptyTrainingSet);
                }
                if x.len() != y.len() {
                    return Err(MlError::LabelCountMismatch {
                        samples: x.len(),
                        labels: y.len(),
                    });
                }
                let pos = y.iter().filter(|&&l| l > 0).count();
                if pos == 0 || pos == y.len() {
                    return Err(MlError::SingleClass);
                }
            }
        }
        Ok(Self {
            k: k.clamp(1, x.len()),
            metric,
            xs: x.to_vec(),
            ys: y.to_vec(),
        })
    }

    /// Fraction of the `k` nearest neighbours labelled `+1`.
    ///
    /// # Panics
    ///
    /// Panics for `Euclidean` if `x` has the wrong dimension.
    pub fn positive_fraction(&self, x: &[f64]) -> f64 {
        let mut dists: Vec<(f64, i8)> = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(xi, &yi)| (self.distance(x, xi), yi))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"));
        let pos = dists[..self.k].iter().filter(|(_, l)| *l > 0).count();
        pos as f64 / self.k as f64
    }

    /// Majority-vote prediction in `{-1, +1}` (ties go to `-1`,
    /// the conservative "reject" outcome for authentication).
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.positive_fraction(x) > 0.5 {
            1
        } else {
            -1
        }
    }

    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self.metric {
            Metric::Euclidean => sq_euclidean(a, b),
            Metric::Dtw { band } => dtw_normalized(a, b, DtwOptions { band }),
        }
    }

    /// The number of neighbours actually used (after clamping).
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_clear_clusters() {
        let x = vec![
            vec![1.0, 1.0],
            vec![1.1, 0.9],
            vec![0.9, 1.2],
            vec![-1.0, -1.0],
            vec![-1.2, -0.8],
            vec![-0.9, -1.1],
        ];
        let y = vec![1, 1, 1, -1, -1, -1];
        let knn = KnnClassifier::fit(3, Metric::Euclidean, &x, &y).unwrap();
        assert_eq!(knn.predict(&[1.05, 1.0]), 1);
        assert_eq!(knn.predict(&[-1.0, -0.95]), -1);
    }

    #[test]
    fn k_clamped_to_training_size() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![-1, 1];
        let knn = KnnClassifier::fit(100, Metric::Euclidean, &x, &y).unwrap();
        assert_eq!(knn.k(), 2);
    }

    #[test]
    fn dtw_metric_handles_time_shift() {
        let bump = |c: usize, n: usize| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let d = (i as f64 - c as f64) / 2.0;
                    (-d * d).exp()
                })
                .collect()
        };
        // Positives: early bump (any phase). Negatives: double bump.
        let x = vec![
            bump(5, 30),
            bump(8, 30),
            bump(11, 30),
            bump(5, 30)
                .iter()
                .zip(bump(20, 30))
                .map(|(a, b)| a + b)
                .collect(),
            bump(7, 30)
                .iter()
                .zip(bump(22, 30))
                .map(|(a, b)| a + b)
                .collect(),
            bump(9, 30)
                .iter()
                .zip(bump(24, 30))
                .map(|(a, b)| a + b)
                .collect(),
        ];
        let y = vec![1, 1, 1, -1, -1, -1];
        let knn = KnnClassifier::fit(1, Metric::Dtw { band: None }, &x, &y).unwrap();
        assert_eq!(knn.predict(&bump(14, 30)), 1);
    }

    #[test]
    fn tie_rejects() {
        let x = vec![vec![0.0], vec![2.0]];
        let y = vec![1, -1];
        let knn = KnnClassifier::fit(2, Metric::Euclidean, &x, &y).unwrap();
        assert_eq!(knn.predict(&[1.0]), -1, "ties must reject");
    }

    #[test]
    fn errors_propagate() {
        assert!(matches!(
            KnnClassifier::fit(1, Metric::Euclidean, &[], &[]),
            Err(MlError::EmptyTrainingSet)
        ));
        let x = vec![vec![0.0], vec![1.0]];
        assert!(matches!(
            KnnClassifier::fit(1, Metric::Euclidean, &x, &[1]),
            Err(MlError::LabelCountMismatch { .. })
        ));
        assert!(matches!(
            KnnClassifier::fit(1, Metric::Euclidean, &x, &[1, 1]),
            Err(MlError::SingleClass)
        ));
    }
}
