//! Machine-learning substrate for the P²Auth reproduction.
//!
//! The paper trains binary per-user classifiers on MiniRocket features
//! with a ridge-regression classifier selected by cross-validation
//! (paper §IV-B 2.4), per-keystroke "binary gradient classifiers" for
//! two-handed input (§IV-B 2.6), and compares against KNN, ResNet and
//! RNN-FNN models (Fig. 15). All of those are implemented here from
//! scratch:
//!
//! * [`ridge`] — ridge classifier with exact leave-one-out CV,
//! * [`logistic`] — SGD logistic regression,
//! * [`knn`] — k-nearest neighbours (Euclidean or DTW metric),
//! * [`nn`] — compact manual-backprop networks (1-D residual CNN and a
//!   dense "RNN-FNN" stand-in),
//! * [`linalg`] — the small dense linear-algebra kernel behind ridge,
//! * [`metrics`] — authentication accuracy, true rejection rate, EER.
//!
//! # Example
//!
//! ```
//! use p2auth_ml::ridge::{RidgeClassifier, RidgeCvConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = vec![vec![1.0, 0.0], vec![0.9, 0.1], vec![-1.0, 0.0], vec![-0.8, -0.2]];
//! let y = vec![1, 1, -1, -1];
//! let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y)?;
//! assert_eq!(clf.predict(&[0.95, 0.0]), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod knn;
pub mod linalg;
pub mod logistic;
pub mod metrics;
pub mod nn;
pub mod ridge;

pub use error::MlError;
pub use p2auth_par::FeatureMatrix;
