//! Minimal dense linear algebra: just enough for ridge regression with
//! efficient leave-one-out cross-validation (Cholesky and symmetric
//! Jacobi eigendecomposition).

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Error from a linear-algebra routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix was not positive definite (Cholesky failed).
    NotPositiveDefinite {
        /// Row at which factorization broke down.
        row: usize,
    },
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { row } => {
                write!(f, "matrix not positive definite at row {row}")
            }
            LinalgError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Gram matrix `self * selfᵀ` (`rows × rows`), computed symmetrically.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.rows);
        for i in 0..self.rows {
            for j in i..self.rows {
                let v: f64 = self
                    .row(i)
                    .iter()
                    .zip(self.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
        out
    }

    /// Adds `c` to the diagonal in place.
    pub fn add_diagonal(&mut self, c: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += c;
        }
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotPositiveDefinite`] if factorization breaks down,
    /// [`LinalgError::ShapeMismatch`] if `A` is not square or `b` has the
    /// wrong length.
    pub fn cholesky_solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("{}x{} not square", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                detail: format!("rhs length {} != {}", b.len(), self.rows),
            });
        }
        let n = self.rows;
        // Lower-triangular factor L with A = L Lᵀ.
        let mut l = vec![0.0_f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = self[(i, j)];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { row: i });
                    }
                    l[i * n + i] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        // Forward solve L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= l[i * n + k] * z[k];
            }
            z[i] = s / l[i * n + i];
        }
        // Back solve Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = z[i];
            for k in i + 1..n {
                s -= l[k * n + i] * x[k];
            }
            x[i] = s / l[i * n + i];
        }
        Ok(x)
    }

    /// Eigendecomposition of a symmetric matrix by cyclic Jacobi
    /// rotations. Returns `(eigenvalues, eigenvectors)` where column `k`
    /// of the returned matrix is the eigenvector for eigenvalue `k`.
    /// Eigenvalues are sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(
            self.rows, self.cols,
            "eigendecomposition needs a square matrix"
        );
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 64;
        for _ in 0..max_sweeps {
            // Off-diagonal Frobenius norm.
            let mut off = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() < 1e-11 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-14 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Apply rotation to A (both sides) and accumulate V.
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| a[(i, i)].partial_cmp(&a[(j, j)]).expect("NaN eigenvalue"));
        let eigvals: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
        let mut vecs = Matrix::zeros(n, n);
        for (new_col, &old_col) in order.iter().enumerate() {
            for r in 0..n {
                vecs[(r, new_col)] = v[(r, old_col)];
            }
        }
        (eigvals, vecs)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [1, 2] -> x = [-1/8, 3/4].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = a.cholesky_solve(&[1.0, 2.0]).unwrap();
        assert!((x[0] + 0.125).abs() < 1e-12);
        assert!((x[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(matches!(
            a.cholesky_solve(&[1.0, 1.0]),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 1.0]]);
        let g = a.gram();
        assert_eq!(g.rows(), 2);
        assert!((g[(0, 1)] - g[(1, 0)]).abs() < 1e-12);
        assert!(g[(0, 0)] >= 0.0 && g[(1, 1)] >= 0.0);
    }

    #[test]
    fn eigen_of_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let (vals, _) = a.symmetric_eigen();
        assert!((vals[0] - 1.0).abs() < 1e-9);
        assert!((vals[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 0.5],
            vec![0.0, 0.5, 1.5],
        ]);
        let (vals, vecs) = a.symmetric_eigen();
        // A ≈ V diag(vals) Vᵀ.
        let mut d = Matrix::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let rec = vecs.matmul(&d).matmul(&vecs.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-8, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 2.0]]);
        let (_, v) = a.symmetric_eigen();
        let vtv = v.transpose().matmul(&v);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn helper_functions() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
