//! SGD logistic regression — the "binary gradient classifier" the paper
//! trains per keystroke for two-handed authentication (§IV-B 2.6).

use crate::error::{validate_training, MlError};
use crate::linalg::dot;
use p2auth_par::FeatureMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for [`LogisticClassifier::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            epochs: 200,
            l2: 1e-4,
            seed: 17,
        }
    }
}

/// A fitted binary logistic-regression classifier. Serializable so
/// enrolled models can be persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticClassifier {
    weights: Vec<f64>,
    intercept: f64,
}

impl LogisticClassifier {
    /// Fits by stochastic gradient descent on the logistic loss.
    ///
    /// Labels are `+1` / `-1`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] for empty/ragged training data, label
    /// mismatches, or single-class labels.
    pub fn fit(config: &LogisticConfig, x: &[Vec<f64>], y: &[i8]) -> Result<Self, MlError> {
        let rows: Vec<&[f64]> = x.iter().map(Vec::as_slice).collect();
        Self::fit_impl(config, &rows, y)
    }

    /// Like [`LogisticClassifier::fit`], but reads feature rows directly
    /// from a contiguous [`FeatureMatrix`] (as produced by the MiniRocket
    /// batch transform), avoiding per-row `Vec` boxing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogisticClassifier::fit`].
    pub fn fit_matrix(
        config: &LogisticConfig,
        x: &FeatureMatrix,
        y: &[i8],
    ) -> Result<Self, MlError> {
        let rows: Vec<&[f64]> = x.rows().collect();
        Self::fit_impl(config, &rows, y)
    }

    fn fit_impl(config: &LogisticConfig, x: &[&[f64]], y: &[i8]) -> Result<Self, MlError> {
        let _span = p2auth_obs::span!("ml.logistic.fit");
        let dim = validate_training(x, y)?;
        p2auth_obs::event!("ml.logistic", "fit", rows = x.len(), cols = dim);
        let n = x.len();
        let mut w = vec![0.0_f64; dim];
        let mut b = 0.0_f64;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let yi = if y[i] > 0 { 1.0 } else { -1.0 };
                let margin = yi * (dot(&w, &x[i]) + b);
                // dL/dmargin for logistic loss log(1 + e^{-m}).
                let g = -yi / (1.0 + margin.exp());
                for (wj, xj) in w.iter_mut().zip(x[i].iter()) {
                    *wj -= config.learning_rate * (g * xj + config.l2 * *wj);
                }
                b -= config.learning_rate * g;
            }
        }
        Ok(Self {
            weights: w,
            intercept: b,
        })
    }

    /// Probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn probability(&self, x: &[f64]) -> f64 {
        let z = dot(&self.weights, x) + self.intercept;
        1.0 / (1.0 + (-z).exp())
    }

    /// Predicted label in `{-1, +1}`.
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.probability(x) > 0.5 {
            1
        } else {
            -1
        }
    }

    /// The fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_free_data() -> (Vec<Vec<f64>>, Vec<i8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let t = i as f64 / 30.0;
            x.push(vec![1.0 + t, 1.0 - t * 0.3]);
            y.push(1);
            x.push(vec![-1.0 - t, -1.0 + t * 0.3]);
            y.push(-1);
        }
        (x, y)
    }

    #[test]
    fn separates_linear_data() {
        let (x, y) = xor_free_data();
        let clf = LogisticClassifier::fit(&LogisticConfig::default(), &x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| clf.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len());
    }

    #[test]
    fn probabilities_bounded_and_ordered() {
        let (x, y) = xor_free_data();
        let clf = LogisticClassifier::fit(&LogisticConfig::default(), &x, &y).unwrap();
        let p_pos = clf.probability(&[2.0, 1.0]);
        let p_neg = clf.probability(&[-2.0, -1.0]);
        assert!((0.0..=1.0).contains(&p_pos) && (0.0..=1.0).contains(&p_neg));
        assert!(p_pos > 0.9 && p_neg < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_free_data();
        let c1 = LogisticClassifier::fit(&LogisticConfig::default(), &x, &y).unwrap();
        let c2 = LogisticClassifier::fit(&LogisticConfig::default(), &x, &y).unwrap();
        assert_eq!(c1.weights(), c2.weights());
    }

    #[test]
    fn fit_matrix_matches_fit_bitwise() {
        let (x, y) = xor_free_data();
        let m = FeatureMatrix::from_rows(x.clone(), 2);
        let boxed = LogisticClassifier::fit(&LogisticConfig::default(), &x, &y).unwrap();
        let flat = LogisticClassifier::fit_matrix(&LogisticConfig::default(), &m, &y).unwrap();
        assert_eq!(boxed, flat);
    }

    #[test]
    fn rejects_single_class() {
        let x = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            LogisticClassifier::fit(&LogisticConfig::default(), &x, &[1, 1]),
            Err(MlError::SingleClass)
        ));
    }
}
