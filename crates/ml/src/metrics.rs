//! Evaluation metrics.
//!
//! The paper reports two headline metrics (§V-B): **authentication
//! accuracy** — the probability a legitimate user is accepted — and
//! **true rejection rate** — the probability an attacker is rejected.
//! Both are views of the same confusion counts, where the positive
//! class is "legitimate user accepted".

/// Confusion counts for a binary decision problem.
///
/// "Positive" means the sample belongs to the legitimate user and
/// "predicted positive" means the system accepted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// Legitimate attempts accepted.
    pub true_positives: usize,
    /// Attacker attempts accepted (security failures).
    pub false_positives: usize,
    /// Attacker attempts rejected.
    pub true_negatives: usize,
    /// Legitimate attempts rejected (usability failures).
    pub false_negatives: usize,
}

impl ConfusionCounts {
    /// Tallies predictions against labels (`+1` legitimate, `-1` other).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn from_predictions(preds: &[i8], labels: &[i8]) -> Self {
        assert_eq!(preds.len(), labels.len(), "length mismatch");
        let mut c = Self::default();
        for (&p, &l) in preds.iter().zip(labels) {
            c.record(p > 0, l > 0);
        }
        c
    }

    /// Records one decision.
    pub fn record(&mut self, accepted: bool, legitimate: bool) {
        match (accepted, legitimate) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &ConfusionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Authentication accuracy: accepted legitimate / all legitimate.
    /// Returns `None` when no legitimate attempts were recorded.
    pub fn authentication_accuracy(&self) -> Option<f64> {
        let n = self.true_positives + self.false_negatives;
        if n == 0 {
            None
        } else {
            Some(self.true_positives as f64 / n as f64)
        }
    }

    /// True rejection rate: rejected attacks / all attacks.
    /// Returns `None` when no attack attempts were recorded.
    pub fn true_rejection_rate(&self) -> Option<f64> {
        let n = self.true_negatives + self.false_positives;
        if n == 0 {
            None
        } else {
            Some(self.true_negatives as f64 / n as f64)
        }
    }

    /// False acceptance rate (1 − TRR); `None` with no attacks recorded.
    pub fn false_acceptance_rate(&self) -> Option<f64> {
        self.true_rejection_rate().map(|t| 1.0 - t)
    }

    /// Overall fraction of correct decisions; `None` when empty.
    pub fn overall_accuracy(&self) -> Option<f64> {
        let n =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if n == 0 {
            None
        } else {
            Some((self.true_positives + self.true_negatives) as f64 / n as f64)
        }
    }

    /// Total number of recorded decisions.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }
}

/// Fraction of matching labels; `None` for empty input.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accuracy(preds: &[i8], labels: &[i8]) -> Option<f64> {
    assert_eq!(preds.len(), labels.len(), "length mismatch");
    if preds.is_empty() {
        return None;
    }
    let ok = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    Some(ok as f64 / preds.len() as f64)
}

/// Equal error rate from decision scores of genuine and impostor trials.
///
/// Sweeps all observed score thresholds and returns the point where the
/// false-accept and false-reject rates are closest, averaged.
/// Returns `None` when either set is empty.
pub fn equal_error_rate(genuine: &[f64], impostor: &[f64]) -> Option<f64> {
    if genuine.is_empty() || impostor.is_empty() {
        return None;
    }
    let mut thresholds: Vec<f64> = genuine.iter().chain(impostor).copied().collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("NaN score"));
    thresholds.dedup();
    let mut best = (f64::INFINITY, 0.0);
    for &t in &thresholds {
        let frr = genuine.iter().filter(|&&s| s <= t).count() as f64 / genuine.len() as f64;
        let far = impostor.iter().filter(|&&s| s > t).count() as f64 / impostor.len() as f64;
        let gap = (frr - far).abs();
        if gap < best.0 {
            best = (gap, 0.5 * (frr + far));
        }
    }
    Some(best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_from_predictions() {
        let preds = [1, 1, -1, -1, 1];
        let labels = [1, -1, -1, 1, 1];
        let c = ConfusionCounts::from_predictions(&preds, &labels);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn metric_views() {
        let c = ConfusionCounts {
            true_positives: 90,
            false_negatives: 10,
            true_negatives: 98,
            false_positives: 2,
        };
        assert!((c.authentication_accuracy().unwrap() - 0.9).abs() < 1e-12);
        assert!((c.true_rejection_rate().unwrap() - 0.98).abs() < 1e-12);
        assert!((c.false_acceptance_rate().unwrap() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_cases_are_none() {
        let c = ConfusionCounts::default();
        assert!(c.authentication_accuracy().is_none());
        assert!(c.true_rejection_rate().is_none());
        assert!(c.overall_accuracy().is_none());
        assert!(accuracy(&[], &[]).is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionCounts {
            true_positives: 1,
            ..Default::default()
        };
        let b = ConfusionCounts {
            false_positives: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.true_positives, 1);
        assert_eq!(a.false_positives, 2);
    }

    #[test]
    fn eer_separable_is_zero() {
        let genuine = [1.0, 2.0, 3.0];
        let impostor = [-3.0, -2.0, -1.0];
        assert!(equal_error_rate(&genuine, &impostor).unwrap() < 1e-12);
    }

    #[test]
    fn eer_fully_overlapping_is_half() {
        let genuine = [0.0, 1.0];
        let impostor = [0.0, 1.0];
        let eer = equal_error_rate(&genuine, &impostor).unwrap();
        assert!((eer - 0.5).abs() < 0.26, "eer {eer}");
    }
}
