//! Compact neural networks with manual backpropagation.
//!
//! The paper's Fig. 15 compares MiniRocket+ridge against "Resnet, KNN
//! and RNN-FNN". This module provides from-scratch, dependency-free
//! stand-ins for the neural comparators:
//!
//! * [`Network::resnet1d`] — a small 1-D convolutional network with one
//!   residual block and global average pooling,
//! * [`Network::rnn_fnn`] — a dense feed-forward network intended to be
//!   fed recurrent-style lag features.
//!
//! Both are binary classifiers trained with SGD + momentum on the
//! logistic loss. They are intentionally small: the paper trains on at
//! most a few dozen samples per user, so capacity is not the bottleneck.

use crate::error::MlError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// An activation tensor: `channels × len`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Number of channels.
    pub channels: usize,
    /// Length per channel.
    pub len: usize,
    /// Row-major data (`channels * len` values).
    pub data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * len` or either is zero.
    pub fn new(channels: usize, len: usize, data: Vec<f64>) -> Self {
        assert!(channels > 0 && len > 0, "tensor dims must be positive");
        assert_eq!(data.len(), channels * len, "data length mismatch");
        Self {
            channels,
            len,
            data,
        }
    }

    /// Creates a zero tensor.
    pub fn zeros(channels: usize, len: usize) -> Self {
        Self::new(channels, len, vec![0.0; channels * len])
    }

    /// A flat (1 × d) tensor from a vector.
    ///
    /// # Panics
    ///
    /// Panics if `v` is empty.
    pub fn flat(v: Vec<f64>) -> Self {
        let len = v.len();
        Self::new(1, len, v)
    }

    /// Builds a tensor from channel rows.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged input.
    pub fn from_channels(channels: &[Vec<f64>]) -> Self {
        assert!(!channels.is_empty(), "no channels");
        let len = channels[0].len();
        let mut data = Vec::with_capacity(channels.len() * len);
        for c in channels {
            assert_eq!(c.len(), len, "ragged channels");
            data.extend_from_slice(c);
        }
        Self::new(channels.len(), len, data)
    }

    fn at(&self, ch: usize, i: usize) -> f64 {
        self.data[ch * self.len + i]
    }

    fn total(&self) -> usize {
        self.data.len()
    }
}

/// A trainable layer.
trait Layer {
    fn forward(&mut self, x: &Tensor) -> Tensor;
    fn backward(&mut self, grad: &Tensor) -> Tensor;
    fn step(&mut self, lr: f64, momentum: f64);
}

// ---------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------

struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>, // out_dim x in_dim
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    vw: Vec<f64>,
    vb: Vec<f64>,
    cache: Vec<f64>,
}

impl Dense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let s = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-s..s))
            .collect();
        Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            vw: vec![0.0; in_dim * out_dim],
            vb: vec![0.0; out_dim],
            cache: Vec::new(),
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.total(), self.in_dim, "dense input dim mismatch");
        self.cache = x.data.clone();
        let mut out = vec![0.0; self.out_dim];
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *out_v = self.b[o] + row.iter().zip(&x.data).map(|(w, v)| w * v).sum::<f64>();
        }
        Tensor::flat(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(grad.total(), self.out_dim);
        let mut gx = vec![0.0; self.in_dim];
        for o in 0..self.out_dim {
            let g = grad.data[o];
            self.gb[o] += g;
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut self.gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * self.cache[i];
                gx[i] += g * row[i];
            }
        }
        Tensor::flat(gx)
    }

    fn step(&mut self, lr: f64, momentum: f64) {
        for i in 0..self.w.len() {
            self.vw[i] = momentum * self.vw[i] - lr * self.gw[i];
            self.w[i] += self.vw[i];
            self.gw[i] = 0.0;
        }
        for i in 0..self.b.len() {
            self.vb[i] = momentum * self.vb[i] - lr * self.gb[i];
            self.b[i] += self.vb[i];
            self.gb[i] = 0.0;
        }
    }
}

// ---------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------

struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    fn new() -> Self {
        Self { mask: Vec::new() }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.mask = x.data.iter().map(|&v| v > 0.0).collect();
        Tensor::new(
            x.channels,
            x.len,
            x.data.iter().map(|&v| v.max(0.0)).collect(),
        )
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        Tensor::new(
            grad.channels,
            grad.len,
            grad.data
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        )
    }

    fn step(&mut self, _lr: f64, _momentum: f64) {}
}

// ---------------------------------------------------------------------
// Conv1d (same padding, stride 1)
// ---------------------------------------------------------------------

struct Conv1d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    w: Vec<f64>, // out_ch x in_ch x k
    b: Vec<f64>,
    gw: Vec<f64>,
    gb: Vec<f64>,
    vw: Vec<f64>,
    vb: Vec<f64>,
    cache: Option<Tensor>,
}

impl Conv1d {
    fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut StdRng) -> Self {
        assert!(k % 2 == 1, "conv kernel must be odd");
        let fan = in_ch * k + out_ch * k;
        let s = (6.0 / fan as f64).sqrt();
        let w = (0..in_ch * out_ch * k)
            .map(|_| rng.gen_range(-s..s))
            .collect();
        Self {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch],
            gw: vec![0.0; in_ch * out_ch * k],
            gb: vec![0.0; out_ch],
            vw: vec![0.0; in_ch * out_ch * k],
            vb: vec![0.0; out_ch],
            cache: None,
        }
    }

    fn widx(&self, oc: usize, ic: usize, j: usize) -> usize {
        (oc * self.in_ch + ic) * self.k + j
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.channels, self.in_ch, "conv input channels mismatch");
        let n = x.len;
        let half = (self.k / 2) as i64;
        let mut out = Tensor::zeros(self.out_ch, n);
        for oc in 0..self.out_ch {
            for i in 0..n {
                let mut acc = self.b[oc];
                for ic in 0..self.in_ch {
                    for j in 0..self.k {
                        let t = i as i64 + j as i64 - half;
                        if t >= 0 && (t as usize) < n {
                            acc += self.w[self.widx(oc, ic, j)] * x.at(ic, t as usize);
                        }
                    }
                }
                out.data[oc * n + i] = acc;
            }
        }
        self.cache = Some(x.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let x = self.cache.take().expect("forward before backward");
        let n = x.len;
        let half = (self.k / 2) as i64;
        let mut gx = Tensor::zeros(self.in_ch, n);
        for oc in 0..self.out_ch {
            for i in 0..n {
                let g = grad.at(oc, i);
                if g == 0.0 {
                    continue;
                }
                self.gb[oc] += g;
                for ic in 0..self.in_ch {
                    for j in 0..self.k {
                        let t = i as i64 + j as i64 - half;
                        if t >= 0 && (t as usize) < n {
                            let t = t as usize;
                            let wi = self.widx(oc, ic, j);
                            self.gw[wi] += g * x.at(ic, t);
                            gx.data[ic * n + t] += g * self.w[wi];
                        }
                    }
                }
            }
        }
        self.cache = Some(x);
        gx
    }

    fn step(&mut self, lr: f64, momentum: f64) {
        for i in 0..self.w.len() {
            self.vw[i] = momentum * self.vw[i] - lr * self.gw[i];
            self.w[i] += self.vw[i];
            self.gw[i] = 0.0;
        }
        for i in 0..self.b.len() {
            self.vb[i] = momentum * self.vb[i] - lr * self.gb[i];
            self.b[i] += self.vb[i];
            self.gb[i] = 0.0;
        }
    }
}

// ---------------------------------------------------------------------
// Global average pooling: (C, L) -> (1, C)
// ---------------------------------------------------------------------

struct GlobalAvgPool {
    in_shape: (usize, usize),
}

impl GlobalAvgPool {
    fn new() -> Self {
        Self { in_shape: (0, 0) }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        self.in_shape = (x.channels, x.len);
        let out: Vec<f64> = (0..x.channels)
            .map(|c| x.data[c * x.len..(c + 1) * x.len].iter().sum::<f64>() / x.len as f64)
            .collect();
        Tensor::flat(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let (c, l) = self.in_shape;
        let mut gx = Tensor::zeros(c, l);
        for ch in 0..c {
            let g = grad.data[ch] / l as f64;
            for i in 0..l {
                gx.data[ch * l + i] = g;
            }
        }
        gx
    }

    fn step(&mut self, _lr: f64, _momentum: f64) {}
}

// ---------------------------------------------------------------------
// Residual block: out = inner(x) + x (shapes must match)
// ---------------------------------------------------------------------

struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for l in self.inner.iter_mut() {
            h = l.forward(&h);
        }
        assert_eq!(
            (h.channels, h.len),
            (x.channels, x.len),
            "residual branch must preserve shape"
        );
        Tensor::new(
            x.channels,
            x.len,
            h.data.iter().zip(&x.data).map(|(a, b)| a + b).collect(),
        )
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for l in self.inner.iter_mut().rev() {
            g = l.backward(&g);
        }
        Tensor::new(
            grad.channels,
            grad.len,
            g.data.iter().zip(&grad.data).map(|(a, b)| a + b).collect(),
        )
    }

    fn step(&mut self, lr: f64, momentum: f64) {
        for l in self.inner.iter_mut() {
            l.step(lr, momentum);
        }
    }
}

// ---------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------

/// Training hyper-parameters for [`Network::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            momentum: 0.9,
            epochs: 60,
            seed: 23,
        }
    }
}

/// A small sequential network ending in a single logit.
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("layers", &self.layers.len())
            .finish()
    }
}

impl Network {
    /// A compact 1-D convolutional residual network ("ResNet" comparator
    /// of the paper's Fig. 15) for `in_channels × len` inputs.
    pub fn resnet1d(in_channels: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = 8;
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv1d::new(in_channels, c, 7, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Residual {
                inner: vec![
                    Box::new(Conv1d::new(c, c, 5, &mut rng)),
                    Box::new(Relu::new()),
                    Box::new(Conv1d::new(c, c, 5, &mut rng)),
                ],
            }),
            Box::new(Relu::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(Dense::new(c, 1, &mut rng)),
        ];
        Self { layers }
    }

    /// A dense feed-forward network (the "RNN-FNN" comparator): the
    /// caller supplies lag features (see [`lag_features`]).
    pub fn rnn_fnn(input_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Dense::new(input_dim, 32, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(32, 16, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 1, &mut rng)),
        ];
        Self { layers }
    }

    /// Raw logit for one input.
    pub fn logit(&mut self, x: &Tensor) -> f64 {
        let mut h = x.clone();
        for l in self.layers.iter_mut() {
            h = l.forward(&h);
        }
        assert_eq!(h.total(), 1, "network must end in a single logit");
        h.data[0]
    }

    /// Probability of the positive class.
    pub fn probability(&mut self, x: &Tensor) -> f64 {
        let z = self.logit(x);
        1.0 / (1.0 + (-z).exp())
    }

    /// Predicted label in `{-1, +1}`.
    pub fn predict(&mut self, x: &Tensor) -> i8 {
        if self.probability(x) > 0.5 {
            1
        } else {
            -1
        }
    }

    /// Trains with per-sample SGD + momentum on the logistic loss.
    /// Labels are `+1` / `-1`. Returns the mean loss of the final epoch.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] if inputs are empty, labels mismatch, or all
    /// labels belong to one class.
    pub fn train(
        &mut self,
        config: &TrainConfig,
        xs: &[Tensor],
        ys: &[i8],
    ) -> Result<f64, MlError> {
        if xs.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        if xs.len() != ys.len() {
            return Err(MlError::LabelCountMismatch {
                samples: xs.len(),
                labels: ys.len(),
            });
        }
        let pos = ys.iter().filter(|&&l| l > 0).count();
        if pos == 0 || pos == ys.len() {
            return Err(MlError::SingleClass);
        }
        let mut order: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut last_loss = 0.0;
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            for &i in &order {
                let target = if ys[i] > 0 { 1.0 } else { 0.0 };
                let z = self.logit(&xs[i]);
                let p = 1.0 / (1.0 + (-z).exp());
                // BCE-with-logits loss and gradient dL/dz = p − target.
                let eps = 1e-12;
                loss_sum -= target * (p + eps).ln() + (1.0 - target) * (1.0 - p + eps).ln();
                let g = Tensor::flat(vec![p - target]);
                let mut grad = g;
                for l in self.layers.iter_mut().rev() {
                    grad = l.backward(&grad);
                }
                for l in self.layers.iter_mut() {
                    l.step(config.learning_rate, config.momentum);
                }
            }
            last_loss = loss_sum / xs.len() as f64;
        }
        Ok(last_loss)
    }
}

/// Builds recurrent-style lag features for the "RNN-FNN" model: for each
/// of `lags` evenly spaced lags, the mean absolute difference between
/// the signal and its lagged copy, per channel, plus channel mean/std.
///
/// Output length is `channels * (lags + 2)`.
///
/// # Panics
///
/// Panics if `lags` is zero or any channel is empty.
pub fn lag_features(channels: &[Vec<f64>], lags: usize) -> Vec<f64> {
    assert!(lags > 0, "need at least one lag");
    let mut out = Vec::with_capacity(channels.len() * (lags + 2));
    for c in channels {
        assert!(!c.is_empty(), "empty channel");
        let n = c.len();
        let mean = c.iter().sum::<f64>() / n as f64;
        let sd = (c.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64).sqrt();
        out.push(mean);
        out.push(sd);
        for l in 1..=lags {
            let lag = (l * n / (lags + 1)).max(1);
            if lag >= n {
                out.push(0.0);
                continue;
            }
            let mad =
                (0..n - lag).map(|i| (c[i + lag] - c[i]).abs()).sum::<f64>() / (n - lag) as f64;
            out.push(mad);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_conv_data() -> (Vec<Tensor>, Vec<i8>) {
        // Positives: low-frequency sine. Negatives: high-frequency sine.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for rep in 0..8 {
            let phase = rep as f64 * 0.4;
            let lo: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2 + phase).sin()).collect();
            let hi: Vec<f64> = (0..32).map(|i| (i as f64 * 1.5 + phase).sin()).collect();
            xs.push(Tensor::from_channels(&[lo]));
            ys.push(1);
            xs.push(Tensor::from_channels(&[hi]));
            ys.push(-1);
        }
        (xs, ys)
    }

    #[test]
    fn resnet_learns_frequency_discrimination() {
        let (xs, ys) = make_conv_data();
        let mut net = Network::resnet1d(1, 3);
        let cfg = TrainConfig {
            epochs: 120,
            ..Default::default()
        };
        net.train(&cfg, &xs, &ys).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| net.predict(x) == y)
            .count();
        assert!(correct >= 14, "{correct}/16 correct");
    }

    #[test]
    fn dense_net_learns_linear_data() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.1;
            xs.push(Tensor::flat(vec![1.0 + t, -t]));
            ys.push(1);
            xs.push(Tensor::flat(vec![-1.0 - t, t]));
            ys.push(-1);
        }
        let mut net = Network::rnn_fnn(2, 5);
        net.train(&TrainConfig::default(), &xs, &ys).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| net.predict(x) == y)
            .count();
        assert_eq!(correct, 40);
    }

    #[test]
    fn training_reduces_loss() {
        let (xs, ys) = make_conv_data();
        let mut net = Network::resnet1d(1, 9);
        let early = net
            .train(
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
                &xs,
                &ys,
            )
            .unwrap();
        let late = net
            .train(
                &TrainConfig {
                    epochs: 80,
                    ..Default::default()
                },
                &xs,
                &ys,
            )
            .unwrap();
        assert!(late < early, "loss did not decrease: {early} -> {late}");
    }

    #[test]
    fn probability_bounded() {
        let mut net = Network::rnn_fnn(3, 1);
        let p = net.probability(&Tensor::flat(vec![100.0, -100.0, 5.0]));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn train_validation_errors() {
        let mut net = Network::rnn_fnn(2, 1);
        assert!(matches!(
            net.train(&TrainConfig::default(), &[], &[]),
            Err(MlError::EmptyTrainingSet)
        ));
        let xs = vec![Tensor::flat(vec![0.0, 1.0])];
        assert!(matches!(
            net.train(&TrainConfig::default(), &xs, &[1, 1]),
            Err(MlError::LabelCountMismatch { .. })
        ));
        let xs2 = vec![Tensor::flat(vec![0.0, 1.0]), Tensor::flat(vec![1.0, 0.0])];
        assert!(matches!(
            net.train(&TrainConfig::default(), &xs2, &[1, 1]),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn lag_features_shape() {
        let f = lag_features(&[vec![1.0; 50], vec![2.0; 50]], 4);
        assert_eq!(f.len(), 2 * (4 + 2));
    }

    #[test]
    fn lag_features_distinguish_frequencies() {
        let lo: Vec<f64> = (0..64).map(|i| (i as f64 * 0.2).sin()).collect();
        let hi: Vec<f64> = (0..64).map(|i| (i as f64 * 1.5).sin()).collect();
        let f_lo = lag_features(&[lo], 3);
        let f_hi = lag_features(&[hi], 3);
        // The lag profiles of slow and fast signals must differ clearly.
        let diff: f64 = f_lo[2..]
            .iter()
            .zip(&f_hi[2..])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 0.3, "lag profiles too similar: {diff}");
    }

    #[test]
    fn tensor_validation() {
        assert_eq!(Tensor::zeros(2, 3).total(), 6);
        let t = Tensor::from_channels(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.at(1, 0), 3.0);
    }
}
