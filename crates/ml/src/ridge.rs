//! Ridge-regression classifier with efficient leave-one-out
//! cross-validation, the analogue of scikit-learn's
//! `RidgeClassifierCV` that the paper pairs with MiniRocket features
//! (paper §IV-B 2.4, Eq. (7)–(9)).
//!
//! Binary labels are encoded as targets ±1 and a linear model
//! `f(x) = w·x + b` is fitted by regularized least squares (Eq. (8)).
//! The regularization strength `λ` is selected by exact leave-one-out
//! cross-validation computed from a single eigendecomposition of the
//! kernel matrix (the standard RidgeCV identity), so selection over the
//! whole `λ` grid costs little more than one fit.

use crate::error::{validate_training, MlError};
use crate::linalg::{dot, Matrix};
use p2auth_par::FeatureMatrix;
use serde::{Deserialize, Serialize};

/// Configuration for [`RidgeClassifier::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct RidgeCvConfig {
    /// Candidate regularization strengths; the fit picks the LOOCV-best.
    pub alphas: Vec<f64>,
}

impl Default for RidgeCvConfig {
    fn default() -> Self {
        // log-spaced 1e-3 .. 1e3, as in sktime's MiniRocket pipelines.
        let alphas = (0..10)
            .map(|i| 10f64.powf(-3.0 + 6.0 * i as f64 / 9.0))
            .collect();
        Self { alphas }
    }
}

/// A fitted binary ridge classifier. Serializable so enrolled models
/// can be persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RidgeClassifier {
    weights: Vec<f64>,
    intercept: f64,
    alpha: f64,
    loocv_error: f64,
}

impl RidgeClassifier {
    /// Fits the classifier on feature rows `x` with labels `y`
    /// (`+1` = legitimate user, `-1` = other), selecting `α` by exact
    /// leave-one-out cross-validation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError`] if the training set is empty or ragged, label
    /// counts mismatch, or all labels belong to one class.
    pub fn fit(config: &RidgeCvConfig, x: &[Vec<f64>], y: &[i8]) -> Result<Self, MlError> {
        let rows: Vec<&[f64]> = x.iter().map(Vec::as_slice).collect();
        Self::fit_impl(config, &rows, y)
    }

    /// Like [`RidgeClassifier::fit`], but reads feature rows directly
    /// from a contiguous [`FeatureMatrix`] (as produced by the MiniRocket
    /// batch transform), avoiding per-row `Vec` boxing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RidgeClassifier::fit`].
    pub fn fit_matrix(
        config: &RidgeCvConfig,
        x: &FeatureMatrix,
        y: &[i8],
    ) -> Result<Self, MlError> {
        let rows: Vec<&[f64]> = x.rows().collect();
        Self::fit_impl(config, &rows, y)
    }

    fn fit_impl(config: &RidgeCvConfig, x: &[&[f64]], y: &[i8]) -> Result<Self, MlError> {
        let _span = p2auth_obs::span!("ml.ridge.fit");
        let dim = validate_training(x, y)?;
        p2auth_obs::event!("ml.ridge", "fit", rows = x.len(), cols = dim);
        assert!(!config.alphas.is_empty(), "alpha grid must be non-empty");
        let n = x.len();
        // Center features and targets (this absorbs the intercept).
        let mut x_mean = vec![0.0_f64; dim];
        for row in x {
            for (m, v) in x_mean.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in x_mean.iter_mut() {
            *m /= n as f64;
        }
        let yv: Vec<f64> = y.iter().map(|&l| if l > 0 { 1.0 } else { -1.0 }).collect();
        let y_mean = yv.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = yv.iter().map(|v| v - y_mean).collect();
        let xc_rows: Vec<Vec<f64>> = x
            .iter()
            .map(|row| row.iter().zip(&x_mean).map(|(v, m)| v - m).collect())
            .collect();
        let xc = Matrix::from_rows(&xc_rows);

        // Dual formulation: K = Xc Xcᵀ (n × n), fit α_dual from
        // (K + λI) α_dual = yc, then w = Xcᵀ α_dual. The LOOCV residual
        // for sample i is (G⁻¹ yc)_i / (G⁻¹)_ii with G = K + λI, which we
        // evaluate for every λ from one eigendecomposition K = Q Λ Qᵀ.
        let k = xc.gram();
        let (eigvals, q) = k.symmetric_eigen();
        // qty = Qᵀ yc.
        let qty = q.transpose().matvec(&yc);

        let mut best: Option<(f64, f64)> = None; // (alpha, loocv)
        for &alpha in &config.alphas {
            assert!(alpha > 0.0, "ridge alpha must be positive");
            // G⁻¹ yc = Q diag(1/(λ_j + α)) Qᵀ yc.
            let ginv_y: Vec<f64> = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| q[(i, j)] * qty[j] / (eigvals[j].max(0.0) + alpha))
                        .sum()
                })
                .collect();
            // diag(G⁻¹)_i = Σ_j Q_ij² / (λ_j + α).
            let mut loocv = 0.0;
            for i in 0..n {
                let diag: f64 = (0..n)
                    .map(|j| q[(i, j)] * q[(i, j)] / (eigvals[j].max(0.0) + alpha))
                    .sum();
                let e = ginv_y[i] / diag;
                loocv += e * e;
            }
            loocv /= n as f64;
            if best.is_none_or(|(_, b)| loocv < b) {
                best = Some((alpha, loocv));
            }
        }
        let (alpha, loocv_error) = best.expect("non-empty alpha grid");

        // Final fit at the selected alpha.
        let mut g = k;
        g.add_diagonal(alpha);
        let dual = g.cholesky_solve(&yc).map_err(|e| MlError::Numerical {
            detail: e.to_string(),
        })?;
        // w = Xcᵀ dual.
        let mut weights = vec![0.0_f64; dim];
        for (row, &a) in xc_rows.iter().zip(&dual) {
            for (w, v) in weights.iter_mut().zip(row) {
                *w += a * v;
            }
        }
        let intercept = y_mean - dot(&weights, &x_mean);
        Ok(Self {
            weights,
            intercept,
            alpha,
            loocv_error,
        })
    }

    /// Decision value `w·x + b`; positive means "legitimate".
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        dot(&self.weights, x) + self.intercept
    }

    /// Predicted label in `{-1, +1}` (paper Eq. (9)).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> i8 {
        if self.decision(x) > 0.0 {
            1
        } else {
            -1
        }
    }

    /// The selected regularization strength.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Mean squared LOOCV error at the selected `α`.
    pub fn loocv_error(&self) -> f64 {
        self.loocv_error
    }

    /// The fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: &[f64], n: usize, spread: f64, seed: u64) -> Vec<Vec<f64>> {
        // Tiny deterministic LCG so the test has no rand dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        (0..n)
            .map(|_| center.iter().map(|c| c + spread * next()).collect())
            .collect()
    }

    #[test]
    fn separates_two_blobs() {
        let mut x = blob(&[2.0, 2.0], 20, 0.3, 1);
        x.extend(blob(&[-2.0, -2.0], 20, 0.3, 2));
        let y: Vec<i8> = (0..40).map(|i| if i < 20 { 1 } else { -1 }).collect();
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| clf.predict(xi) == yi)
            .count();
        assert_eq!(correct, 40);
    }

    #[test]
    fn decision_sign_matches_predict() {
        let mut x = blob(&[1.0], 10, 0.2, 3);
        x.extend(blob(&[-1.0], 10, 0.2, 4));
        let y: Vec<i8> = (0..20).map(|i| if i < 10 { 1 } else { -1 }).collect();
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).unwrap();
        for xi in &x {
            assert_eq!(clf.predict(xi), if clf.decision(xi) > 0.0 { 1 } else { -1 });
        }
    }

    #[test]
    fn high_dimensional_more_features_than_samples() {
        // d = 50 > n = 12: exercises the dual formulation.
        let mut x = blob(&vec![0.5; 50], 6, 0.2, 5);
        x.extend(blob(&vec![-0.5; 50], 6, 0.2, 6));
        let y: Vec<i8> = (0..12).map(|i| if i < 6 { 1 } else { -1 }).collect();
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| clf.predict(xi) == yi)
            .count();
        assert_eq!(correct, 12);
    }

    #[test]
    fn shrinkage_monotone_in_alpha() {
        let mut x = blob(&[1.0, 0.0], 15, 0.4, 7);
        x.extend(blob(&[-1.0, 0.0], 15, 0.4, 8));
        let y: Vec<i8> = (0..30).map(|i| if i < 15 { 1 } else { -1 }).collect();
        let norms: Vec<f64> = [0.01, 1.0, 100.0]
            .iter()
            .map(|&a| {
                let clf = RidgeClassifier::fit(&RidgeCvConfig { alphas: vec![a] }, &x, &y).unwrap();
                clf.weights().iter().map(|w| w * w).sum::<f64>().sqrt()
            })
            .collect();
        assert!(
            norms[0] > norms[1] && norms[1] > norms[2],
            "norms {norms:?}"
        );
    }

    #[test]
    fn fit_matrix_matches_fit_bitwise() {
        let mut x = blob(&[2.0, 2.0], 20, 0.3, 1);
        x.extend(blob(&[-2.0, -2.0], 20, 0.3, 2));
        let y: Vec<i8> = (0..40).map(|i| if i < 20 { 1 } else { -1 }).collect();
        let m = FeatureMatrix::from_rows(x.clone(), 2);
        let boxed = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).unwrap();
        let flat = RidgeClassifier::fit_matrix(&RidgeCvConfig::default(), &m, &y).unwrap();
        assert_eq!(boxed, flat);
    }

    #[test]
    fn rejects_single_class() {
        let x = blob(&[0.0], 5, 0.1, 9);
        let y = vec![1_i8; 5];
        assert!(matches!(
            RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn rejects_ragged_features() {
        let x = vec![vec![1.0, 2.0], vec![1.0]];
        let y = vec![1_i8, -1];
        assert!(matches!(
            RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y),
            Err(MlError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn loocv_picks_reasonable_alpha_on_noisy_data() {
        // Pure noise targets: heavy regularization should win.
        let x = blob(&[0.0, 0.0, 0.0], 30, 1.0, 10);
        let y: Vec<i8> = (0..30).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).unwrap();
        assert!(
            clf.alpha() >= 1.0,
            "expected strong regularization, got {}",
            clf.alpha()
        );
    }

    #[test]
    fn intercept_handles_offset_classes() {
        // Both blobs on the same side of the origin: needs an intercept.
        let mut x = blob(&[10.0], 10, 0.2, 11);
        x.extend(blob(&[8.0], 10, 0.2, 12));
        let y: Vec<i8> = (0..20).map(|i| if i < 10 { 1 } else { -1 }).collect();
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).unwrap();
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(xi, &yi)| clf.predict(xi) == yi)
            .count();
        assert!(correct >= 19, "{correct}/20");
    }
}
