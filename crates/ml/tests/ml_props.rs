//! Property tests for the ML substrate.

use p2auth_ml::knn::{KnnClassifier, Metric};
use p2auth_ml::linalg::Matrix;
use p2auth_ml::metrics::{accuracy, equal_error_rate, ConfusionCounts};
use p2auth_ml::ridge::{RidgeClassifier, RidgeCvConfig};
use proptest::prelude::*;

fn labelled_blobs(n_per_class: usize, gap: f64) -> (Vec<Vec<f64>>, Vec<i8>) {
    let mut x = Vec::new();
    let mut y = Vec::new();
    for i in 0..n_per_class {
        let t = i as f64 * 0.1;
        x.push(vec![gap + t.sin() * 0.2, t.cos() * 0.2]);
        y.push(1);
        x.push(vec![-gap - t.sin() * 0.2, -t.cos() * 0.2]);
        y.push(-1);
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ridge_separates_any_well_separated_blobs(gap in 1.0_f64..5.0, n in 5_usize..20) {
        let (x, y) = labelled_blobs(n, gap);
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).expect("fit");
        let correct = x.iter().zip(&y).filter(|(xi, &yi)| clf.predict(xi) == yi).count();
        prop_assert_eq!(correct, x.len());
    }

    #[test]
    fn ridge_decision_is_affine(gap in 1.0_f64..3.0, scale in 0.1_f64..5.0) {
        // f(a) + f(b) == f(a+b) + f(0) for a linear-plus-intercept model.
        let (x, y) = labelled_blobs(10, gap);
        let clf = RidgeClassifier::fit(&RidgeCvConfig::default(), &x, &y).expect("fit");
        let a = vec![scale, -scale];
        let b = vec![-0.3 * scale, 0.7 * scale];
        let ab: Vec<f64> = a.iter().zip(&b).map(|(p, q)| p + q).collect();
        let lhs = clf.decision(&a) + clf.decision(&b);
        let rhs = clf.decision(&ab) + clf.decision(&[0.0, 0.0]);
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }

    #[test]
    fn knn_prediction_invariant_to_training_order(seed in any::<u64>()) {
        let (mut x, mut y) = labelled_blobs(8, 1.5);
        let knn1 = KnnClassifier::fit(3, Metric::Euclidean, &x, &y).expect("fit");
        // Deterministic shuffle from the seed.
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let xs: Vec<Vec<f64>> = order.iter().map(|&i| x[i].clone()).collect();
        let ys: Vec<i8> = order.iter().map(|&i| y[i]).collect();
        x = xs;
        y = ys;
        let knn2 = KnnClassifier::fit(3, Metric::Euclidean, &x, &y).expect("fit");
        for probe in [[0.5, 0.0], [-0.5, 0.1], [2.0, -1.0]] {
            prop_assert_eq!(knn1.predict(&probe), knn2.predict(&probe));
        }
    }

    #[test]
    fn confusion_counts_consistent(preds in prop::collection::vec(-1_i8..=1, 1..100)) {
        let preds: Vec<i8> = preds.into_iter().map(|v| if v >= 0 { 1 } else { -1 }).collect();
        let labels: Vec<i8> = preds.iter().map(|&p| -p).collect();
        // All predictions wrong: accuracy 0, confusion totals match.
        prop_assert_eq!(accuracy(&preds, &labels), Some(0.0));
        let c = ConfusionCounts::from_predictions(&preds, &labels);
        prop_assert_eq!(c.total(), preds.len());
        prop_assert_eq!(c.overall_accuracy(), Some(0.0));
    }

    #[test]
    fn eer_bounded(genuine in prop::collection::vec(-10.0_f64..10.0, 1..50),
                   impostor in prop::collection::vec(-10.0_f64..10.0, 1..50)) {
        let eer = equal_error_rate(&genuine, &impostor).expect("non-empty");
        prop_assert!((0.0..=1.0).contains(&eer));
    }

    #[test]
    fn cholesky_solves_diagonally_dominant_systems(
        diag in prop::collection::vec(1.0_f64..10.0, 2..8),
        rhs_seed in any::<u64>(),
    ) {
        let n = diag.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = diag[i] + n as f64;
            for j in 0..n {
                if i != j {
                    a[(i, j)] = 0.5;
                }
            }
        }
        let b: Vec<f64> = (0..n).map(|i| ((rhs_seed >> (i % 60)) & 0xff) as f64 / 17.0).collect();
        let x = a.cholesky_solve(&b).expect("SPD system");
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn eigen_reconstruction(vals in prop::collection::vec(-5.0_f64..5.0, 2..6)) {
        // Build a symmetric matrix from a diagonal + rank-1 bump.
        let n = vals.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = vals[i];
            for j in 0..n {
                a[(i, j)] += 0.3;
            }
        }
        // Symmetrize exactly.
        for i in 0..n {
            for j in 0..i {
                let m = 0.5 * (a[(i, j)] + a[(j, i)]);
                a[(i, j)] = m;
                a[(j, i)] = m;
            }
        }
        let (eigvals, vecs) = a.symmetric_eigen();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = eigvals[i];
        }
        let rec = vecs.matmul(&d).matmul(&vecs.transpose());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-7);
            }
        }
    }
}
