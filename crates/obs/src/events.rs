//! Event-sourced session log: `p2auth.events.v1`.
//!
//! The flight recorder ([`crate::recorder`]) keeps the *last* 256
//! events for post-mortems; this module is its promotion to a full
//! **append-only, versioned session log**: every sample batch, link
//! frame event, SQI verdict, supervisor transition, deadline tick and
//! final decision of one authentication session as a *typed* event,
//! stamped with a logical sequence number. The header carries the
//! session's RNG seeds plus free-form recorder metadata (enough for a
//! replayer to re-execute the session from scratch), so a recorded log
//! is a one-command local repro of any chaos-CI or fleet anomaly.
//!
//! Design rules:
//!
//! * **Self-serialized** — the wire format is JSON in the
//!   `p2auth.obs.v1` idiom (hand-written writer, decoded with
//!   [`crate::json`]); no serde, so the log builds everywhere the
//!   crate does.
//! * **Logical time only** — events carry sequence numbers and
//!   session-clock seconds, never wall-clock nanoseconds, so a replay
//!   of the same session produces a byte-identical log.
//! * **Exact numbers** — `u64` values (seeds, digests) are encoded as
//!   decimal *strings* because JSON numbers are f64 and would silently
//!   lose precision past 2^53; `f64` values use Rust's shortest
//!   round-trip `Display`, so decode reproduces the exact bits. Only
//!   finite floats are representable: encoding maps non-finite values
//!   to `null` and decoding rejects `null` in a required float field
//!   with a typed error rather than inventing a NaN.
//! * **Typed failures** — a truncated, bit-flipped or garbage log
//!   yields an [`EventLogError`], never a panic and never a silent
//!   partial log (sequence numbers must be exactly `0..n`).

use crate::json::{self, JsonValue};
use std::fmt;
use std::fmt::Write as _;

/// Identifier of the event-log schema emitted by [`EventLog::encode`].
pub const EVENTS_SCHEMA: &str = "p2auth.events.v1";

/// The RNG seeds a session was recorded under. These are the inputs a
/// replayer needs to re-derive every sample and fault realization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionSeeds {
    /// Seed of the simulated population / cohort.
    pub population: u64,
    /// Seed driving chaos injection (sensor and link fault draws).
    pub chaos: u64,
    /// Per-session nonce mixed into recording synthesis.
    pub nonce: u64,
}

/// One typed session event. Variants mirror the pipeline's observable
/// surface: what the sensor delivered, what the link did to it, what
/// quality gating concluded, how the supervisor moved, and what was
/// decided.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// One acquisition attempt's sample batch as delivered to the host
    /// (post sensor faults, post link reassembly).
    SampleBatch {
        /// Collection attempt index (0-based; re-prompts increment).
        attempt: u32,
        /// PPG channels in the batch.
        channels: u32,
        /// Samples per channel.
        samples: u64,
        /// Keystroke events reported with the batch.
        keystrokes: u32,
        /// FNV-1a 64 digest over every sample's bit pattern plus the
        /// keystroke times — bit-identity of the batch in 8 bytes.
        digest: u64,
    },
    /// Forward-direction frame traffic of one attempt (tx/rx).
    LinkFrames {
        /// Collection attempt index.
        attempt: u32,
        /// Data packets offered to the link.
        sent: u64,
        /// Unique packets that reached the host.
        delivered: u64,
        /// Bytes offered to the forward links.
        bytes: u64,
        /// CRC-32 over all bytes offered forward, in order (equal
        /// digests ⇒ byte-identical traffic).
        digest: u64,
    },
    /// Frames the link damaged or duplicated in one attempt.
    LinkCorrupt {
        /// Collection attempt index.
        attempt: u32,
        /// Envelopes discarded for CRC/framing errors.
        corrupt: u64,
        /// Duplicate deliveries discarded by sequence number.
        duplicates: u64,
        /// Events discarded past the session deadline.
        late: u64,
    },
    /// NACK traffic of one attempt.
    LinkNack {
        /// Collection attempt index.
        attempt: u32,
        /// NACKs sent by the host.
        nacks: u64,
        /// Backoff timers scheduled.
        backoffs: u64,
        /// Total backoff scheduled, microseconds.
        backoff_us: u64,
    },
    /// Retransmission outcome of one attempt.
    LinkRetransmit {
        /// Collection attempt index.
        attempt: u32,
        /// Retransmissions performed by the device.
        retransmissions: u64,
        /// Gaps the host abandoned after exhausting NACK retries.
        gaps_abandoned: u64,
    },
    /// PPG coverage the reassembled attempt ended up with.
    LinkCoverage {
        /// Collection attempt index.
        attempt: u32,
        /// Fraction of expected PPG blocks received (0.0–1.0).
        coverage: f64,
        /// Blocks expected from the sequence high-water mark.
        expected: u64,
        /// Blocks received.
        received: u64,
        /// Missing blocks that were gap-filled.
        gaps: u64,
    },
    /// Per-keystroke signal-quality verdict.
    SqiVerdict {
        /// Collection attempt index.
        attempt: u32,
        /// Keystroke index within the PIN entry.
        index: u32,
        /// Digit typed at this position.
        digit: u8,
        /// Whether case identification detected the keystroke.
        detected: bool,
        /// Signal quality index (`None` when not detected).
        sqi: Option<f64>,
        /// Failed-check labels, `+`-joined (empty when clean).
        flags: String,
    },
    /// Whole-attempt quality summary.
    Assessment {
        /// Collection attempt index.
        attempt: u32,
        /// Keystrokes detected.
        detected: u32,
        /// Detected keystrokes at or above the SQI floor.
        usable: u32,
        /// Mean SQI over detected keystrokes.
        mean_sqi: f64,
    },
    /// One supervisor state transition (including self-loops consumed
    /// by ignored events are *not* logged; only state changes and the
    /// events that caused them).
    Transition {
        /// State before the step.
        from: String,
        /// State after the step.
        to: String,
        /// Machine-readable name of the driving event.
        event: String,
        /// Session-clock time of the step, seconds.
        now_s: f64,
    },
    /// A pure time step delivered to the supervisor (deadline checks).
    DeadlineTick {
        /// State the tick was delivered in.
        state: String,
        /// Session-clock time, seconds.
        now_s: f64,
        /// The state's deadline at that moment (`None` when the state
        /// carries no deadline).
        deadline_s: Option<f64>,
    },
    /// One keystroke's vote inside a decision.
    Vote {
        /// Collection attempt index.
        attempt: u32,
        /// Keystroke index.
        index: u32,
        /// Digit typed.
        digit: u8,
        /// Whether the single-waveform model accepted it.
        passed: bool,
        /// Raw decision value.
        score: f64,
        /// Quality weight of the vote (SQI under gating, else 1.0).
        weight: f64,
    },
    /// The pipeline outcome of one attempt.
    Decision {
        /// Collection attempt index.
        attempt: u32,
        /// Outcome kind: `decision` | `degraded` | `abort`.
        kind: String,
        /// Final verdict of this attempt (false for aborts).
        accepted: bool,
        /// Input case resolved by preprocessing (empty for aborts).
        case: String,
        /// Machine-readable reject reason, when rejected.
        reason: Option<String>,
        /// Aggregate decision score.
        score: f64,
        /// Link coverage, for degraded/abort outcomes.
        coverage: Option<f64>,
        /// Gap-filled blocks, for degraded/abort outcomes.
        gap_blocks: Option<u64>,
    },
    /// Terminal summary: the session's final supervisor state.
    SessionEnd {
        /// Terminal state name.
        state: String,
        /// Collection attempts consumed.
        attempts: u32,
        /// Whether the session ended in `accept`.
        accepted: bool,
    },
    /// A serving-layer fault observed during the session: a captured
    /// worker panic (`kind = "crashed"`), a deadline-aware retry
    /// (`"retry"`), an interrupted session re-admitted after a warm
    /// restart (`"interrupted"`), or a brownout-tier decision
    /// (`"brownout"`). `kind` is the machine-readable discriminator;
    /// `detail` is free-form context.
    Fault {
        /// Machine-readable fault kind.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl SessionEvent {
    /// Stable machine-readable type tag (the `"type"` field on the
    /// wire).
    #[must_use]
    pub fn type_tag(&self) -> &'static str {
        match self {
            SessionEvent::SampleBatch { .. } => "sample_batch",
            SessionEvent::LinkFrames { .. } => "link_frames",
            SessionEvent::LinkCorrupt { .. } => "link_corrupt",
            SessionEvent::LinkNack { .. } => "link_nack",
            SessionEvent::LinkRetransmit { .. } => "link_retransmit",
            SessionEvent::LinkCoverage { .. } => "link_coverage",
            SessionEvent::SqiVerdict { .. } => "sqi_verdict",
            SessionEvent::Assessment { .. } => "assessment",
            SessionEvent::Transition { .. } => "transition",
            SessionEvent::DeadlineTick { .. } => "deadline_tick",
            SessionEvent::Vote { .. } => "vote",
            SessionEvent::Decision { .. } => "decision",
            SessionEvent::SessionEnd { .. } => "session_end",
            SessionEvent::Fault { .. } => "fault",
        }
    }
}

/// One event with its logical sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedEvent {
    /// Position in the log; [`EventLog::decode`] enforces `0..n`.
    pub seq: u64,
    /// The typed payload.
    pub event: SessionEvent,
}

/// An append-only, versioned session event log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventLog {
    /// RNG seeds of the recorded session.
    pub seeds: SessionSeeds,
    /// Recorder-defined metadata (e.g. the full record spec), in
    /// insertion order. Keys should be unique; [`EventLog::meta_get`]
    /// returns the first match.
    pub meta: Vec<(String, String)>,
    /// The events, in append order.
    pub events: Vec<LoggedEvent>,
}

impl EventLog {
    /// An empty log with the given seeds.
    #[must_use]
    pub fn new(seeds: SessionSeeds) -> Self {
        Self {
            seeds,
            meta: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Appends one metadata key/value pair.
    pub fn meta_push(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.push((key.into(), value.into()));
    }

    /// First metadata value under `key`.
    #[must_use]
    pub fn meta_get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Appends an event, assigning the next sequence number, and
    /// returns that number.
    pub fn push(&mut self, event: SessionEvent) -> u64 {
        let seq = self.events.len() as u64;
        self.events.push(LoggedEvent { seq, event });
        seq
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the log (schema `p2auth.events.v1`).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        let _ = write!(
            out,
            "{{\"schema\":\"{EVENTS_SCHEMA}\",\"seeds\":{{\"population\":\"{}\",\"chaos\":\"{}\",\"nonce\":\"{}\"}},\"meta\":[",
            self.seeds.population, self.seeds.chaos, self.seeds.nonce
        );
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            push_str(k, &mut out);
            out.push(',');
            push_str(v, &mut out);
            out.push(']');
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            encode_event(ev, &mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a serialized log.
    ///
    /// # Errors
    ///
    /// Returns [`EventLogError`] when the input is not valid JSON, the
    /// schema does not match, a field is missing or mistyped, or the
    /// sequence numbers are not exactly `0..n` — corrupt input can
    /// never produce a silently shortened or reordered log.
    pub fn decode(input: &str) -> Result<Self, EventLogError> {
        let doc = json::parse(input).map_err(EventLogError::Parse)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| EventLogError::missing(None, "schema"))?;
        if schema != EVENTS_SCHEMA {
            return Err(EventLogError::Schema {
                found: schema.to_string(),
            });
        }
        let seeds_doc = doc
            .get("seeds")
            .ok_or_else(|| EventLogError::missing(None, "seeds"))?;
        let seeds = SessionSeeds {
            population: get_u64(seeds_doc, None, "population")?,
            chaos: get_u64(seeds_doc, None, "chaos")?,
            nonce: get_u64(seeds_doc, None, "nonce")?,
        };
        let mut meta = Vec::new();
        for pair in doc
            .get("meta")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| EventLogError::missing(None, "meta"))?
        {
            let bad = || EventLogError::bad(None, "meta", "expected [key, value] string pairs");
            let pair = pair.as_array().ok_or_else(bad)?;
            if pair.len() != 2 {
                return Err(bad());
            }
            let k = pair[0].as_str().ok_or_else(bad)?;
            let v = pair[1].as_str().ok_or_else(bad)?;
            meta.push((k.to_string(), v.to_string()));
        }
        let mut events = Vec::new();
        for (i, ev) in doc
            .get("events")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| EventLogError::missing(None, "events"))?
            .iter()
            .enumerate()
        {
            let at = Some(i as u64);
            let seq = get_u64_number(ev, at, "seq")?;
            if seq != i as u64 {
                return Err(EventLogError::BrokenSequence {
                    position: i as u64,
                    found: seq,
                });
            }
            events.push(LoggedEvent {
                seq,
                event: decode_event(ev, at)?,
            });
        }
        Ok(Self {
            seeds,
            meta,
            events,
        })
    }

    /// Compares two logs event-by-event and reports the first
    /// divergence, if any. Header (seeds/meta) differences are
    /// reported before event differences.
    #[must_use]
    pub fn first_divergence(&self, other: &EventLog) -> Option<LogDivergence> {
        if self.seeds != other.seeds {
            return Some(LogDivergence::Header {
                field: "seeds",
                expected: format!("{:?}", self.seeds),
                actual: format!("{:?}", other.seeds),
            });
        }
        if self.meta != other.meta {
            return Some(LogDivergence::Header {
                field: "meta",
                expected: format!("{:?}", self.meta),
                actual: format!("{:?}", other.meta),
            });
        }
        for (a, b) in self.events.iter().zip(other.events.iter()) {
            if a != b {
                return Some(LogDivergence::Event {
                    seq: a.seq,
                    expected: render_event(a),
                    actual: render_event(b),
                });
            }
        }
        if self.events.len() != other.events.len() {
            let seq = self.events.len().min(other.events.len()) as u64;
            return Some(LogDivergence::Length {
                seq,
                expected: self.events.len() as u64,
                actual: other.events.len() as u64,
            });
        }
        None
    }
}

/// Renders one logged event as its wire JSON (stable, for divergence
/// reports and goldens).
#[must_use]
pub fn render_event(ev: &LoggedEvent) -> String {
    let mut out = String::new();
    encode_event(ev, &mut out);
    out
}

/// Where two logs first differ (see [`EventLog::first_divergence`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LogDivergence {
    /// Seeds or metadata differ — the sessions are not comparable.
    Header {
        /// Which header field diverged.
        field: &'static str,
        /// The reference value.
        expected: String,
        /// The re-derived value.
        actual: String,
    },
    /// Event payloads at `seq` differ.
    Event {
        /// Sequence number of the first divergent event.
        seq: u64,
        /// The recorded event (wire JSON).
        expected: String,
        /// The re-derived event (wire JSON).
        actual: String,
    },
    /// One log is a strict prefix of the other.
    Length {
        /// Sequence number where the shorter log ends.
        seq: u64,
        /// Events in the reference log.
        expected: u64,
        /// Events in the re-derived log.
        actual: u64,
    },
}

impl fmt::Display for LogDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDivergence::Header {
                field,
                expected,
                actual,
            } => write!(
                f,
                "header field {field:?} diverged:\n  recorded: {expected}\n  replayed: {actual}"
            ),
            LogDivergence::Event {
                seq,
                expected,
                actual,
            } => write!(
                f,
                "first divergent event at seq {seq}:\n  recorded: {expected}\n  replayed: {actual}"
            ),
            LogDivergence::Length {
                seq,
                expected,
                actual,
            } => write!(
                f,
                "event streams diverge in length at seq {seq}: recorded {expected} events, replayed {actual}"
            ),
        }
    }
}

/// Typed decode failure. `seq` is the 0-based event position where the
/// problem was found, when it was inside an event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventLogError {
    /// The input is not well-formed JSON.
    Parse(json::JsonError),
    /// The document's schema tag is not [`EVENTS_SCHEMA`].
    Schema {
        /// The schema string found.
        found: String,
    },
    /// A required field is absent.
    MissingField {
        /// Event position, `None` for header fields.
        seq: Option<u64>,
        /// The field name.
        field: &'static str,
    },
    /// A field is present but has the wrong type or an invalid value.
    BadField {
        /// Event position, `None` for header fields.
        seq: Option<u64>,
        /// The field name.
        field: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// An event's `"type"` tag is not one this version understands.
    UnknownEventType {
        /// Event position.
        seq: u64,
        /// The tag found.
        found: String,
    },
    /// Sequence numbers are not exactly `0..n` — the log was truncated
    /// mid-stream, spliced, or reordered.
    BrokenSequence {
        /// Expected sequence number (the event's position).
        position: u64,
        /// Sequence number found.
        found: u64,
    },
}

impl EventLogError {
    fn missing(seq: Option<u64>, field: &'static str) -> Self {
        EventLogError::MissingField { seq, field }
    }

    fn bad(seq: Option<u64>, field: &'static str, detail: impl Into<String>) -> Self {
        EventLogError::BadField {
            seq,
            field,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for EventLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = |seq: &Option<u64>| match seq {
            Some(s) => format!(" (event {s})"),
            None => String::new(),
        };
        match self {
            EventLogError::Parse(e) => write!(f, "not a valid event log: {e}"),
            EventLogError::Schema { found } => {
                write!(
                    f,
                    "unsupported schema {found:?} (expected {EVENTS_SCHEMA:?})"
                )
            }
            EventLogError::MissingField { seq, field } => {
                write!(f, "missing field {field:?}{}", at(seq))
            }
            EventLogError::BadField { seq, field, detail } => {
                write!(f, "bad field {field:?}{}: {detail}", at(seq))
            }
            EventLogError::UnknownEventType { seq, found } => {
                write!(f, "unknown event type {found:?} (event {seq})")
            }
            EventLogError::BrokenSequence { position, found } => write!(
                f,
                "broken event sequence: position {position} carries seq {found} \
                 (log truncated or spliced)"
            ),
        }
    }
}

impl std::error::Error for EventLogError {}

/// Incremental FNV-1a 64 digest for pinning bit-identity of sample
/// batches without storing the samples. Not cryptographic — this
/// detects replay divergence, not tampering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh digest at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn update_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds one `u64` (little-endian bytes).
    pub fn update_u64(&mut self, v: u64) {
        self.update_bytes(&v.to_le_bytes());
    }

    /// Folds one `f64` by bit pattern — exact, so equal digests mean
    /// bit-identical floats.
    pub fn update_f64(&mut self, v: f64) {
        self.update_u64(v.to_bits());
    }

    /// The digest value.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------

fn push_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Finite floats use Rust's shortest round-trip `Display`; non-finite
/// values become `null` (and are rejected on decode in required
/// positions).
fn push_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(v: Option<f64>, out: &mut String) {
    match v {
        Some(v) => push_f64(v, out),
        None => out.push_str("null"),
    }
}

fn push_opt_u64(v: Option<u64>, out: &mut String) {
    match v {
        Some(v) => {
            let _ = write!(out, "\"{v}\"");
        }
        None => out.push_str("null"),
    }
}

fn push_opt_str(v: Option<&str>, out: &mut String) {
    match v {
        Some(v) => push_str(v, out),
        None => out.push_str("null"),
    }
}

#[allow(clippy::too_many_lines)]
fn encode_event(ev: &LoggedEvent, out: &mut String) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"type\":\"{}\"",
        ev.seq,
        ev.event.type_tag()
    );
    match &ev.event {
        SessionEvent::SampleBatch {
            attempt,
            channels,
            samples,
            keystrokes,
            digest,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"channels\":{channels},\"samples\":\"{samples}\",\
                 \"keystrokes\":{keystrokes},\"digest\":\"{digest}\""
            );
        }
        SessionEvent::LinkFrames {
            attempt,
            sent,
            delivered,
            bytes,
            digest,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"sent\":\"{sent}\",\"delivered\":\"{delivered}\",\
                 \"bytes\":\"{bytes}\",\"digest\":\"{digest}\""
            );
        }
        SessionEvent::LinkCorrupt {
            attempt,
            corrupt,
            duplicates,
            late,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"corrupt\":\"{corrupt}\",\
                 \"duplicates\":\"{duplicates}\",\"late\":\"{late}\""
            );
        }
        SessionEvent::LinkNack {
            attempt,
            nacks,
            backoffs,
            backoff_us,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"nacks\":\"{nacks}\",\"backoffs\":\"{backoffs}\",\
                 \"backoff_us\":\"{backoff_us}\""
            );
        }
        SessionEvent::LinkRetransmit {
            attempt,
            retransmissions,
            gaps_abandoned,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"retransmissions\":\"{retransmissions}\",\
                 \"gaps_abandoned\":\"{gaps_abandoned}\""
            );
        }
        SessionEvent::LinkCoverage {
            attempt,
            coverage,
            expected,
            received,
            gaps,
        } => {
            let _ = write!(out, ",\"attempt\":{attempt},\"coverage\":");
            push_f64(*coverage, out);
            let _ = write!(
                out,
                ",\"expected\":\"{expected}\",\"received\":\"{received}\",\"gaps\":\"{gaps}\""
            );
        }
        SessionEvent::SqiVerdict {
            attempt,
            index,
            digit,
            detected,
            sqi,
            flags,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"index\":{index},\"digit\":{digit},\
                 \"detected\":{detected},\"sqi\":"
            );
            push_opt_f64(*sqi, out);
            out.push_str(",\"flags\":");
            push_str(flags, out);
        }
        SessionEvent::Assessment {
            attempt,
            detected,
            usable,
            mean_sqi,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"detected\":{detected},\"usable\":{usable},\"mean_sqi\":"
            );
            push_f64(*mean_sqi, out);
        }
        SessionEvent::Transition {
            from,
            to,
            event,
            now_s,
        } => {
            out.push_str(",\"from\":");
            push_str(from, out);
            out.push_str(",\"to\":");
            push_str(to, out);
            out.push_str(",\"event\":");
            push_str(event, out);
            out.push_str(",\"now_s\":");
            push_f64(*now_s, out);
        }
        SessionEvent::DeadlineTick {
            state,
            now_s,
            deadline_s,
        } => {
            out.push_str(",\"state\":");
            push_str(state, out);
            out.push_str(",\"now_s\":");
            push_f64(*now_s, out);
            out.push_str(",\"deadline_s\":");
            push_opt_f64(*deadline_s, out);
        }
        SessionEvent::Vote {
            attempt,
            index,
            digit,
            passed,
            score,
            weight,
        } => {
            let _ = write!(
                out,
                ",\"attempt\":{attempt},\"index\":{index},\"digit\":{digit},\
                 \"passed\":{passed},\"score\":"
            );
            push_f64(*score, out);
            out.push_str(",\"weight\":");
            push_f64(*weight, out);
        }
        SessionEvent::Decision {
            attempt,
            kind,
            accepted,
            case,
            reason,
            score,
            coverage,
            gap_blocks,
        } => {
            let _ = write!(out, ",\"attempt\":{attempt},\"kind\":");
            push_str(kind, out);
            let _ = write!(out, ",\"accepted\":{accepted},\"case\":");
            push_str(case, out);
            out.push_str(",\"reason\":");
            push_opt_str(reason.as_deref(), out);
            out.push_str(",\"score\":");
            push_f64(*score, out);
            out.push_str(",\"coverage\":");
            push_opt_f64(*coverage, out);
            out.push_str(",\"gap_blocks\":");
            push_opt_u64(*gap_blocks, out);
        }
        SessionEvent::SessionEnd {
            state,
            attempts,
            accepted,
        } => {
            out.push_str(",\"state\":");
            push_str(state, out);
            let _ = write!(out, ",\"attempts\":{attempts},\"accepted\":{accepted}");
        }
        SessionEvent::Fault { kind, detail } => {
            out.push_str(",\"kind\":");
            push_str(kind, out);
            out.push_str(",\"detail\":");
            push_str(detail, out);
        }
    }
    out.push('}');
}

// ---------------------------------------------------------------------
// Wire decoding
// ---------------------------------------------------------------------

/// `u64` encoded as a decimal string (exactness past 2^53).
fn get_u64(obj: &JsonValue, seq: Option<u64>, field: &'static str) -> Result<u64, EventLogError> {
    let v = obj
        .get(field)
        .ok_or_else(|| EventLogError::missing(seq, field))?;
    let s = v
        .as_str()
        .ok_or_else(|| EventLogError::bad(seq, field, "expected a decimal string"))?;
    s.parse::<u64>()
        .map_err(|e| EventLogError::bad(seq, field, e.to_string()))
}

/// Small non-negative integer encoded as a JSON number (exact below
/// 2^53; used for counts that fit comfortably).
fn get_u64_number(
    obj: &JsonValue,
    seq: Option<u64>,
    field: &'static str,
) -> Result<u64, EventLogError> {
    let v = obj
        .get(field)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| EventLogError::missing(seq, field))?;
    if v < 0.0 || v.fract() != 0.0 || v > 9_007_199_254_740_992.0 {
        return Err(EventLogError::bad(
            seq,
            field,
            format!("expected a non-negative integer, got {v}"),
        ));
    }
    Ok(v as u64)
}

fn get_u32(obj: &JsonValue, seq: Option<u64>, field: &'static str) -> Result<u32, EventLogError> {
    let v = get_u64_number(obj, seq, field)?;
    u32::try_from(v).map_err(|_| EventLogError::bad(seq, field, "value exceeds u32"))
}

fn get_u8(obj: &JsonValue, seq: Option<u64>, field: &'static str) -> Result<u8, EventLogError> {
    let v = get_u64_number(obj, seq, field)?;
    u8::try_from(v).map_err(|_| EventLogError::bad(seq, field, "value exceeds u8"))
}

fn get_f64(obj: &JsonValue, seq: Option<u64>, field: &'static str) -> Result<f64, EventLogError> {
    match obj.get(field) {
        None => Err(EventLogError::missing(seq, field)),
        Some(JsonValue::Number(v)) => Ok(*v),
        Some(JsonValue::Null) => Err(EventLogError::bad(
            seq,
            field,
            "null in a required float field (non-finite values are not representable)",
        )),
        Some(_) => Err(EventLogError::bad(seq, field, "expected a number")),
    }
}

fn get_opt_f64(
    obj: &JsonValue,
    seq: Option<u64>,
    field: &'static str,
) -> Result<Option<f64>, EventLogError> {
    match obj.get(field) {
        None => Err(EventLogError::missing(seq, field)),
        Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Number(v)) => Ok(Some(*v)),
        Some(_) => Err(EventLogError::bad(seq, field, "expected a number or null")),
    }
}

fn get_opt_u64(
    obj: &JsonValue,
    seq: Option<u64>,
    field: &'static str,
) -> Result<Option<u64>, EventLogError> {
    match obj.get(field) {
        None => Err(EventLogError::missing(seq, field)),
        Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|e| EventLogError::bad(seq, field, e.to_string())),
        Some(_) => Err(EventLogError::bad(
            seq,
            field,
            "expected a decimal string or null",
        )),
    }
}

fn get_str(
    obj: &JsonValue,
    seq: Option<u64>,
    field: &'static str,
) -> Result<String, EventLogError> {
    obj.get(field)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| EventLogError::bad(seq, field, "expected a string"))
}

fn get_opt_str(
    obj: &JsonValue,
    seq: Option<u64>,
    field: &'static str,
) -> Result<Option<String>, EventLogError> {
    match obj.get(field) {
        None => Err(EventLogError::missing(seq, field)),
        Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(EventLogError::bad(seq, field, "expected a string or null")),
    }
}

fn get_bool(obj: &JsonValue, seq: Option<u64>, field: &'static str) -> Result<bool, EventLogError> {
    obj.get(field)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| EventLogError::bad(seq, field, "expected a boolean"))
}

#[allow(clippy::too_many_lines)]
fn decode_event(obj: &JsonValue, seq: Option<u64>) -> Result<SessionEvent, EventLogError> {
    let tag = get_str(obj, seq, "type")?;
    let event = match tag.as_str() {
        "sample_batch" => SessionEvent::SampleBatch {
            attempt: get_u32(obj, seq, "attempt")?,
            channels: get_u32(obj, seq, "channels")?,
            samples: get_u64(obj, seq, "samples")?,
            keystrokes: get_u32(obj, seq, "keystrokes")?,
            digest: get_u64(obj, seq, "digest")?,
        },
        "link_frames" => SessionEvent::LinkFrames {
            attempt: get_u32(obj, seq, "attempt")?,
            sent: get_u64(obj, seq, "sent")?,
            delivered: get_u64(obj, seq, "delivered")?,
            bytes: get_u64(obj, seq, "bytes")?,
            digest: get_u64(obj, seq, "digest")?,
        },
        "link_corrupt" => SessionEvent::LinkCorrupt {
            attempt: get_u32(obj, seq, "attempt")?,
            corrupt: get_u64(obj, seq, "corrupt")?,
            duplicates: get_u64(obj, seq, "duplicates")?,
            late: get_u64(obj, seq, "late")?,
        },
        "link_nack" => SessionEvent::LinkNack {
            attempt: get_u32(obj, seq, "attempt")?,
            nacks: get_u64(obj, seq, "nacks")?,
            backoffs: get_u64(obj, seq, "backoffs")?,
            backoff_us: get_u64(obj, seq, "backoff_us")?,
        },
        "link_retransmit" => SessionEvent::LinkRetransmit {
            attempt: get_u32(obj, seq, "attempt")?,
            retransmissions: get_u64(obj, seq, "retransmissions")?,
            gaps_abandoned: get_u64(obj, seq, "gaps_abandoned")?,
        },
        "link_coverage" => SessionEvent::LinkCoverage {
            attempt: get_u32(obj, seq, "attempt")?,
            coverage: get_f64(obj, seq, "coverage")?,
            expected: get_u64(obj, seq, "expected")?,
            received: get_u64(obj, seq, "received")?,
            gaps: get_u64(obj, seq, "gaps")?,
        },
        "sqi_verdict" => SessionEvent::SqiVerdict {
            attempt: get_u32(obj, seq, "attempt")?,
            index: get_u32(obj, seq, "index")?,
            digit: get_u8(obj, seq, "digit")?,
            detected: get_bool(obj, seq, "detected")?,
            sqi: get_opt_f64(obj, seq, "sqi")?,
            flags: get_str(obj, seq, "flags")?,
        },
        "assessment" => SessionEvent::Assessment {
            attempt: get_u32(obj, seq, "attempt")?,
            detected: get_u32(obj, seq, "detected")?,
            usable: get_u32(obj, seq, "usable")?,
            mean_sqi: get_f64(obj, seq, "mean_sqi")?,
        },
        "transition" => SessionEvent::Transition {
            from: get_str(obj, seq, "from")?,
            to: get_str(obj, seq, "to")?,
            event: get_str(obj, seq, "event")?,
            now_s: get_f64(obj, seq, "now_s")?,
        },
        "deadline_tick" => SessionEvent::DeadlineTick {
            state: get_str(obj, seq, "state")?,
            now_s: get_f64(obj, seq, "now_s")?,
            deadline_s: get_opt_f64(obj, seq, "deadline_s")?,
        },
        "vote" => SessionEvent::Vote {
            attempt: get_u32(obj, seq, "attempt")?,
            index: get_u32(obj, seq, "index")?,
            digit: get_u8(obj, seq, "digit")?,
            passed: get_bool(obj, seq, "passed")?,
            score: get_f64(obj, seq, "score")?,
            weight: get_f64(obj, seq, "weight")?,
        },
        "decision" => SessionEvent::Decision {
            attempt: get_u32(obj, seq, "attempt")?,
            kind: get_str(obj, seq, "kind")?,
            accepted: get_bool(obj, seq, "accepted")?,
            case: get_str(obj, seq, "case")?,
            reason: get_opt_str(obj, seq, "reason")?,
            score: get_f64(obj, seq, "score")?,
            coverage: get_opt_f64(obj, seq, "coverage")?,
            gap_blocks: get_opt_u64(obj, seq, "gap_blocks")?,
        },
        "session_end" => SessionEvent::SessionEnd {
            state: get_str(obj, seq, "state")?,
            attempts: get_u32(obj, seq, "attempts")?,
            accepted: get_bool(obj, seq, "accepted")?,
        },
        "fault" => SessionEvent::Fault {
            kind: get_str(obj, seq, "kind")?,
            detail: get_str(obj, seq, "detail")?,
        },
        _ => {
            return Err(EventLogError::UnknownEventType {
                seq: seq.unwrap_or(0),
                found: tag,
            })
        }
    };
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> EventLog {
        let mut log = EventLog::new(SessionSeeds {
            population: 42,
            chaos: u64::MAX - 7,
            nonce: 3,
        });
        log.meta_push("mode", "both");
        log.meta_push("pin", "1628");
        log.push(SessionEvent::Transition {
            from: "idle".into(),
            to: "collecting".into(),
            event: "start".into(),
            now_s: 0.0,
        });
        log.push(SessionEvent::SampleBatch {
            attempt: 0,
            channels: 2,
            samples: 1000,
            keystrokes: 4,
            digest: 0xdead_beef_dead_beef,
        });
        log.push(SessionEvent::SqiVerdict {
            attempt: 0,
            index: 1,
            digit: 6,
            detected: true,
            sqi: Some(0.123_456_789_012_345_67),
            flags: "clipped+flatline".into(),
        });
        log.push(SessionEvent::SqiVerdict {
            attempt: 0,
            index: 2,
            digit: 2,
            detected: false,
            sqi: None,
            flags: String::new(),
        });
        log.push(SessionEvent::Decision {
            attempt: 0,
            kind: "degraded".into(),
            accepted: false,
            case: "OneHanded".into(),
            reason: Some("poor_signal".into()),
            score: -0.25,
            coverage: Some(0.5),
            gap_blocks: Some(10),
        });
        log.push(SessionEvent::Fault {
            kind: "retry".into(),
            detail: "transient abort, backoff 1.25s".into(),
        });
        log.push(SessionEvent::SessionEnd {
            state: "reject".into(),
            attempts: 1,
            accepted: false,
        });
        log
    }

    #[test]
    fn round_trips_bit_exactly() {
        let log = sample_log();
        let text = log.encode();
        let back = EventLog::decode(&text).expect("decodes");
        assert_eq!(back, log);
        // And the encoding itself is a fixed point.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn sequence_numbers_are_assigned_and_enforced() {
        let log = sample_log();
        assert_eq!(
            log.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..log.len() as u64).collect::<Vec<_>>()
        );
        // Splice one event out of the serialized form: seq 0..n breaks.
        let text = log.encode();
        let spliced = text.replacen("\"seq\":1,", "\"seq\":9,", 1);
        assert!(matches!(
            EventLog::decode(&spliced),
            Err(EventLogError::BrokenSequence {
                position: 1,
                found: 9
            })
        ));
    }

    #[test]
    fn wrong_schema_is_a_typed_error() {
        let text = sample_log()
            .encode()
            .replace("p2auth.events.v1", "p2auth.events.v9");
        assert!(matches!(
            EventLog::decode(&text),
            Err(EventLogError::Schema { .. })
        ));
    }

    #[test]
    fn u64_precision_survives_json() {
        let log = sample_log();
        let back = EventLog::decode(&log.encode()).unwrap();
        assert_eq!(back.seeds.chaos, u64::MAX - 7);
        match &back.events[1].event {
            SessionEvent::SampleBatch { digest, .. } => {
                assert_eq!(*digest, 0xdead_beef_dead_beef);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_event_type_is_reported_with_its_seq() {
        let text = sample_log()
            .encode()
            .replacen("sample_batch", "sample_blob", 1);
        assert!(matches!(
            EventLog::decode(&text),
            Err(EventLogError::UnknownEventType { seq: 1, .. })
        ));
    }

    #[test]
    fn null_in_required_float_field_is_rejected() {
        let log = sample_log();
        let text = log
            .encode()
            .replacen("\"mean_sqi\":", "\"mean_sqi\":null,\"x\":", 1);
        // sample_log has no assessment event; build one directly.
        let mut log2 = EventLog::new(SessionSeeds::default());
        log2.push(SessionEvent::Assessment {
            attempt: 0,
            detected: 4,
            usable: 2,
            mean_sqi: f64::NAN,
        });
        let encoded = log2.encode();
        assert!(encoded.contains("\"mean_sqi\":null"));
        assert!(matches!(
            EventLog::decode(&encoded),
            Err(EventLogError::BadField {
                field: "mean_sqi",
                ..
            })
        ));
        let _ = text;
    }

    #[test]
    fn divergence_reports_first_differing_event() {
        let a = sample_log();
        let mut b = sample_log();
        if let SessionEvent::SqiVerdict { sqi, .. } = &mut b.events[2].event {
            *sqi = Some(0.999);
        }
        match a.first_divergence(&b) {
            Some(LogDivergence::Event { seq: 2, .. }) => {}
            other => panic!("expected event divergence at seq 2, got {other:?}"),
        }
        // Identical logs do not diverge.
        assert_eq!(a.first_divergence(&sample_log()), None);
        // A strict prefix diverges by length.
        let mut c = sample_log();
        c.events.pop();
        match a.first_divergence(&c) {
            Some(LogDivergence::Length { seq: 6, .. }) => {}
            other => panic!("expected length divergence, got {other:?}"),
        }
        // Header mismatches dominate.
        let mut d = sample_log();
        d.seeds.chaos ^= 1;
        assert!(matches!(
            a.first_divergence(&d),
            Some(LogDivergence::Header { field: "seeds", .. })
        ));
    }

    #[test]
    fn fnv_digest_is_order_and_bit_sensitive() {
        let mut a = Fnv64::new();
        a.update_f64(1.0);
        a.update_f64(2.0);
        let mut b = Fnv64::new();
        b.update_f64(2.0);
        b.update_f64(1.0);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.update_f64(1.0);
        c.update_f64(2.0);
        assert_eq!(a.finish(), c.finish());
        // -0.0 and 0.0 differ by bit pattern and must differ in digest.
        let mut p = Fnv64::new();
        p.update_f64(0.0);
        let mut n = Fnv64::new();
        n.update_f64(-0.0);
        assert_ne!(p.finish(), n.finish());
    }

    #[test]
    fn meta_lookup_returns_first_match() {
        let mut log = EventLog::new(SessionSeeds::default());
        log.meta_push("k", "1");
        log.meta_push("k", "2");
        assert_eq!(log.meta_get("k"), Some("1"));
        assert_eq!(log.meta_get("absent"), None);
    }
}
