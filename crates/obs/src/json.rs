//! Minimal dependency-free JSON parser.
//!
//! Just enough for the golden-schema tests and offline tooling to read
//! the reports this crate (and the bench bins) emit: full JSON value
//! model, `\uXXXX` escapes with surrogate pairs, numbers as f64. Not a
//! streaming parser and not hardened for adversarial input sizes — the
//! inputs are our own artifacts.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order not preserved; keys sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as f64, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as &str, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a map, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            Self::Object(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`JsonError`] with the failing byte offset on malformed
/// input.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-borrow multi-byte UTF-8 directly from input.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(b);
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        match std::str::from_utf8(&self.bytes[start..end]) {
                            Ok(s) => out.push_str(s),
                            Err(_) => return Err(self.err("invalid UTF-8 sequence")),
                        }
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0_u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-UTF-8 number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), JsonValue::Number(-150.0));
        assert_eq!(
            parse(r#""a\nb""#).unwrap(),
            JsonValue::String("a\nb".to_string())
        );
        let v = parse(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.as_array())
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn parses_unicode_escapes_and_utf8() {
        assert_eq!(
            parse(r#""é😀é""#).unwrap(),
            JsonValue::String("é😀é".to_string())
        );
        assert_eq!(
            parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap(),
            JsonValue::String("é 😀".to_string())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""\ud800x""#).is_err());
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }
}
