//! # P²Auth observability — spans, metrics, flight recorder
//!
//! Dependency-free (std-only) telemetry for the P²Auth pipeline:
//!
//! * **Spans** ([`span`]) — hierarchical wall-clock timing with a
//!   thread-local parent stack. Parentage survives `p2auth-par`'s
//!   scoped worker threads via [`current_ctx`]/[`adopt`]: the caller
//!   captures its context before fanning out and each worker adopts it,
//!   so child time is attributed to the right parent.
//! * **Metrics** ([`metrics`]) — counters, f64 gauges and log2-bucket
//!   histograms (p50/p95/p99 extraction) in a global static registry
//!   keyed by `<crate>.<stage>.<metric>` names.
//! * **Flight recorder** ([`recorder`]) — a bounded ring buffer of
//!   recent structured events, dumped on auth failure for post-mortem.
//! * **Exporters** ([`report`]) — a human text report and a
//!   self-serialized JSON report with a stable schema
//!   (`p2auth.obs.v1`), plus a span-tree renderer.
//! * **JSON** ([`json`]) — a minimal dependency-free JSON parser used
//!   by the golden-schema tests (and available to tooling).
//! * **Event log** ([`events`]) — an append-only, versioned session
//!   event stream (`p2auth.events.v1`) with logical sequence numbers
//!   and RNG seeds, the substrate for deterministic record/replay.
//! * **Persistence** ([`persist`]) — a sharded, CRC-framed segment
//!   store for event logs with a crash-truncation-tolerant reader, so
//!   any fleet session is a one-command local repro.
//! * **Local metrics** ([`local`]) — single-owner per-worker registries
//!   merged after the fact (counters sum, histograms merge
//!   bucket-wise) instead of contended during.
//! * **SLO tracking** ([`slo`]) — rolling-window latency / error-rate
//!   windows with multi-window burn-rate error-budget alerts.
//!
//! Everything is gated on the `enabled` cargo feature (downstream
//! crates re-expose it as `obs`, on by default). With the feature off,
//! [`is_enabled`] is `const false`, every macro body is eliminated at
//! compile time, and all primitives are inert zero-sized types — the
//! instrumented code compiles to exactly what it was before
//! instrumentation.
//!
//! At runtime, recording can also be paused with [`set_recording`]
//! (used by `obs_bench` to measure the instrumented-vs-noop delta in a
//! single binary). Counters and gauges are *not* gated on the runtime
//! switch — they are single relaxed atomic ops — only spans and flight
//! events, which are the measurable part, are.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod local;
pub mod metrics;
pub mod persist;
pub mod recorder;
pub mod report;
pub mod slo;
pub mod span;

pub use events::{EventLog, EventLogError, LogDivergence, LoggedEvent, SessionEvent, SessionSeeds};
pub use local::{LocalHistogram, MetricsLocal};
pub use persist::ShardedEventStore;
pub use recorder::{Event, Value};
pub use slo::{SloConfig, SloReport, SloTracker};
pub use span::{adopt, current_ctx, reset_ctx, AdoptGuard, Span, SpanCtx, SpanRecord};

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "enabled")]
use std::sync::OnceLock;
#[cfg(feature = "enabled")]
use std::time::Instant;

/// True when the crate was compiled with the `enabled` feature.
///
/// `const`, so `if is_enabled() { .. }` bodies are eliminated entirely
/// in disabled builds.
#[inline]
#[must_use]
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Pauses (`false`) or resumes (`true`) span timing and flight-recorder
/// events at runtime. No-op in disabled builds.
#[inline]
pub fn set_recording(on: bool) {
    #[cfg(feature = "enabled")]
    RECORDING.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// Whether spans and flight events are currently being recorded.
///
/// Always `false` in disabled builds.
#[inline]
#[must_use]
pub fn recording() -> bool {
    #[cfg(feature = "enabled")]
    {
        RECORDING.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process's observability epoch (the
/// first call into this crate). Returns 0 in disabled builds.
#[inline]
#[must_use]
pub fn now_ns() -> u64 {
    #[cfg(feature = "enabled")]
    {
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Resets all recorded state: zeroes every registered metric, clears
/// the flight recorder and discards any captured spans. Registration
/// itself (metric names) is kept. Intended for tests and for the start
/// of a traced session.
pub fn reset() {
    metrics::reset_values();
    recorder::clear();
    span::reset_capture();
}

/// Opens a timed span named by a `&'static str` (metric-name
/// convention: `<crate>.<stage>`). Returns a guard; the span closes and
/// records its duration (into the histogram of the same name) when the
/// guard drops.
///
/// ```
/// let _span = p2auth_obs::span!("core.preprocess");
/// // ... stage body ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SITE: $crate::span::SpanSite = $crate::span::SpanSite::new($name);
        SITE.enter()
    }};
}

/// Returns the `&'static Counter` registered under `$name`, caching the
/// registry lookup at the call site. Compiles to an inert no-op handle
/// in disabled builds.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        if $crate::is_enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
                ::std::sync::OnceLock::new();
            *SITE.get_or_init(|| $crate::metrics::counter_handle($name))
        } else {
            $crate::metrics::noop_counter()
        }
    }};
}

/// Returns the `&'static Gauge` registered under `$name` (see
/// [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        if $crate::is_enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
                ::std::sync::OnceLock::new();
            *SITE.get_or_init(|| $crate::metrics::gauge_handle($name))
        } else {
            $crate::metrics::noop_gauge()
        }
    }};
}

/// Returns the `&'static Histogram` registered under `$name` (see
/// [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        if $crate::is_enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
                ::std::sync::OnceLock::new();
            *SITE.get_or_init(|| $crate::metrics::histogram_handle($name))
        } else {
            $crate::metrics::noop_histogram()
        }
    }};
}

/// Appends a structured event to the flight recorder:
/// `event!("stage", "label", key = value, ...)`. Keys are identifiers;
/// values are anything `recorder::Value: From` covers (integers,
/// floats, bools, strings). Eliminated at compile time in disabled
/// builds; skipped when recording is paused.
#[macro_export]
macro_rules! event {
    ($stage:expr, $label:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::is_enabled() && $crate::recording() {
            $crate::recorder::record(
                $stage,
                $label,
                ::std::vec![$((stringify!($key), $crate::recorder::Value::from($value))),*],
            );
        }
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry / recorder.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn recording_toggle_round_trips() {
        let _g = lock();
        assert!(super::is_enabled());
        assert!(super::recording());
        super::set_recording(false);
        assert!(!super::recording());
        super::set_recording(true);
        assert!(super::recording());
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = super::now_ns();
        let b = super::now_ns();
        assert!(b >= a);
    }

    #[test]
    fn paused_recording_skips_spans_and_events() {
        let _g = lock();
        super::reset();
        super::set_recording(false);
        {
            let _s = crate::span!("obs.test.paused");
            crate::event!("obs.test", "paused", n = 1_u64);
        }
        super::set_recording(true);
        let snap = crate::metrics::snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|(n, _)| *n == "obs.test.paused");
        assert!(hist.is_none() || hist.is_some_and(|(_, h)| h.count == 0));
        assert!(crate::recorder::snapshot().is_empty());
    }
}
