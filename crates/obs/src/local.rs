//! Per-worker metrics registries with snapshot merge.
//!
//! The global registry in [`crate::metrics`] is a set of shared
//! atomics: correct, but every worker's hot path hammers the same
//! cache lines, and per-worker / per-shard breakdowns are impossible
//! once counts are folded together. A [`MetricsLocal`] is the
//! contention-free alternative: each worker owns one outright (no
//! atomics, no locks, plain integers), records into it for the whole
//! serve region, and hands it back when the region drains. The
//! scheduler then merges the locals — counters sum, histograms merge
//! bucket-wise — into one [`MetricsLocal`] for reporting, and
//! publishes a known subset into the global registry so existing
//! handles keep observing fleet totals.
//!
//! Unlike the global registry, names here are owned strings, so
//! dynamic names (`server.shard.07.latency_ns`) are fine: locals are
//! dropped with the serve region, so there is no leaked-interning
//! concern.
//!
//! Everything in this module is live in both feature modes — a local
//! registry has no global state to guard, and the no-op build's fleet
//! report still wants real per-outcome counts.

use std::collections::BTreeMap;

use crate::metrics::{bucket_index, bucket_upper_edge, HistogramSnapshot, NUM_BUCKETS};

/// A single-owner log₂ histogram with the exact bucket layout and
/// quantile convention of the global [`crate::metrics::Histogram`],
/// minus the atomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHistogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`: buckets add element-wise, counts and
    /// sums add, max takes the larger.
    pub fn merge(&mut self, other: &LocalHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw bucket counts (for bucket-wise merges into the global
    /// registry).
    #[must_use]
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile, `q` in `[0, 1]`, same convention as the
    /// global histogram: rank `ceil(q·n)` clamped to `[1, n]` (a NaN
    /// `q` lands on the top rank), answered as the upper edge of the
    /// rank's bucket, clamped to the observed max. Returns 0 when
    /// empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = if q.is_nan() {
            // Fail conservative, exactly like the global histogram: a
            // malformed quantile reads the max, never the min.
            self.count
        } else {
            ((q * self.count as f64).ceil() as u64).clamp(1, self.count)
        };
        let mut seen = 0_u64;
        for (k, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_edge(k).min(self.max);
            }
        }
        self.max
    }

    /// A point-in-time summary in the same shape the global registry
    /// snapshots to.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A single-owner registry of counters and histograms, merged after
/// the fact instead of contended during.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsLocal {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LocalHistogram>,
}

impl MetricsLocal {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter (allocates the name only on first
    /// touch).
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Adds 1 to the named counter.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Records one observation into the named histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = LocalHistogram::new();
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// The named counter's value (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if anything was recorded into it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LocalHistogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters sum, histograms merge
    /// bucket-wise.
    pub fn merge(&mut self, other: &MetricsLocal) {
        for (name, v) in &other.counters {
            if let Some(mine) = self.counters.get_mut(name) {
                *mine += v;
            } else {
                self.counters.insert(name.clone(), *v);
            }
        }
        for (name, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(name) {
                mine.merge(h);
            } else {
                self.histograms.insert(name.clone(), h.clone());
            }
        }
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LocalHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_histogram_matches_global_conventions() {
        let mut h = LocalHistogram::new();
        assert_eq!(h.quantile(0.99), 0, "empty histogram answers 0");
        for v in [0_u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.max(), 1000);
        // Rank math: p50 of 6 observations is rank 3, which falls in
        // the bucket covering {2, 3} — quantiles answer its upper edge.
        assert_eq!(h.quantile(0.50), 3);
        // Top quantiles clamp to the observed max, not the bucket edge.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(f64::NAN), 1000, "NaN lands on the top rank");
        assert_eq!(h.quantile(-1.0), h.quantile(0.0), "rank clamps to 1");
    }

    #[test]
    fn merge_is_exact_not_approximate() {
        let mut a = LocalHistogram::new();
        let mut b = LocalHistogram::new();
        let mut whole = LocalHistogram::new();
        for v in 0..50_u64 {
            a.record(v * 7);
            whole.record(v * 7);
        }
        for v in 0..30_u64 {
            b.record(v * 1000);
            whole.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge == having recorded everything in one");
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn metrics_local_counters_and_merge() {
        let mut w0 = MetricsLocal::new();
        let mut w1 = MetricsLocal::new();
        w0.incr("accepts");
        w0.add("accepts", 2);
        w0.record("latency", 10);
        w1.incr("accepts");
        w1.incr("sheds");
        w1.record("latency", 1000);
        w1.record("slow", 9999);

        let mut merged = MetricsLocal::new();
        merged.merge(&w0);
        merged.merge(&w1);
        assert_eq!(merged.counter("accepts"), 4);
        assert_eq!(merged.counter("sheds"), 1);
        assert_eq!(merged.counter("never"), 0);
        let lat = merged.histogram("latency").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.max(), 1000);
        assert_eq!(merged.histogram("slow").unwrap().count(), 1);
        assert!(merged.histogram("absent").is_none());
        assert_eq!(merged.counters().count(), 2);
        assert_eq!(merged.histograms().count(), 2);
    }
}
